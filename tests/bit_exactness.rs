//! Property-based cross-crate test: for randomly generated small networks,
//! weights and inputs, the cycle-accurate accelerator simulator produces
//! exactly the same integers as the functional radix-SNN model, and the
//! transaction-level path agrees with both.

use proptest::prelude::*;
use snn_repro::accel::config::{AcceleratorConfig, ArrayGeometry};
use snn_repro::accel::sim::Accelerator;
use snn_repro::model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_repro::model::params::{LayerParameters, Parameters};
use snn_repro::model::{LayerSpec, NetworkSpec};
use snn_repro::tensor::Tensor;

/// Builds a small random conv→pool→flatten→linear network together with
/// random parameters from the proptest-provided raw values.
fn build_network(
    channels: usize,
    kernel: usize,
    weights_seed: &[f32],
) -> (NetworkSpec, Parameters) {
    let side = 9usize;
    let pooled = (side - kernel + 1) / 2;
    let flat = channels * pooled * pooled;
    let net = NetworkSpec::new(
        "prop",
        vec![1, side, side],
        vec![
            LayerSpec::conv(1, channels, kernel),
            LayerSpec::avg_pool2(),
            LayerSpec::Flatten,
            LayerSpec::linear(flat, 4),
        ],
    )
    .expect("generated network is valid");

    // Deterministically derive weights from the seed slice.
    let take = |n: usize, offset: usize| -> Vec<f32> {
        (0..n)
            .map(|i| weights_seed[(offset + i) % weights_seed.len()])
            .collect()
    };
    let conv_weight =
        Tensor::from_vec(vec![channels, 1, kernel, kernel], take(channels * kernel * kernel, 0))
            .expect("conv weight");
    let conv_bias = Tensor::from_vec(vec![channels], take(channels, 7)).expect("conv bias");
    let lin_weight = Tensor::from_vec(vec![4, flat], take(4 * flat, 13)).expect("linear weight");
    let lin_bias = Tensor::from_vec(vec![4], take(4, 29)).expect("linear bias");
    let params = Parameters::new(
        &net,
        vec![
            Some(LayerParameters {
                weight: conv_weight,
                bias: conv_bias,
            }),
            None,
            None,
            Some(LayerParameters {
                weight: lin_weight,
                bias: lin_bias,
            }),
        ],
    )
    .expect("generated parameters match the network");
    (net, params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The cycle-accurate and transaction-level simulators and the
    /// functional SNN model all compute identical logits.
    #[test]
    fn accelerator_matches_functional_model(
        channels in 1usize..4,
        kernel in 2usize..4,
        time_steps in 1usize..7,
        weights in prop::collection::vec(-1.0f32..1.0, 64),
        pixels in prop::collection::vec(0.0f32..1.0, 81),
    ) {
        let (net, params) = build_network(channels, kernel, &weights);
        let input = Tensor::from_vec(vec![1, 9, 9], pixels).expect("input");
        let calibration = CalibrationStats::collect(&net, &params, [&input])
            .expect("calibration");
        let model = convert(
            &net,
            &params,
            &calibration,
            ConversionConfig { weight_bits: 3, time_steps },
        )
        .expect("conversion");

        let accel = Accelerator::new(AcceleratorConfig::default());
        let detailed = accel.run(&model, &input).expect("cycle-accurate run");
        let fast = accel.run_fast(&model, &input).expect("transaction run");
        let functional = model.forward(&input).expect("functional forward");

        prop_assert_eq!(&detailed.logits, functional.logits().as_slice());
        prop_assert_eq!(&fast.logits, functional.logits().as_slice());
        prop_assert_eq!(detailed.prediction, functional.predicted_class());
    }

    /// Results are independent of the accelerator's parallelism and adder
    /// array geometry (only latency changes).
    #[test]
    fn results_are_invariant_to_hardware_geometry(
        conv_units in 1usize..9,
        columns in 3usize..40,
        time_steps in 1usize..6,
        weights in prop::collection::vec(-1.0f32..1.0, 64),
    ) {
        let (net, params) = build_network(2, 3, &weights);
        let input = Tensor::filled(vec![1, 9, 9], 0.6f32);
        let calibration = CalibrationStats::collect(&net, &params, [&input])
            .expect("calibration");
        let model = convert(
            &net,
            &params,
            &calibration,
            ConversionConfig { weight_bits: 3, time_steps },
        )
        .expect("conversion");

        let reference = Accelerator::new(AcceleratorConfig::default())
            .run(&model, &input)
            .expect("reference run");
        let custom_config = AcceleratorConfig {
            conv_units,
            conv_geometry: ArrayGeometry { columns, rows: 5 },
            ..AcceleratorConfig::default()
        };
        let custom = Accelerator::new(custom_config)
            .run(&model, &input)
            .expect("custom run");
        prop_assert_eq!(reference.logits, custom.logits);
    }
}
