//! Property-based cross-crate test: for randomly generated small networks,
//! weights and inputs, the cycle-accurate accelerator simulator produces
//! exactly the same integers as the functional radix-SNN model, and the
//! transaction-level path agrees with both.

use proptest::prelude::*;
use snn_repro::accel::config::{AcceleratorConfig, ArrayGeometry};
use snn_repro::accel::conv::ConvolutionUnit;
use snn_repro::accel::reference::ReferenceConvolutionUnit;
use snn_repro::accel::sim::Accelerator;
use snn_repro::model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_repro::model::params::{LayerParameters, Parameters};
use snn_repro::model::{LayerSpec, NetworkSpec};
use snn_repro::tensor::Tensor;

/// Builds a small random conv→pool→flatten→linear network together with
/// random parameters from the proptest-provided raw values.
fn build_network(
    channels: usize,
    kernel: usize,
    weights_seed: &[f32],
) -> (NetworkSpec, Parameters) {
    let side = 9usize;
    let pooled = (side - kernel).div_ceil(2);
    let flat = channels * pooled * pooled;
    let net = NetworkSpec::new(
        "prop",
        vec![1, side, side],
        vec![
            LayerSpec::conv(1, channels, kernel),
            LayerSpec::avg_pool2(),
            LayerSpec::Flatten,
            LayerSpec::linear(flat, 4),
        ],
    )
    .expect("generated network is valid");

    // Deterministically derive weights from the seed slice.
    let take = |n: usize, offset: usize| -> Vec<f32> {
        (0..n)
            .map(|i| weights_seed[(offset + i) % weights_seed.len()])
            .collect()
    };
    let conv_weight = Tensor::from_vec(
        vec![channels, 1, kernel, kernel],
        take(channels * kernel * kernel, 0),
    )
    .expect("conv weight");
    let conv_bias = Tensor::from_vec(vec![channels], take(channels, 7)).expect("conv bias");
    let lin_weight = Tensor::from_vec(vec![4, flat], take(4 * flat, 13)).expect("linear weight");
    let lin_bias = Tensor::from_vec(vec![4], take(4, 29)).expect("linear bias");
    let params = Parameters::new(
        &net,
        vec![
            Some(LayerParameters {
                weight: conv_weight,
                bias: conv_bias,
            }),
            None,
            None,
            Some(LayerParameters {
                weight: lin_weight,
                bias: lin_bias,
            }),
        ],
    )
    .expect("generated parameters match the network");
    (net, params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The cycle-accurate and transaction-level simulators and the
    /// functional SNN model all compute identical logits.
    #[test]
    fn accelerator_matches_functional_model(
        channels in 1usize..4,
        kernel in 2usize..4,
        time_steps in 1usize..7,
        weights in prop::collection::vec(-1.0f32..1.0, 64),
        pixels in prop::collection::vec(0.0f32..1.0, 81),
    ) {
        let (net, params) = build_network(channels, kernel, &weights);
        let input = Tensor::from_vec(vec![1, 9, 9], pixels).expect("input");
        let calibration = CalibrationStats::collect(&net, &params, [&input])
            .expect("calibration");
        let model = convert(
            &net,
            &params,
            &calibration,
            ConversionConfig { weight_bits: 3, time_steps },
        )
        .expect("conversion");

        let accel = Accelerator::new(AcceleratorConfig::default());
        let detailed = accel.run(&model, &input).expect("cycle-accurate run");
        let fast = accel.run_fast(&model, &input).expect("transaction run");
        let functional = model.forward(&input).expect("functional forward");

        prop_assert_eq!(&detailed.logits, functional.logits().as_slice());
        prop_assert_eq!(&fast.logits, functional.logits().as_slice());
        prop_assert_eq!(detailed.prediction, functional.predicted_class());
    }

    /// Results are independent of the accelerator's parallelism and adder
    /// array geometry (only latency changes).
    #[test]
    fn results_are_invariant_to_hardware_geometry(
        conv_units in 1usize..9,
        columns in 3usize..40,
        time_steps in 1usize..6,
        weights in prop::collection::vec(-1.0f32..1.0, 64),
    ) {
        let (net, params) = build_network(2, 3, &weights);
        let input = Tensor::filled(vec![1, 9, 9], 0.6f32);
        let calibration = CalibrationStats::collect(&net, &params, [&input])
            .expect("calibration");
        let model = convert(
            &net,
            &params,
            &calibration,
            ConversionConfig { weight_bits: 3, time_steps },
        )
        .expect("conversion");

        let reference = Accelerator::new(AcceleratorConfig::default())
            .run(&model, &input)
            .expect("reference run");
        let custom_config = AcceleratorConfig {
            conv_units,
            conv_geometry: ArrayGeometry { columns, rows: 5 },
            ..AcceleratorConfig::default()
        };
        let custom = Accelerator::new(custom_config)
            .run(&model, &input)
            .expect("custom run");
        prop_assert_eq!(reference.logits, custom.logits);
    }
}

/// Edge cases of the bit-plane sparse convolution path, each checked for
/// bit-identical accumulators *and* `UnitStats` against the retained
/// counter-stepped scalar reference.
mod sparse_path_edge_cases {
    use super::*;

    fn check(
        input: Tensor<i64>,
        kernel: Tensor<i64>,
        time_steps: usize,
        stride: usize,
        padding: usize,
        columns: usize,
    ) {
        let dims = kernel.shape().dims().to_vec();
        let bias = Tensor::from_vec(
            vec![dims[0]],
            (0..dims[0]).map(|i| (i as i64) - 1).collect(),
        )
        .expect("bias");
        let geometry = ArrayGeometry {
            columns,
            rows: dims[2],
        };
        let fast = ConvolutionUnit::new(geometry)
            .run_layer(&input, &kernel, &bias, time_steps, stride, padding)
            .expect("sparse run");
        let slow = ReferenceConvolutionUnit::new(geometry)
            .run_layer(&input, &kernel, &bias, time_steps, stride, padding)
            .expect("reference run");
        assert_eq!(fast.accumulators, slow.accumulators);
        assert_eq!(fast.stats, slow.stats);
    }

    fn patterned(shape: Vec<usize>, modulo: u64, seed: u64) -> Tensor<i64> {
        let len = shape.iter().product();
        Tensor::from_vec(
            shape,
            (0..len)
                .map(|i| ((i as u64 * 2654435761 + seed) % modulo) as i64)
                .collect(),
        )
        .expect("patterned tensor")
    }

    /// Zero-padding rows and columns: every output window touches padding
    /// somewhere when the padding equals the kernel extent minus one.
    #[test]
    fn zero_padding_rows_and_columns() {
        for padding in 1..=2 {
            check(
                patterned(vec![2, 5, 5], 8, 3),
                patterned(vec![3, 2, 3, 3], 7, 11),
                3,
                1,
                padding,
                8,
            );
        }
    }

    /// Strides larger than one subsample the input; only spikes aligned to
    /// the stride grid may contribute.
    #[test]
    fn stride_greater_than_one() {
        for stride in 2..=3 {
            check(
                patterned(vec![1, 9, 9], 16, 5),
                patterned(vec![2, 1, 3, 3], 5, 2),
                4,
                stride,
                1,
                6,
            );
        }
    }

    /// Output rows wider than the adder array force `column_tiles > 1`;
    /// the tile loop multiplies the schedule counters but not the results.
    #[test]
    fn output_rows_wider_than_the_adder_array() {
        let input = patterned(vec![1, 6, 12], 8, 7);
        let kernel = patterned(vec![2, 1, 3, 3], 7, 13);
        for columns in [1, 2, 3, 4, 7] {
            // w_out = 10, so columns < 10 needs more than one tile.
            check(input.clone(), kernel.clone(), 3, 1, 0, columns);
        }
    }

    /// All-silent input planes: no spikes at all, so zero adder operations
    /// and bias-only accumulators, while the static schedule still runs.
    #[test]
    fn all_silent_input_planes() {
        check(
            Tensor::filled(vec![2, 6, 6], 0i64),
            patterned(vec![3, 2, 3, 3], 7, 17),
            5,
            1,
            1,
            8,
        );
    }

    /// A single spike in one plane of one channel: the minimal non-silent
    /// case, placed at the border so padding interaction is exercised too.
    #[test]
    fn single_border_spike() {
        let mut levels = vec![0i64; 2 * 5 * 5];
        levels[5 * 5] = 1; // channel 1, top-left pixel, LSB plane only
        check(
            Tensor::from_vec(vec![2, 5, 5], levels).expect("input"),
            patterned(vec![2, 2, 3, 3], 7, 23),
            4,
            1,
            1,
            4,
        );
    }

    /// Everything at once: stride, padding, tiling and partially silent
    /// channels in one layer.
    #[test]
    fn combined_stride_padding_and_tiling() {
        let mut input = patterned(vec![3, 8, 8], 4, 29);
        // Silence a whole channel to exercise the word-level row skip.
        for v in &mut input.as_mut_slice()[64..128] {
            *v = 0;
        }
        check(input, patterned(vec![4, 3, 3, 3], 7, 31), 2, 2, 2, 2);
    }
}
