//! Regression tests for the paper's quantitative claims, driven by the same
//! experiment harnesses the `table1`/`table2`/`table3` binaries use.

use snn_bench::experiments;
use snn_repro::accel::config::AcceleratorConfig;
use snn_repro::accel::timing::network_timing;
use snn_repro::model::zoo;

/// Section IV-B / Table I: "The latency scales linearly with the length of
/// the spike train since almost all computations are replicated for each
/// time step."
#[test]
fn latency_scales_linearly_with_spike_train_length() {
    let cfg = AcceleratorConfig::lenet_experiment(2);
    let net = zoo::lenet5();
    let latencies: Vec<f64> = (3..=6)
        .map(|t| {
            network_timing(&cfg, &net, t)
                .expect("LeNet-5 timing")
                .latency_us(&cfg)
        })
        .collect();
    // Successive differences should be nearly constant (linear scaling).
    let d1 = latencies[1] - latencies[0];
    let d2 = latencies[2] - latencies[1];
    let d3 = latencies[3] - latencies[2];
    for (a, b) in [(d1, d2), (d2, d3)] {
        assert!(
            (a - b).abs() / a < 0.05,
            "latency increments differ too much: {latencies:?}"
        );
    }
}

/// Section IV-C / Table II: doubling the convolution units does not halve
/// the latency, while resources scale almost linearly.
#[test]
fn conv_unit_scaling_matches_table2_shape() {
    let rows = experiments::table2();
    assert_eq!(
        rows.iter().map(|r| r.conv_units).collect::<Vec<_>>(),
        vec![1, 2, 4, 8]
    );
    for pair in rows.windows(2) {
        let speedup = pair[0].latency_us / pair[1].latency_us;
        assert!(
            speedup > 1.0 && speedup < 2.0,
            "doubling units gave speedup {speedup}, expected sub-linear but > 1"
        );
        assert!(pair[1].luts > pair[0].luts);
        assert!(pair[1].power_w > pair[0].power_w);
    }
    // Resources roughly linear: LUT increment per unit constant within 1%.
    let inc_per_unit_12 = (rows[1].luts - rows[0].luts) as f64;
    let inc_per_unit_48 = (rows[3].luts - rows[2].luts) as f64 / 4.0;
    assert!((inc_per_unit_12 - inc_per_unit_48).abs() / inc_per_unit_12 < 0.01);
}

/// Section IV-D / Table III: the simulated deployments keep the paper's
/// ordering — this work beats both baselines in latency and power, and
/// VGG-11 still achieves more than one frame per second.
#[test]
fn table3_ordering_is_preserved() {
    let table = experiments::table3(None);
    let ju = &table.rows[0];
    let fang = &table.rows[1];
    let ours_cnn2 = &table.rows[2];
    let ours_lenet = &table.rows[3];
    let ours_vgg = &table.rows[4];

    assert!(ours_cnn2.latency_us < fang.latency_us / 5.0);
    assert!(ours_cnn2.power_w < fang.power_w);
    assert!(ours_cnn2.power_w < ju.power_w);
    assert!(ours_lenet.latency_us < ours_cnn2.latency_us);
    assert!(ours_cnn2.luts < fang.luts / 2);
    assert!(ours_vgg.throughput_fps > 1.0);
    assert!(ours_vgg.latency_us > ours_lenet.latency_us * 100.0);
}

/// Section IV-B: the claim that the encoding alone buys roughly 40%
/// efficiency over Fang et al. (6 steps instead of ~10), and that
/// rate-encoding at equal resolution would be an order of magnitude slower.
#[test]
fn encoding_gain_claims_hold() {
    let ablation = experiments::encoding_ablation();
    let t6 = ablation
        .iter()
        .find(|r| r.radix_steps == 6)
        .expect("T = 6 row");
    assert_eq!(t6.rate_steps, 63);
    assert!(
        t6.slowdown > 8.0,
        "rate encoding at equal resolution should be ~10x slower, got {}",
        t6.slowdown
    );
}

/// Table I pipeline smoke test on the quick profile: the accuracy column is
/// populated and the latency column grows monotonically with T.
#[test]
fn table1_quick_profile_is_well_formed() {
    let rows = experiments::table1(snn_bench::workloads::Effort::Quick, 5);
    assert_eq!(rows.len(), 4);
    for pair in rows.windows(2) {
        assert!(pair[1].latency_us > pair[0].latency_us);
        assert_eq!(pair[1].time_steps, pair[0].time_steps + 1);
    }
    for row in &rows {
        assert!((0.0..=100.0).contains(&row.accuracy_pct));
    }
}
