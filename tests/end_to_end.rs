//! Cross-crate integration test: the complete pipeline from synthetic data
//! through ANN training, quantization, ANN-to-SNN conversion and
//! accelerator simulation.

use snn_repro::accel::config::AcceleratorConfig;
use snn_repro::accel::sim::Accelerator;
use snn_repro::data::digits::SyntheticDigits;
use snn_repro::model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_repro::model::forward;
use snn_repro::model::params::Parameters;
use snn_repro::model::zoo;
use snn_repro::train::trainer::{Trainer, TrainingConfig};

#[test]
fn trained_tiny_cnn_survives_conversion_and_accelerator_deployment() {
    // 1. Data and ANN training.
    let data = SyntheticDigits::new(12)
        .with_noise_percent(5)
        .generate(120, 11)
        .split(0.75);
    let net = zoo::tiny_cnn();
    let mut params = Parameters::he_init(&net, 11).expect("parameters");
    let report = Trainer::new(TrainingConfig {
        epochs: 8,
        learning_rate: 0.01,
        momentum: 0.9,
        lr_decay: 0.95,
    })
    .train(&net, &mut params, &data.train)
    .expect("training");
    assert!(
        report.final_train_accuracy > 0.5,
        "ANN failed to learn the synthetic digits: {}",
        report.final_train_accuracy
    );

    let ann_acc = forward::evaluate(&net, &params, data.test.iter()).expect("ANN eval");

    // 2. Conversion at T = 6 (the paper's high-accuracy operating point).
    let calibration_inputs: Vec<_> = data.train.iter().take(24).map(|(img, _)| img).collect();
    let calibration =
        CalibrationStats::collect(&net, &params, calibration_inputs).expect("calibration");
    let snn = convert(
        &net,
        &params,
        &calibration,
        ConversionConfig {
            weight_bits: 3,
            time_steps: 6,
        },
    )
    .expect("conversion");
    let snn_acc = snn.evaluate(data.test.iter()).expect("SNN eval");

    // The converted SNN should be within a reasonable margin of the ANN on
    // the same test set (3-bit weights cost some accuracy).
    assert!(
        snn_acc >= ann_acc - 0.25,
        "SNN accuracy {snn_acc} fell too far below ANN accuracy {ann_acc}"
    );

    // 3. Accelerator deployment: the cycle-accurate simulator must agree
    //    with the functional SNN on every test sample.
    let accelerator = Accelerator::new(AcceleratorConfig::default());
    for (input, _) in data.test.iter().take(10) {
        let run = accelerator.run(&snn, input).expect("accelerator run");
        let trace = snn.forward(input).expect("functional forward");
        assert_eq!(run.logits, trace.logits().as_slice());
        assert_eq!(run.prediction, trace.predicted_class());
    }
}

#[test]
fn accelerator_accuracy_equals_functional_snn_accuracy() {
    // Accuracy measured through the accelerator simulator must equal the
    // functional model's accuracy exactly: the hardware computes the same
    // integers.
    let data = SyntheticDigits::new(12).generate(40, 3).split(0.5);
    let net = zoo::tiny_cnn();
    let params = Parameters::he_init(&net, 3).expect("parameters");
    let calibration_inputs: Vec<_> = data.train.iter().map(|(img, _)| img).collect();
    let calibration =
        CalibrationStats::collect(&net, &params, calibration_inputs).expect("calibration");
    let snn =
        convert(&net, &params, &calibration, ConversionConfig::default()).expect("conversion");

    let accelerator = Accelerator::new(AcceleratorConfig::lenet_experiment(4));
    let mut functional_correct = 0usize;
    let mut accelerator_correct = 0usize;
    for (input, label) in data.test.iter() {
        if snn.predict(input).expect("functional predict") == label {
            functional_correct += 1;
        }
        if accelerator
            .run(&snn, input)
            .expect("accelerator run")
            .prediction
            == label
        {
            accelerator_correct += 1;
        }
    }
    assert_eq!(functional_correct, accelerator_correct);
}

#[test]
fn conversion_accuracy_improves_or_saturates_with_time_steps() {
    // Table I's qualitative claim: more time steps never hurt by much, and
    // very short trains are the worst.
    let data = SyntheticDigits::new(12)
        .with_noise_percent(5)
        .generate(100, 17)
        .split(0.7);
    let net = zoo::tiny_cnn();
    let mut params = Parameters::he_init(&net, 17).expect("parameters");
    Trainer::new(TrainingConfig {
        epochs: 6,
        learning_rate: 0.01,
        momentum: 0.9,
        lr_decay: 0.95,
    })
    .train(&net, &mut params, &data.train)
    .expect("training");
    let calibration_inputs: Vec<_> = data.train.iter().take(24).map(|(img, _)| img).collect();
    let calibration =
        CalibrationStats::collect(&net, &params, calibration_inputs).expect("calibration");

    let acc_at = |t: usize| {
        let snn = convert(
            &net,
            &params,
            &calibration,
            ConversionConfig {
                weight_bits: 3,
                time_steps: t,
            },
        )
        .expect("conversion");
        snn.evaluate(data.test.iter()).expect("SNN eval")
    };

    let acc1 = acc_at(1);
    let acc6 = acc_at(6);
    assert!(
        acc6 + 1e-6 >= acc1,
        "accuracy degraded with more time steps: T=1 {acc1} vs T=6 {acc6}"
    );
}
