//! Umbrella crate for the SNN radix-encoding accelerator reproduction.
//!
//! Re-exports the individual workspace crates so the examples and
//! integration tests can use a single dependency. Downstream users will
//! normally depend on the individual crates ([`snn_accel`], [`snn_model`],
//! [`snn_encoding`], ...) directly.
pub use snn_accel as accel;
pub use snn_baselines as baselines;
pub use snn_data as data;
pub use snn_encoding as encoding;
pub use snn_model as model;
pub use snn_tensor as tensor;
pub use snn_train as train;
