//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so this crate implements the
//! exact API subset the workspace uses — `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over half-open and inclusive integer/float ranges, and
//! `Rng::gen_bool` — on top of a xoshiro256** generator.  The sequences are
//! deterministic in the seed, which is all the synthetic datasets and
//! He-initialisation need; they do not match the real `StdRng` streams.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256** seeded via
    /// splitmix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                let mut v = (self.start as f64
                    + (self.end as f64 - self.start as f64) * unit) as $t;
                // Guard against rounding onto the excluded endpoint.
                if v >= self.end {
                    v = self.start;
                }
                if v < self.start {
                    v = self.start;
                }
                v
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let unit = ((rng.next_u64() >> 10) as f64) * (1.0 / ((1u64 << 54) - 1) as f64);
                let v = start as f64 + (end as f64 - start as f64) * unit;
                (v as $t).clamp(start, end)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(0.25f32..0.5);
            assert!((0.25..0.5).contains(&f));
            let u = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&u));
            let g = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn distribution_covers_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
