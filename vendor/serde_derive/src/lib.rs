//! Offline stand-in for `serde_derive`.
//!
//! The build container has no registry access, so the real serde cannot be
//! fetched.  This crate accepts `#[derive(Serialize, Deserialize)]` (with
//! any `#[serde(...)]` attributes) and expands to nothing: the workspace
//! only uses the derives as markers and never serializes at runtime.

use proc_macro::TokenStream;

/// No-op replacement for serde's `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
