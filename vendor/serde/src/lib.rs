//! Offline stand-in for `serde`.
//!
//! The build container cannot reach a crates registry, so this crate
//! provides exactly the subset of serde the workspace compiles against:
//! the `Serialize` / `Deserialize` trait names and their derive macros.
//! The derives expand to nothing and the traits carry no methods — the
//! workspace uses them purely as markers on report/config types.  Swapping
//! in the real serde is a one-line change in each crate manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the offline
/// stand-in).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the offline
/// stand-in).
pub trait Deserialize<'de> {}
