//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so this crate implements the
//! benchmarking API subset the workspace uses — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter` and the `criterion_group!` / `criterion_main!` macros —
//! with honest wall-clock measurement: each benchmark is calibrated to a target
//! batch duration, sampled repeatedly, and summarised by median and mean.
//! Results are printed to stdout and exposed via [`Criterion::results`] so
//! harnesses can emit machine-readable JSON summaries.

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id `"<name>/<parameter>"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Summary statistics of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/name/param` or `name`).
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Number of measurement samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

const SAMPLE_COUNT: usize = 12;
const TARGET_SAMPLE_NS: f64 = 12.5e6; // ~12.5 ms per sample, ~150 ms per bench

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples_ns: Vec::new(),
            iters_per_sample: 0,
        }
    }

    /// Times `routine`, automatically choosing an iteration count so each
    /// sample runs long enough to be measurable.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: double the batch size until it runs long enough.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            if elapsed >= TARGET_SAMPLE_NS || iters >= 1 << 24 {
                break;
            }
            let grow = if elapsed <= 0.0 {
                8.0
            } else {
                (TARGET_SAMPLE_NS / elapsed).clamp(1.5, 8.0)
            };
            iters = ((iters as f64 * grow).ceil() as u64).max(iters + 1);
        }
        // Measurement.
        self.iters_per_sample = iters;
        self.samples_ns.clear();
        for _ in 0..SAMPLE_COUNT {
            let start = Instant::now();
            for _ in 0..iters {
                hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters as f64);
        }
    }

    fn result(&self, id: String) -> BenchResult {
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = if sorted.is_empty() {
            0.0
        } else {
            sorted[sorted.len() / 2]
        };
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        BenchResult {
            id,
            median_ns: median,
            mean_ns: mean,
            samples: sorted.len(),
            iters_per_sample: self.iters_per_sample,
        }
    }
}

/// Top-level benchmark driver collecting results across groups.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        self.record(bencher.result(id.to_string()));
        self
    }

    fn record(&mut self, result: BenchResult) {
        println!(
            "{:<44} median {:>12.1} ns/iter  mean {:>12.1} ns/iter  ({} samples x {} iters)",
            result.id, result.median_ns, result.mean_ns, result.samples, result.iters_per_sample
        );
        self.results.push(result);
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Finds a result by its exact id.
    pub fn result(&self, id: &str) -> Option<&BenchResult> {
        self.results.iter().find(|r| r.id == id)
    }

    /// Renders every recorded result as a JSON array (criterion-style
    /// summary, hand-formatted because the container has no serde_json).
    pub fn summary_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \
                 \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
                r.id.replace('"', "\\\""),
                r.median_ns,
                r.mean_ns,
                r.samples,
                r.iters_per_sample,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push(']');
        out
    }

    /// Prints the closing summary (called by `criterion_main!`).
    pub fn final_summary(&self) {
        println!("\n{} benchmarks completed", self.results.len());
    }
}

/// A group of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark identified by a [`BenchmarkId`], passing `input`
    /// through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new();
        f(&mut bencher, input);
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.record(bencher.result(full));
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        let full = format!("{}/{}", self.name, id);
        self.criterion.record(bencher.result(full));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running a sequence of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares a `main` running benchmark groups and printing the summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_plausible_times() {
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let r = c.result("noop_sum").expect("result recorded");
        assert!(r.median_ns > 0.0);
        assert!(r.samples > 0);
        assert!(c.summary_json().contains("noop_sum"));
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("inner", 3), &3usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert!(c.result("grp/inner/3").is_some());
    }
}
