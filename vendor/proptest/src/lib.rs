//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so this crate implements the
//! API subset the workspace's property tests use: the [`proptest!`] macro,
//! `prop_assert*` macros, range, tuple, `prop::collection::vec` and
//! `option::of` strategies, and [`test_runner::ProptestConfig`].  Cases are generated from a
//! deterministic per-test seed; failures report the case number but do not
//! shrink.  Swapping in the real proptest is a one-line manifest change.

pub mod strategy {
    //! The [`Strategy`] trait: a recipe for generating test values.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type `Value` from the test RNG.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let mut v = (self.start as f64
                        + (self.end as f64 - self.start as f64) * rng.unit_f64()) as $t;
                    if v >= self.end {
                        v = self.start;
                    }
                    if v < self.start {
                        v = self.start;
                    }
                    v
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let v = (start as f64 + (end as f64 - start as f64) * rng.unit_f64()) as $t;
                    v.clamp(start, end)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $v:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (S0 s0, S1 s1)
        (S0 s0, S1 s1, S2 s2)
        (S0 s0, S1 s1, S2 s2, S3 s3)
    }
}

pub mod test_runner {
    //! Test configuration, RNG and failure reporting.

    use std::fmt;

    /// Per-`proptest!`-block configuration (the `cases` subset).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (no shrinking in the offline stand-in).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic xoshiro256** RNG used to generate cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds an RNG whose stream depends only on `name` (typically the
        /// property function's name), so runs are reproducible.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, then splitmix64 to fill the state.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            let mut s = [0u64; 4];
            for word in &mut s {
                h = h.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                *word = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// Returns the next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[min, max]`.
        pub fn usize_in(&mut self, min: usize, max: usize) -> usize {
            assert!(min <= max);
            min + (self.next_u64() as usize) % (max - min + 1)
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]: a fixed size or a range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max_inclusive: len,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// comes from `size` (a `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.min, self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies (`proptest::option::of`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option`s of an inner strategy's values.
    #[derive(Debug, Clone, Copy)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` of the inner strategy's value or `None`, with equal
    /// probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests: `proptest! { #[test] fn p(x in strat) { ... } }`.
///
/// Accepts an optional leading `#![proptest_config(...)]` that applies to
/// every property in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_properties! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_properties! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_properties {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $( let $arg =
                        $crate::strategy::Strategy::generate(&($strategy), &mut rng); )+
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` for property bodies: fails the case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if !(*left_val == *right_val) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                            left_val, right_val
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if !(*left_val == *right_val) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)+),
                            left_val,
                            right_val
                        )),
                    );
                }
            }
        }
    };
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if *left_val == *right_val {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: `left != right`\n  both: {:?}", left_val),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 1usize..5,
            b in -3i64..3,
            f in 0.25f32..0.75,
            g in 0.0f32..=1.0,
            flag in crate::bool::ANY,
            xs in prop::collection::vec(0u32..10, 1..6),
            pair in (0u8..4, 10u8..14),
            maybe in crate::option::of(0u32..7),
            pairs in prop::collection::vec((0u64..3, 5i32..8), 2..4),
        ) {
            prop_assert!((1..5).contains(&a));
            prop_assert!((-3..3).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((0.0..=1.0).contains(&g));
            let _ = flag;
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 10));
            prop_assert!(pair.0 < 4 && (10..14).contains(&pair.1));
            prop_assert!(maybe.is_none() || maybe.unwrap() < 7);
            prop_assert!(pairs.iter().all(|&(x, y)| x < 3 && (5..8).contains(&y)));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 0u8..255) {
            prop_assert_eq!(v, v);
            prop_assert_ne!(v as u16, 300u16);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
