//! LeNet-5 on the synthetic MNIST stand-in — the workload of Tables I and
//! II of the paper.
//!
//! The example runs the complete pipeline the paper assumes:
//!
//! 1. train the equivalent ANN (LeNet-5) on the synthetic digit dataset,
//! 2. quantize to 3-bit weights and convert to a radix-encoded SNN,
//! 3. compare ANN and SNN accuracy for several spike-train lengths,
//! 4. deploy on the simulated accelerator (four convolution units, 200 MHz —
//!    the Table III operating point) and report latency, throughput, power
//!    and resources.
//!
//! Run with: `cargo run --release --example lenet_mnist`

use snn_repro::accel::config::AcceleratorConfig;
use snn_repro::accel::sim::Accelerator;
use snn_repro::data::digits::SyntheticDigits;
use snn_repro::model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_repro::model::forward;
use snn_repro::model::params::Parameters;
use snn_repro::model::zoo;
use snn_repro::train::trainer::{Trainer, TrainingConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthetic digit dataset (MNIST substitution, see DESIGN.md) and
    //    ANN training.
    let dataset = SyntheticDigits::new(32)
        .with_noise_percent(8)
        .generate(160, 7);
    let data = dataset.split(0.75);
    let net = zoo::lenet5();
    println!(
        "training {} on {} synthetic digits...",
        net.name(),
        data.train.len()
    );

    let mut params = Parameters::he_init(&net, 7)?;
    let report = Trainer::new(TrainingConfig {
        epochs: 4,
        learning_rate: 0.01,
        momentum: 0.9,
        lr_decay: 0.9,
    })
    .train(&net, &mut params, &data.train)?;
    println!(
        "ANN training finished: final epoch loss {:.3}, train accuracy {:.1}%",
        report.epoch_losses.last().copied().unwrap_or(f32::NAN),
        report.final_train_accuracy * 100.0
    );
    let ann_test_acc = forward::evaluate(&net, &params, data.test.iter())? * 100.0;
    println!("ANN test accuracy: {ann_test_acc:.1}%");

    // 2./3. Convert for several spike-train lengths and compare accuracy —
    //       the Table I experiment.
    let calibration_inputs: Vec<_> = data.train.iter().take(32).map(|(img, _)| img).collect();
    let calibration = CalibrationStats::collect(&net, &params, calibration_inputs)?;
    println!();
    println!("{:>12} {:>14}", "time steps", "SNN acc [%]");
    let mut snn_t4 = None;
    for time_steps in 3..=6 {
        let snn = convert(
            &net,
            &params,
            &calibration,
            ConversionConfig {
                weight_bits: 3,
                time_steps,
            },
        )?;
        let acc = snn.evaluate(data.test.iter())? * 100.0;
        println!("{time_steps:>12} {acc:>14.1}");
        if time_steps == 4 {
            snn_t4 = Some(snn);
        }
    }

    // 4. Deploy the T = 4 model on the Table III operating point.
    let snn = snn_t4.expect("T = 4 model was converted in the loop above");
    let config = AcceleratorConfig::lenet_table3();
    let accelerator = Accelerator::new(config);
    let design = accelerator.design_report(&snn)?;
    let (sample, _) = data.test.sample(0).expect("non-empty test set");
    let run = accelerator.run_fast(&snn, sample)?;

    println!();
    println!(
        "deployment at {} MHz with {} convolution units:",
        config.clock_mhz, config.conv_units
    );
    println!(
        "  latency {:.0} us  |  throughput {:.0} fps  |  power {:.2} W  |  {} LUTs / {} FFs",
        run.latency_us(&config),
        run.throughput_fps(&config),
        design.power.total_w(),
        design.resources.luts,
        design.resources.flip_flops
    );
    println!("  (paper, Table III: 294 us, 3380 fps, 3.4 W, 27k LUTs / 24k FFs on real MNIST)");
    Ok(())
}
