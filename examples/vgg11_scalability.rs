//! VGG-11 scalability study — the headline claim of the paper: the radix
//! dataflow is lean enough to deploy a 28.5 M-parameter VGG-11 on FPGA
//! neuromorphic hardware (Table III, last row).
//!
//! Training VGG-11 is out of scope for a simulation example; the hardware
//! questions the paper answers for VGG — does it fit, how fast is it, what
//! does it cost — are topology-driven, so this example evaluates the
//! analytical timing, memory and cost models on the real VGG-11 topology
//! with DRAM-resident weights, and contrasts them with LeNet-5.
//!
//! Run with: `cargo run --release --example vgg11_scalability`

use snn_repro::accel::config::AcceleratorConfig;
use snn_repro::accel::cost;
use snn_repro::accel::memory::{ActivationBufferPlan, WeightMemoryPlan};
use snn_repro::accel::timing::network_timing;
use snn_repro::model::zoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vgg = zoo::vgg11(100);
    let lenet = zoo::lenet5();

    println!("network inventory");
    for net in [&lenet, &vgg] {
        println!(
            "  {:<8} {:>12} parameters, kernel sizes {:?}",
            net.name(),
            net.parameter_count(),
            net.kernel_sizes()
        );
    }

    // The Table III operating points.
    let vgg_cfg = AcceleratorConfig::vgg11_table3();
    let lenet_cfg = AcceleratorConfig::lenet_table3();

    // Memory planning: why VGG needs DRAM.
    let vgg_weights = WeightMemoryPlan::for_network(&vgg, vgg_cfg.weight_bits, vgg_cfg.memory);
    let vgg_acts = ActivationBufferPlan::for_network(&vgg, 6);
    println!();
    println!("VGG-11 memory plan (T = 6, 3-bit weights):");
    println!(
        "  parameters: {:.1} Mbit total -> streamed from DRAM ({} BRAM36 staging)",
        vgg_weights.total_weight_bits as f64 / 1e6,
        vgg_weights.bram36()
    );
    println!(
        "  activations: {:.1} kbit (2-D ping-pong) + {:.1} kbit (1-D) on chip = {} BRAM36",
        vgg_acts.buffer_2d_bits as f64 / 1e3,
        vgg_acts.buffer_1d_bits as f64 / 1e3,
        vgg_acts.bram36()
    );

    // Timing and per-layer breakdown.
    let timing = network_timing(&vgg_cfg, &vgg, 6)?;
    println!();
    println!(
        "VGG-11 per-layer latency at {} MHz, {} convolution units:",
        vgg_cfg.clock_mhz, vgg_cfg.conv_units
    );
    println!(
        "  {:<6} {:<10} {:>14} {:>16}",
        "layer", "kind", "compute [cyc]", "dram fetch [cyc]"
    );
    for (layer, spec) in timing.layers.iter().zip(vgg.layers()) {
        println!(
            "  {:<6} {:<10} {:>14} {:>16}",
            layer.layer,
            spec.notation(),
            layer.compute_cycles,
            layer.weight_fetch_cycles
        );
    }
    println!(
        "  total: {} cycles = {:.1} ms -> {:.1} fps",
        timing.total_cycles(),
        timing.latency_us(&vgg_cfg) / 1e3,
        timing.throughput_fps(&vgg_cfg)
    );

    // Resource and power comparison with the LeNet deployment.
    let vgg_res = cost::estimate_resources(&vgg_cfg, &vgg, 6);
    let vgg_pow = cost::estimate_power(&vgg_cfg);
    let lenet_timing = network_timing(&lenet_cfg, &lenet, 4)?;
    let lenet_res = cost::estimate_resources(&lenet_cfg, &lenet, 4);
    let lenet_pow = cost::estimate_power(&lenet_cfg);

    println!();
    println!(
        "{:<10} {:>10} {:>10} {:>8} {:>12} {:>10}",
        "model", "LUTs", "FFs", "pow [W]", "latency", "fps"
    );
    println!(
        "{:<10} {:>10} {:>10} {:>8.2} {:>10.0} us {:>10.0}",
        "LeNet-5",
        lenet_res.luts,
        lenet_res.flip_flops,
        lenet_pow.total_w(),
        lenet_timing.latency_us(&lenet_cfg),
        lenet_timing.throughput_fps(&lenet_cfg)
    );
    println!(
        "{:<10} {:>10} {:>10} {:>8.2} {:>10.1} ms {:>10.1}",
        "VGG-11",
        vgg_res.luts,
        vgg_res.flip_flops,
        vgg_pow.total_w(),
        timing.latency_us(&vgg_cfg) / 1e3,
        timing.throughput_fps(&vgg_cfg)
    );
    println!();
    println!("paper reference (Table III): VGG-11 at 115 MHz -> 210 ms, 4.7 fps, 4.9 W, 88k LUTs / 84k FFs");
    Ok(())
}
