//! Serving over TCP: start the `snn-net` reactor front-end on a loopback
//! port, drive it with a pooled client and a pipelined batch, scrape the
//! counters in both plaintext and Prometheus form, and shut down
//! gracefully.
//!
//! ```sh
//! cargo run --release --example serve_tcp
//! ```

use snn_accel::config::AcceleratorConfig;
use snn_accel::serve::ServerOptions;
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::zoo;
use snn_net::client::PoolOptions;
use snn_net::{scrape_stats, NetClient, NetOptions, NetPool, NetServer};
use snn_tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small converted SNN to serve.
    let net = zoo::tiny_cnn();
    let params = Parameters::he_init(&net, 11)?;
    let inputs: Vec<Tensor<f32>> = (0..8)
        .map(|i| {
            let values: Vec<f32> = (0..144)
                .map(|j| ((i * 29 + j * 7) % 100) as f32 / 100.0)
                .collect();
            Tensor::from_vec(vec![1, 12, 12], values).expect("input")
        })
        .collect();
    let stats = CalibrationStats::collect(&net, &params, inputs.iter())?;
    let model = convert(
        &net,
        &params,
        &stats,
        ConversionConfig {
            weight_bits: 3,
            time_steps: 4,
        },
    )?;

    // Port 0 = ephemeral: the OS picks a free port, `local_addr` names it.
    let server = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        NetOptions {
            server: ServerOptions {
                queue_capacity: 64,
                ..ServerOptions::default()
            },
            max_connections: 128,
            ..NetOptions::default()
        },
    )?;
    let addr = server.local_addr();
    println!(
        "serving on {addr} (protocol v{}, single-reactor)",
        snn_net::protocol::VERSION
    );

    // A pooled client: connections are dialled on demand, recycled when
    // healthy, and shed requests retry under jittered exponential backoff.
    let pool = NetPool::connect(addr, PoolOptions::default())?;
    for (index, input) in inputs.iter().take(4).enumerate() {
        match pool.infer(input) {
            Ok(reply) => println!(
                "inference {index}: class {} in {} cycles (T = {}, logits {:?})",
                reply.prediction, reply.total_cycles, reply.time_steps, reply.logits
            ),
            Err(err) if err.is_backpressure() => {
                println!("inference {index}: shed even after retries ({err})")
            }
            Err(err) => return Err(err.into()),
        }
    }

    // Pipelining: the whole batch goes out before the first reply is read;
    // the server answers in completion order, correlated by request id.
    let mut pipelined = NetClient::connect(addr)?;
    let replies = pipelined.infer_many(&inputs)?;
    println!(
        "\n--- pipelined batch of {} on one connection ---",
        inputs.len()
    );
    for (index, reply) in replies.iter().enumerate() {
        match reply {
            Ok(scores) => println!("request {index}: class {}", scores.prediction),
            Err(err) => println!("request {index}: {err}"),
        }
    }

    // Counters in both negotiated formats on the same connection.
    println!("\n--- Prometheus exposition (excerpt) ---");
    let prom = pipelined.stats_prometheus()?;
    for line in prom.lines().filter(|l| l.contains("snn_completed")) {
        println!("{line}");
    }

    // What a scraper sees: `echo STATS | nc` against the same port.
    println!("\n--- plaintext STATS scrape ---");
    print!("{}", scrape_stats(addr)?);

    let final_stats = server.shutdown();
    println!(
        "--- shut down: {} completed, {} rejected, {} connections ---",
        final_stats.server.completed, final_stats.server.rejected, final_stats.accepted
    );
    Ok(())
}
