//! The neural-encoding trade-off that motivates the paper (Section I):
//! radix encoding reaches a given activation resolution with exponentially
//! fewer time steps than rate encoding, which translates directly into
//! latency and energy on the accelerator.
//!
//! The example compares reconstruction error and spike density of the two
//! schemes at equal train length, then uses the accelerator timing model to
//! show what resolution-equivalent rate encoding would cost on LeNet-5.
//!
//! Run with: `cargo run --release --example encoding_tradeoff`

use snn_repro::accel::config::AcceleratorConfig;
use snn_repro::baselines::rate_equivalent;
use snn_repro::encoding::analysis;
use snn_repro::model::zoo;
use snn_repro::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A smooth ramp of activations to encode.
    let activations = Tensor::from_vec(vec![256], (0..256).map(|i| i as f32 / 255.0).collect())?;

    println!("reconstruction error and spike density at equal spike-train length:");
    println!(
        "{:>4} {:>14} {:>14} {:>14} {:>14}",
        "T", "radix err", "rate err", "radix density", "rate density"
    );
    for cmp in analysis::sweep_train_lengths(&activations, &[2, 3, 4, 5, 6, 8])? {
        println!(
            "{:>4} {:>14.4} {:>14.4} {:>14.3} {:>14.3}",
            cmp.time_steps, cmp.radix_error, cmp.rate_error, cmp.radix_density, cmp.rate_density
        );
    }

    println!();
    println!("time steps needed for a given activation resolution:");
    println!("{:>6} {:>12} {:>12}", "bits", "radix steps", "rate steps");
    for bits in [3usize, 4, 6, 8, 10] {
        let (radix, rate) = analysis::steps_for_resolution(bits);
        println!("{bits:>6} {radix:>12} {rate:>12}");
    }

    // What that means on the accelerator: LeNet-5 latency under radix vs.
    // resolution-equivalent rate encoding (2 convolution units, 100 MHz).
    let config = AcceleratorConfig::lenet_experiment(2);
    let net = zoo::lenet5();
    println!();
    println!("LeNet-5 latency on the accelerator (2 conv units, 100 MHz):");
    println!(
        "{:>4} {:>8} {:>14} {:>14} {:>10}",
        "T", "T_rate", "radix [us]", "rate [us]", "slowdown"
    );
    for t in 3..=6 {
        let cmp = rate_equivalent::compare_encodings(&config, &net, t)?;
        println!(
            "{:>4} {:>8} {:>14.0} {:>14.0} {:>9.1}x",
            cmp.radix_steps,
            cmp.rate_steps,
            config.cycles_to_us(cmp.radix_cycles),
            config.cycles_to_us(cmp.rate_cycles),
            cmp.slowdown()
        );
    }
    println!();
    println!(
        "The spike-train blow-up of rate encoding is why prior deep-SNN accelerators need \
         hundreds of time steps; radix encoding reaches the same resolution in T steps."
    );
    Ok(())
}
