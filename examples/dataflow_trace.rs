//! Dataflow trace of the convolution unit — a textual rendition of Fig. 2
//! of the paper.
//!
//! A tiny 3×3 convolution over one radix-encoded feature-map row is walked
//! through step by step: the binary plane of each time step, the taps of
//! the input shift register, the kernel values applied by each adder row,
//! and the left-shift accumulation in the output logic.  At the end the
//! cycle-stepped convolution unit executes the same layer and its result is
//! checked against the narrated computation.
//!
//! Run with: `cargo run --release --example dataflow_trace`

use snn_repro::accel::config::ArrayGeometry;
use snn_repro::accel::conv::ConvolutionUnit;
use snn_repro::encoding::radix::RadixEncoder;
use snn_repro::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let time_steps = 3usize;
    let encoder = RadixEncoder::new(time_steps)?;

    // A single-channel 3x5 input feature map with activations in [0, 1].
    let activations = [
        [0.9f32, 0.1, 0.7, 0.4, 0.0],
        [0.3, 0.8, 0.2, 0.6, 1.0],
        [0.0, 0.5, 0.9, 0.1, 0.3],
    ];
    let kernel_values = [[1i64, -2, 1], [2, 3, -1], [-1, 1, 2]];
    let stride = 1usize;

    println!("Fig. 2 walk-through: 3x3 kernel, stride {stride}, X = 3 output columns, T = {time_steps}\n");

    // Radix-encode the input: one binary plane per time step.
    let levels: Vec<Vec<i64>> = activations
        .iter()
        .map(|row| {
            row.iter()
                .map(|&v| i64::from(encoder.level_of(v)))
                .collect()
        })
        .collect();
    println!("input levels (activation * (2^T - 1), rounded):");
    for row in &levels {
        println!("  {row:?}");
    }
    println!();
    for t in 0..time_steps {
        let bit = time_steps - 1 - t;
        println!("time step {t} (weight 2^{bit}): binary plane fed to the shift register");
        for row in &levels {
            let plane: Vec<u8> = row.iter().map(|&l| ((l >> bit) & 1) as u8).collect();
            println!("  {plane:?}");
        }
    }

    // Narrate the adder array for the first output row.
    println!("\nadder array, output row 0 (taps every {stride} column(s)):");
    let mut partial = [0i64; 3];
    for (ky, kernel_row) in kernel_values.iter().enumerate() {
        println!("  adder row {ky} holds kernel row {kernel_row:?}");
        for (kx, &k) in kernel_row.iter().enumerate() {
            for (x, p) in partial.iter_mut().enumerate() {
                // Full-precision contribution: kernel value times the level
                // (the hardware spreads this over T gated additions).
                let level = levels[ky][x * stride + kx];
                *p += k * level;
            }
        }
        println!("    partial sums after row {ky}: {partial:?}");
    }
    println!("  output logic accumulates over input channels and shifts left once per time step");

    // Execute the same layer on the cycle-stepped convolution unit.
    let input = Tensor::from_vec(vec![1, 3, 5], levels.concat())?;
    let kernel = Tensor::from_vec(
        vec![1, 1, 3, 3],
        kernel_values.iter().flatten().copied().collect(),
    )?;
    let bias = Tensor::filled(vec![1], 0i64);
    let unit = ConvolutionUnit::new(ArrayGeometry {
        columns: 3,
        rows: 3,
    });
    let result = unit.run_layer(&input, &kernel, &bias, time_steps, stride, 0)?;

    println!(
        "\nconvolution unit result (raw accumulators): {:?}",
        result.accumulators.as_slice()
    );
    assert_eq!(
        result.accumulators.as_slice(),
        &partial,
        "trace and unit must agree"
    );
    println!("matches the narrated partial sums: OK");
    println!(
        "\nunit statistics: {} cycles, {} gated adder operations, {} activation row reads, {} kernel reads",
        result.stats.cycles,
        result.stats.adder_ops,
        result.stats.activation_reads,
        result.stats.kernel_reads
    );
    println!("(adder operations are gated by spikes: sparser inputs switch fewer adders)");
    Ok(())
}
