//! Quickstart: the full flow from a network description to an accelerator
//! run report in ~40 lines.
//!
//! 1. Pick a network topology and (randomly initialised) parameters.
//! 2. Calibrate activations and convert the ANN into a radix-encoded SNN
//!    with 3-bit weights.
//! 3. Instantiate the accelerator with the paper's default configuration
//!    and run one inference cycle-accurately.
//!
//! Run with: `cargo run --release --example quickstart`

use snn_repro::accel::config::AcceleratorConfig;
use snn_repro::accel::sim::Accelerator;
use snn_repro::model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_repro::model::params::Parameters;
use snn_repro::model::zoo;
use snn_repro::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small CNN and an example input (a uniform grey image).
    let net = zoo::tiny_cnn();
    println!("network: {}", net.notation());
    let params = Parameters::he_init(&net, 42)?;
    let input = Tensor::from_vec(
        vec![1, 12, 12],
        (0..144).map(|i| (i % 30) as f32 / 29.0).collect(),
    )?;

    // 2. ANN-to-SNN conversion: calibrate activation ranges, quantize the
    //    weights to 3 bits, derive the per-layer requantization scales.
    let calibration = CalibrationStats::collect(&net, &params, [&input])?;
    let snn = convert(
        &net,
        &params,
        &calibration,
        ConversionConfig {
            weight_bits: 3,
            time_steps: 4,
        },
    )?;
    println!(
        "converted SNN: T = {} time steps, {}-bit weights, {} parameters",
        snn.time_steps(),
        snn.weight_bits(),
        net.parameter_count()
    );

    // 3. Instantiate the accelerator and run one inference.
    let config = AcceleratorConfig::default();
    let accelerator = Accelerator::new(config);
    println!(
        "accelerator: {} convolution units, {}x{} adder array, {} MHz",
        config.conv_units,
        config.conv_geometry.columns,
        config.conv_geometry.rows,
        config.clock_mhz
    );

    let report = accelerator.run(&snn, &input)?;
    println!();
    println!("{report}");
    println!(
        "latency: {:.1} us  |  throughput: {:.0} fps  |  energy: {:.1} uJ",
        report.latency_us(&config),
        report.throughput_fps(&config),
        report.energy_uj(&config)
    );

    // The static design report shows what the deployment would cost on the
    // FPGA (Fig. 1's blocks: processing units, weight memory, ping-pong
    // buffers).
    let design = accelerator.design_report(&snn)?;
    println!();
    println!("{design}");
    Ok(())
}
