//! Per-request span traces and the lock-light recorder behind them.
//!
//! Every admitted request owns a [`TraceBuilder`] that rides inside the
//! submission through the serving pipeline.  Phase boundaries are
//! recorded **locally** on the builder (monotonic [`Instant`] clocks, no
//! shared state), so the hot path is wait-free: the only synchronisation
//! is one shard-mutex touch when the trace completes, plus two atomic
//! bumps (the open-span gauge) at begin/finish.  Completed
//! [`RequestTrace`]s land in a fixed-capacity per-replica ring buffer —
//! old traces are evicted, never blocked on — and phase latencies feed
//! the per-replica [`LatencyHistogram`]s that the Prometheus exposition
//! renders.
//!
//! The recorder can be disabled (`SNN_TRACE=0`, see
//! [`trace_enabled_from_env`]); a disabled builder never reads the clock
//! and never touches the recorder, which is what makes the documented
//! <3% overhead budget trivially safe to verify: results are
//! bit-identical either way, only the telemetry disappears.

use crate::histogram::{render_histogram, LatencyHistogram};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// The typed phases of a request's journey through the serving stack, in
/// pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Admission checks in `StreamServer::enqueue` (shutdown gate,
    /// deadline resolution) up to the router call.
    Admission,
    /// Inside the router: snapshotting replica views and placing the
    /// submission (including spills to sibling replicas).
    Route,
    /// Sitting in the chosen replica's bounded queue until the
    /// dispatcher drains it into a micro-batch.
    QueueWait,
    /// From micro-batch drain to compute start (deadline shedding,
    /// in-flight parking, fault-injection checks).
    BatchAssembly,
    /// Executing on the engine (the `RunReport`'s cycle summary is
    /// attached to the outcome).
    Compute,
    /// Reactor write-queue residency: from the reply frame entering the
    /// connection's write buffer until the kernel accepted its last
    /// byte.  Recorded after completion by the reactor, so it is the one
    /// phase appended to an already-completed trace.
    WriteStall,
}

/// Number of [`Phase`] variants (the builder's accumulator arrays are
/// indexed by phase).
pub const PHASE_COUNT: usize = 6;

/// Every phase, in pipeline order.
pub const PHASES: [Phase; PHASE_COUNT] = [
    Phase::Admission,
    Phase::Route,
    Phase::QueueWait,
    Phase::BatchAssembly,
    Phase::Compute,
    Phase::WriteStall,
];

impl Phase {
    fn index(self) -> usize {
        match self {
            Phase::Admission => 0,
            Phase::Route => 1,
            Phase::QueueWait => 2,
            Phase::BatchAssembly => 3,
            Phase::Compute => 4,
            Phase::WriteStall => 5,
        }
    }

    /// The phase's snake_case name (the JSONL key stem).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Admission => "admission",
            Phase::Route => "route",
            Phase::QueueWait => "queue_wait",
            Phase::BatchAssembly => "batch_assembly",
            Phase::Compute => "compute",
            Phase::WriteStall => "write_stall",
        }
    }
}

/// How a request's story ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Served: the reply carried scores; `total_cycles` is the
    /// `RunReport` cycle summary.
    Scores {
        /// Modelled accelerator cycles of the inference.
        total_cycles: u64,
    },
    /// Shed as backpressure (`scope` is `"queue"` or `"deadline"`).
    Rejected {
        /// Which limit shed it.
        scope: String,
    },
    /// Failed with a typed error (`code` is the error's snake_case
    /// name, e.g. `"engine_panic"`).
    Error {
        /// Short error code.
        code: String,
    },
    /// The replica it was placed on died before serving it.
    ReplicaDown,
    /// The trace builder was dropped without an explicit outcome — a bug
    /// guard, surfaced rather than silently leaked.
    Abandoned,
}

impl Outcome {
    /// The outcome's snake_case label.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Scores { .. } => "scores",
            Outcome::Rejected { .. } => "rejected",
            Outcome::Error { .. } => "error",
            Outcome::ReplicaDown => "replica_down",
            Outcome::Abandoned => "abandoned",
        }
    }
}

/// One measured phase of a completed trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpan {
    /// Which phase.
    pub phase: Phase,
    /// Time spent in it, seconds (spills and re-entries accumulate).
    pub seconds: f64,
}

/// A completed request trace: identity, placement, measured phases,
/// terminal outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// The request id the trace is keyed by: the wire tag for
    /// reactor-submitted requests, a recorder-assigned id for in-process
    /// tickets.
    pub request_id: u64,
    /// Wall-clock completion time, milliseconds since the Unix epoch
    /// (operator tooling; durations use the monotonic clock).
    pub unix_ms: u64,
    /// The replica the router placed it on; `None` when it was rejected
    /// before placement.
    pub replica: Option<usize>,
    /// The chosen replica's queue depth the router observed at
    /// placement.
    pub queue_depth_at_route: Option<usize>,
    /// Measured phases in pipeline order (absent phases were never
    /// entered).
    pub phases: Vec<PhaseSpan>,
    /// Terminal outcome.
    pub outcome: Outcome,
    /// Admission-to-settle wall time, seconds ([`Phase::WriteStall`] is
    /// appended after settle and is *not* part of this).
    pub total_seconds: f64,
}

impl RequestTrace {
    /// The accumulated seconds of `phase`, when it was entered.
    pub fn phase_seconds(&self, phase: Phase) -> Option<f64> {
        self.phases
            .iter()
            .find(|span| span.phase == phase)
            .map(|span| span.seconds)
    }

    /// Renders the trace as one JSON line (no trailing newline).
    /// Durations are microseconds; optional fields are omitted, not
    /// null.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(192);
        out.push_str(&format!(
            "{{\"request_id\":{},\"unix_ms\":{}",
            self.request_id, self.unix_ms
        ));
        if let Some(replica) = self.replica {
            out.push_str(&format!(",\"replica\":{replica}"));
        }
        if let Some(depth) = self.queue_depth_at_route {
            out.push_str(&format!(",\"queue_depth_at_route\":{depth}"));
        }
        out.push_str(&format!(",\"outcome\":\"{}\"", self.outcome.label()));
        match &self.outcome {
            Outcome::Scores { total_cycles } => {
                out.push_str(&format!(",\"total_cycles\":{total_cycles}"));
            }
            Outcome::Rejected { scope } => {
                out.push_str(&format!(",\"scope\":\"{}\"", escape_json(scope)));
            }
            Outcome::Error { code } => {
                out.push_str(&format!(",\"code\":\"{}\"", escape_json(code)));
            }
            Outcome::ReplicaDown | Outcome::Abandoned => {}
        }
        out.push_str(&format!(",\"duration_us\":{}", self.total_seconds * 1e6));
        out.push_str(",\"phases\":{");
        for (i, span) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}_us\":{}",
                span.phase.name(),
                span.seconds * 1e6
            ));
        }
        out.push_str("}}");
        out
    }

    /// Parses a line produced by [`RequestTrace::to_json_line`].
    /// Returns `None` on anything malformed — the scraper's tolerance
    /// for a trace truncated mid-flight.
    pub fn from_json_line(line: &str) -> Option<RequestTrace> {
        let object = json::parse_object(line.trim())?;
        let request_id = json::get_u64(&object, "request_id")?;
        let unix_ms = json::get_u64(&object, "unix_ms")?;
        let replica = json::get_u64(&object, "replica").map(|v| v as usize);
        let queue_depth_at_route =
            json::get_u64(&object, "queue_depth_at_route").map(|v| v as usize);
        let outcome = match json::get_str(&object, "outcome")? {
            "scores" => Outcome::Scores {
                total_cycles: json::get_u64(&object, "total_cycles")?,
            },
            "rejected" => Outcome::Rejected {
                scope: json::get_str(&object, "scope")?.to_string(),
            },
            "error" => Outcome::Error {
                code: json::get_str(&object, "code")?.to_string(),
            },
            "replica_down" => Outcome::ReplicaDown,
            "abandoned" => Outcome::Abandoned,
            _ => return None,
        };
        let total_seconds = json::get_f64(&object, "duration_us")? / 1e6;
        let phases_obj = json::get_obj(&object, "phases")?;
        let mut phases = Vec::new();
        for phase in PHASES {
            let key = format!("{}_us", phase.name());
            if let Some(us) = json::get_f64(phases_obj, &key) {
                phases.push(PhaseSpan {
                    phase,
                    seconds: us / 1e6,
                });
            }
        }
        Some(RequestTrace {
            request_id,
            unix_ms,
            replica,
            queue_depth_at_route,
            phases,
            outcome,
            total_seconds,
        })
    }
}

fn escape_json(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Minimal JSON-object reader for the trace lines this crate itself
/// emits (numbers, strings with the emitter's three escapes, one level
/// of object nesting).  The vendored `serde` is a marker-trait stub, so
/// decoding — like encoding — is by hand.
mod json {
    #[derive(Debug, PartialEq)]
    pub(super) enum Value {
        /// A number kept as its raw token so integers avoid `f64` loss.
        Num(String),
        Str(String),
        Obj(Vec<(String, Value)>),
    }

    pub(super) fn parse_object(s: &str) -> Option<Vec<(String, Value)>> {
        let bytes = s.as_bytes();
        let mut i = 0usize;
        let object = object(bytes, &mut i)?;
        skip_ws(bytes, &mut i);
        if i == bytes.len() {
            Some(object)
        } else {
            None
        }
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    }

    fn expect(b: &[u8], i: &mut usize, c: u8) -> Option<()> {
        skip_ws(b, i);
        if *i < b.len() && b[*i] == c {
            *i += 1;
            Some(())
        } else {
            None
        }
    }

    fn string(b: &[u8], i: &mut usize) -> Option<String> {
        expect(b, i, b'"')?;
        let mut out = String::new();
        while *i < b.len() {
            match b[*i] {
                b'"' => {
                    *i += 1;
                    return Some(out);
                }
                b'\\' => {
                    *i += 1;
                    match b.get(*i)? {
                        b'\\' => out.push('\\'),
                        b'"' => out.push('"'),
                        b'n' => out.push('\n'),
                        _ => return None,
                    }
                    *i += 1;
                }
                _ => {
                    // Multi-byte UTF-8 continuation bytes pass through
                    // verbatim; the input was a valid &str to begin with.
                    out.push_str(std::str::from_utf8(&b[*i..*i + 1]).ok()?);
                    *i += 1;
                }
            }
        }
        None
    }

    fn number(b: &[u8], i: &mut usize) -> Option<String> {
        skip_ws(b, i);
        let start = *i;
        while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *i += 1;
        }
        let raw = std::str::from_utf8(&b[start..*i]).ok()?;
        // Validate now so get_* lookups can't hit an unparsable token.
        raw.parse::<f64>().ok()?;
        Some(raw.to_string())
    }

    fn value(b: &[u8], i: &mut usize) -> Option<Value> {
        skip_ws(b, i);
        match b.get(*i)? {
            b'"' => Some(Value::Str(string(b, i)?)),
            b'{' => Some(Value::Obj(object(b, i)?)),
            _ => Some(Value::Num(number(b, i)?)),
        }
    }

    fn object(b: &[u8], i: &mut usize) -> Option<Vec<(String, Value)>> {
        expect(b, i, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b'}') {
            *i += 1;
            return Some(fields);
        }
        loop {
            let key = string(b, i)?;
            expect(b, i, b':')?;
            fields.push((key, value(b, i)?));
            skip_ws(b, i);
            match b.get(*i)? {
                b',' => *i += 1,
                b'}' => {
                    *i += 1;
                    return Some(fields);
                }
                _ => return None,
            }
        }
    }

    fn get_num<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a str> {
        fields.iter().find_map(|(k, v)| match v {
            Value::Num(raw) if k == key => Some(raw.as_str()),
            _ => None,
        })
    }

    pub(super) fn get_f64(fields: &[(String, Value)], key: &str) -> Option<f64> {
        get_num(fields, key)?.parse().ok()
    }

    /// Integers parse from the raw token, not through `f64` — a request
    /// id above 2^53 must round-trip exactly.
    pub(super) fn get_u64(fields: &[(String, Value)], key: &str) -> Option<u64> {
        let raw = get_num(fields, key)?;
        raw.parse()
            .ok()
            .or_else(|| raw.parse::<f64>().ok().map(|n| n as u64))
    }

    pub(super) fn get_str<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a str> {
        fields.iter().find_map(|(k, v)| match v {
            Value::Str(s) if k == key => Some(s.as_str()),
            _ => None,
        })
    }

    pub(super) fn get_obj<'a>(
        fields: &'a [(String, Value)],
        key: &str,
    ) -> Option<&'a [(String, Value)]> {
        fields.iter().find_map(|(k, v)| match v {
            Value::Obj(o) if k == key => Some(o.as_slice()),
            _ => None,
        })
    }
}

/// Reads the `SNN_TRACE` gate: tracing is **on by default**; only the
/// literal `0` disables it.
pub fn trace_enabled_from_env() -> bool {
    !matches!(std::env::var("SNN_TRACE").as_deref(), Ok("0"))
}

/// Completed traces per recorder shard before the oldest is evicted.
pub const DEFAULT_TRACE_CAPACITY: usize = 512;

struct Shard {
    ring: VecDeque<RequestTrace>,
    queue_wait: LatencyHistogram,
    compute: LatencyHistogram,
    duration: LatencyHistogram,
}

impl Shard {
    fn new() -> Self {
        Shard {
            ring: VecDeque::new(),
            queue_wait: LatencyHistogram::new(),
            compute: LatencyHistogram::new(),
            duration: LatencyHistogram::new(),
        }
    }
}

/// The server-wide trace store: one shard per replica (plus one for
/// requests rejected before placement), each holding a bounded ring of
/// completed traces and the phase histograms the Prometheus exposition
/// renders.  See the module docs for the locking story.
pub struct SpanRecorder {
    enabled: bool,
    /// `shards[replica]`; the last shard holds unrouted traces.
    shards: Vec<Mutex<Shard>>,
    write_stall: Mutex<LatencyHistogram>,
    open: AtomicU64,
    next_id: AtomicU64,
    capacity: usize,
}

fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl SpanRecorder {
    /// A recorder with one shard per replica and the default ring
    /// capacity.  `enabled = false` builds a recorder whose builders are
    /// all no-ops (the `SNN_TRACE=0` path).
    pub fn new(replicas: usize, enabled: bool) -> Self {
        Self::with_capacity(replicas, enabled, DEFAULT_TRACE_CAPACITY)
    }

    /// As [`SpanRecorder::new`] with an explicit per-shard ring
    /// capacity.
    pub fn with_capacity(replicas: usize, enabled: bool, capacity: usize) -> Self {
        SpanRecorder {
            enabled,
            shards: (0..replicas.max(1) + 1)
                .map(|_| Mutex::new(Shard::new()))
                .collect(),
            write_stall: Mutex::new(LatencyHistogram::new()),
            open: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Whether this recorder records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Allocates a request id for a caller that has none of its own (the
    /// in-process ticket path; the reactor keys traces by its wire tag).
    pub fn next_request_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Opens a trace for `request_id`.  Wait-free: one atomic bump, no
    /// locks; a disabled recorder returns an inert builder that never
    /// reads the clock.
    pub fn begin(self: &Arc<Self>, request_id: u64) -> TraceBuilder {
        if !self.enabled {
            return TraceBuilder::disabled();
        }
        self.open.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        TraceBuilder {
            recorder: Some(Arc::clone(self)),
            request_id,
            started: now,
            phase_started: now,
            current: Phase::Admission,
            elapsed: [0.0; PHASE_COUNT],
            seen: [false; PHASE_COUNT],
            replica: None,
            depth: None,
        }
    }

    /// Traces begun but not yet finished — must return to zero at every
    /// quiescent point, else a span leaked.
    pub fn open_spans(&self) -> u64 {
        self.open.load(Ordering::Relaxed)
    }

    fn complete(&self, trace: RequestTrace) {
        self.open.fetch_sub(1, Ordering::Relaxed);
        let shard_index = match trace.replica {
            Some(replica) => replica.min(self.shards.len() - 2),
            None => self.shards.len() - 1,
        };
        let mut shard = relock(&self.shards[shard_index]);
        if let Some(seconds) = trace.phase_seconds(Phase::QueueWait) {
            shard.queue_wait.observe(seconds);
        }
        if let Some(seconds) = trace.phase_seconds(Phase::Compute) {
            shard.compute.observe(seconds);
        }
        shard.duration.observe(trace.total_seconds);
        if shard.ring.len() >= self.capacity {
            shard.ring.pop_front();
        }
        shard.ring.push_back(trace);
    }

    /// Records one reactor write-queue residency sample and appends the
    /// [`Phase::WriteStall`] span to the matching completed trace, if it
    /// is still in its ring (best-effort: an evicted trace only loses
    /// the late phase, the histogram sample is never lost).
    pub fn record_write_stall(&self, request_id: u64, seconds: f64) {
        if !self.enabled {
            return;
        }
        relock(&self.write_stall).observe(seconds);
        for shard in &self.shards {
            let mut shard = relock(shard);
            if let Some(trace) = shard
                .ring
                .iter_mut()
                .rev()
                .find(|t| t.request_id == request_id)
            {
                if trace.phase_seconds(Phase::WriteStall).is_none() {
                    trace.phases.push(PhaseSpan {
                        phase: Phase::WriteStall,
                        seconds,
                    });
                }
                return;
            }
        }
    }

    /// Drains every completed trace, oldest first (completion order
    /// within a shard, completion time across shards).  Histograms are
    /// **not** reset — they are cumulative, as Prometheus expects.
    pub fn drain(&self) -> Vec<RequestTrace> {
        let mut traces: Vec<RequestTrace> = Vec::new();
        for shard in &self.shards {
            traces.extend(relock(shard).ring.drain(..));
        }
        traces.sort_by_key(|t| (t.unix_ms, t.request_id));
        traces
    }

    /// Drains the rings into a JSONL dump — one trace per line, the
    /// `TRACES` stats-format payload.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for trace in self.drain() {
            out.push_str(&trace.to_json_line());
            out.push('\n');
        }
        out
    }

    fn merged<F: Fn(&Shard) -> &LatencyHistogram>(&self, pick: F) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for shard in &self.shards {
            merged.merge(pick(&relock(shard)));
        }
        merged
    }

    /// Queue-wait latencies merged over all shards.
    pub fn queue_wait_histogram(&self) -> LatencyHistogram {
        self.merged(|s| &s.queue_wait)
    }

    /// Compute latencies merged over all shards.
    pub fn compute_histogram(&self) -> LatencyHistogram {
        self.merged(|s| &s.compute)
    }

    /// End-to-end durations merged over all shards.
    pub fn duration_histogram(&self) -> LatencyHistogram {
        self.merged(|s| &s.duration)
    }

    /// Reactor write-queue residency.
    pub fn write_stall_histogram(&self) -> LatencyHistogram {
        relock(&self.write_stall).clone()
    }

    /// Renders the four request-phase histogram families in Prometheus
    /// exposition format (per-replica `replica` labels; the unrouted
    /// shard is labelled `replica="unrouted"`).
    pub fn render_prometheus_into(&self, out: &mut String) {
        let shards: Vec<Shard> = self
            .shards
            .iter()
            .map(|s| {
                let s = relock(s);
                Shard {
                    ring: VecDeque::new(),
                    queue_wait: s.queue_wait.clone(),
                    compute: s.compute.clone(),
                    duration: s.duration.clone(),
                }
            })
            .collect();
        let label = |i: usize| -> String {
            if i + 1 == shards.len() {
                "unrouted".to_string()
            } else {
                i.to_string()
            }
        };
        for (name, help, pick) in [
            (
                "snn_request_queue_wait_seconds",
                "Time requests sat in a replica queue before dispatch.",
                (|s: &Shard| &s.queue_wait) as fn(&Shard) -> &LatencyHistogram,
            ),
            (
                "snn_request_compute_seconds",
                "Engine execution time per request.",
                |s: &Shard| &s.compute,
            ),
            (
                "snn_request_duration_seconds",
                "Admission-to-settle wall time per request.",
                |s: &Shard| &s.duration,
            ),
        ] {
            let series: Vec<(Option<(&str, String)>, &LatencyHistogram)> = shards
                .iter()
                .enumerate()
                .map(|(i, s)| (Some(("replica", label(i))), pick(s)))
                .collect();
            render_histogram(out, name, help, &series);
        }
        let write_stall = self.write_stall_histogram();
        render_histogram(
            out,
            "snn_reactor_write_stall_seconds",
            "Reactor write-queue residency per reply.",
            &[(None, &write_stall)],
        );
    }
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("enabled", &self.enabled)
            .field("shards", &(self.shards.len()))
            .field("open", &self.open_spans())
            .finish_non_exhaustive()
    }
}

/// The per-request side of the recorder: owned by the submission, moved
/// with it through the pipeline, never shared — which is why recording a
/// phase boundary is two [`Instant`] reads and an array store, no
/// synchronisation at all.  Finishing (or dropping) the builder performs
/// the single mutex touch that publishes the trace.
#[derive(Debug)]
pub struct TraceBuilder {
    /// `None` after finishing — and from birth on a disabled recorder,
    /// which turns every method into a no-op.
    recorder: Option<Arc<SpanRecorder>>,
    request_id: u64,
    started: Instant,
    phase_started: Instant,
    current: Phase,
    elapsed: [f64; PHASE_COUNT],
    seen: [bool; PHASE_COUNT],
    replica: Option<usize>,
    depth: Option<usize>,
}

impl TraceBuilder {
    /// An inert builder (the `SNN_TRACE=0` hot path): every method
    /// no-ops without reading the clock.
    pub fn disabled() -> Self {
        TraceBuilder {
            recorder: None,
            request_id: 0,
            started: Instant::now(),
            phase_started: Instant::now(),
            current: Phase::Admission,
            elapsed: [0.0; PHASE_COUNT],
            seen: [false; PHASE_COUNT],
            replica: None,
            depth: None,
        }
    }

    fn close_current(&mut self, now: Instant) {
        let i = self.current.index();
        self.elapsed[i] += now.duration_since(self.phase_started).as_secs_f64();
        self.seen[i] = true;
    }

    /// Closes the current phase and enters `next`.  Re-entering the
    /// current phase is a no-op; re-entering an earlier phase (a router
    /// spill) accumulates into the existing span.
    pub fn advance(&mut self, next: Phase) {
        if self.recorder.is_none() || self.current == next {
            return;
        }
        let now = Instant::now();
        self.close_current(now);
        self.current = next;
        self.phase_started = now;
    }

    /// Annotates the route decision: chosen replica and the queue depth
    /// its placement view showed.  Overwritten on spill — the trace
    /// reports where the submission actually landed.
    pub fn note_route(&mut self, replica: usize, depth: usize) {
        if self.recorder.is_none() {
            return;
        }
        self.replica = Some(replica);
        self.depth = Some(depth);
    }

    /// Closes the trace with `outcome` and publishes it to the recorder
    /// (the one mutex touch).  Idempotent: later calls — including the
    /// implicit `Abandoned` finish on drop — are no-ops.
    pub fn finish(&mut self, outcome: Outcome) {
        let Some(recorder) = self.recorder.take() else {
            return;
        };
        let now = Instant::now();
        self.close_current(now);
        let phases = PHASES
            .iter()
            .filter(|p| self.seen[p.index()])
            .map(|&phase| PhaseSpan {
                phase,
                seconds: self.elapsed[phase.index()],
            })
            .collect();
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        recorder.complete(RequestTrace {
            request_id: self.request_id,
            unix_ms,
            replica: self.replica,
            queue_depth_at_route: self.depth,
            phases,
            outcome,
            total_seconds: now.duration_since(self.started).as_secs_f64(),
        });
    }
}

impl Drop for TraceBuilder {
    fn drop(&mut self) {
        // A builder dropped mid-pipeline still publishes (as Abandoned),
        // so the ring never holds an open span and the open-span gauge
        // returns to zero.
        self.finish(Outcome::Abandoned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(replicas: usize) -> Arc<SpanRecorder> {
        Arc::new(SpanRecorder::new(replicas, true))
    }

    #[test]
    fn a_full_lifecycle_produces_one_trace_with_ordered_phases() {
        let recorder = recorder(2);
        let mut trace = recorder.begin(7);
        assert_eq!(recorder.open_spans(), 1);
        trace.advance(Phase::Route);
        trace.note_route(1, 3);
        trace.advance(Phase::QueueWait);
        trace.advance(Phase::BatchAssembly);
        trace.advance(Phase::Compute);
        trace.finish(Outcome::Scores { total_cycles: 42 });
        assert_eq!(recorder.open_spans(), 0);
        let traces = recorder.drain();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.request_id, 7);
        assert_eq!(t.replica, Some(1));
        assert_eq!(t.queue_depth_at_route, Some(3));
        assert_eq!(t.outcome, Outcome::Scores { total_cycles: 42 });
        let names: Vec<&str> = t.phases.iter().map(|s| s.phase.name()).collect();
        assert_eq!(
            names,
            [
                "admission",
                "route",
                "queue_wait",
                "batch_assembly",
                "compute"
            ]
        );
        let phase_sum: f64 = t.phases.iter().map(|s| s.seconds).sum();
        assert!(phase_sum <= t.total_seconds + 1e-9);
        assert_eq!(recorder.duration_histogram().count(), 1);
        assert_eq!(recorder.queue_wait_histogram().count(), 1);
        assert_eq!(recorder.compute_histogram().count(), 1);
    }

    #[test]
    fn dropping_an_unfinished_builder_publishes_abandoned() {
        let recorder = recorder(1);
        {
            let mut trace = recorder.begin(1);
            trace.advance(Phase::Route);
        }
        assert_eq!(recorder.open_spans(), 0);
        let traces = recorder.drain();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].outcome, Outcome::Abandoned);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let recorder = Arc::new(SpanRecorder::new(2, false));
        let mut trace = recorder.begin(9);
        trace.advance(Phase::Compute);
        trace.finish(Outcome::Scores { total_cycles: 1 });
        recorder.record_write_stall(9, 0.5);
        assert_eq!(recorder.open_spans(), 0);
        assert!(recorder.drain().is_empty());
        assert!(recorder.duration_histogram().is_empty());
        assert!(recorder.write_stall_histogram().is_empty());
    }

    #[test]
    fn ring_capacity_evicts_oldest_without_blocking() {
        let recorder = Arc::new(SpanRecorder::with_capacity(1, true, 4));
        for id in 0..10u64 {
            let mut trace = recorder.begin(id);
            trace.note_route(0, 0);
            trace.finish(Outcome::Scores { total_cycles: id });
        }
        let traces = recorder.drain();
        assert_eq!(traces.len(), 4);
        assert_eq!(traces.last().unwrap().request_id, 9);
        // Histograms keep the full population even after eviction.
        assert_eq!(recorder.duration_histogram().count(), 10);
    }

    #[test]
    fn write_stall_amends_the_completed_trace_and_its_histogram() {
        let recorder = recorder(1);
        let mut trace = recorder.begin(3);
        trace.note_route(0, 0);
        trace.finish(Outcome::Scores { total_cycles: 5 });
        recorder.record_write_stall(3, 0.002);
        assert_eq!(recorder.write_stall_histogram().count(), 1);
        let traces = recorder.drain();
        assert_eq!(traces[0].phase_seconds(Phase::WriteStall), Some(0.002));
        // After the drain the trace is gone; the histogram still records.
        recorder.record_write_stall(3, 0.001);
        assert_eq!(recorder.write_stall_histogram().count(), 2);
    }

    #[test]
    fn spilled_route_phases_accumulate_into_one_span() {
        let recorder = recorder(2);
        let mut trace = recorder.begin(11);
        trace.advance(Phase::Route);
        trace.note_route(0, 5);
        trace.advance(Phase::QueueWait);
        // Spill: back to routing, land elsewhere.
        trace.advance(Phase::Route);
        trace.note_route(1, 0);
        trace.advance(Phase::QueueWait);
        trace.finish(Outcome::Scores { total_cycles: 1 });
        let traces = recorder.drain();
        let route_spans = traces[0]
            .phases
            .iter()
            .filter(|s| s.phase == Phase::Route)
            .count();
        assert_eq!(route_spans, 1, "re-entered phases merge");
        assert_eq!(traces[0].replica, Some(1), "the landing replica wins");
    }

    #[test]
    fn jsonl_round_trips() {
        let trace = RequestTrace {
            request_id: 12,
            unix_ms: 1_700_000_000_123,
            replica: Some(1),
            queue_depth_at_route: Some(4),
            phases: vec![
                PhaseSpan {
                    phase: Phase::Admission,
                    seconds: 1.5e-6,
                },
                PhaseSpan {
                    phase: Phase::Compute,
                    seconds: 0.25,
                },
            ],
            outcome: Outcome::Rejected {
                scope: "deadline".to_string(),
            },
            total_seconds: 0.5,
        };
        let line = trace.to_json_line();
        let parsed = RequestTrace::from_json_line(&line).unwrap();
        assert_eq!(parsed.request_id, trace.request_id);
        assert_eq!(parsed.outcome, trace.outcome);
        assert_eq!(parsed.phases.len(), trace.phases.len());
        for (a, b) in parsed.phases.iter().zip(&trace.phases) {
            assert_eq!(a.phase, b.phase);
            assert!((a.seconds - b.seconds).abs() < 1e-12);
        }
        assert!(RequestTrace::from_json_line("{not json").is_none());
        assert!(RequestTrace::from_json_line("").is_none());
    }
}
