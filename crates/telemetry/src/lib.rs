//! Per-request span telemetry for the SNN serving stack.
//!
//! This crate is the observability backbone the serving layers
//! (`snn-accel`'s `StreamServer`, `snn-net`'s reactor) thread a
//! [`SpanRecorder`] through: every admitted request carries a
//! [`TraceBuilder`] that marks typed phase boundaries
//! ([`Phase::Admission`] → [`Phase::Route`] → [`Phase::QueueWait`] →
//! [`Phase::BatchAssembly`] → [`Phase::Compute`], with
//! [`Phase::WriteStall`] appended by the reactor after settle) and a
//! terminal [`Outcome`].  Completed [`RequestTrace`]s are exported three
//! ways:
//!
//! 1. **Prometheus histograms** — [`SpanRecorder::render_prometheus_into`]
//!    appends `snn_request_queue_wait_seconds`,
//!    `snn_request_compute_seconds`, `snn_request_duration_seconds`
//!    (per-`replica` labels) and `snn_reactor_write_stall_seconds` to
//!    the existing STATS exposition, using the fixed log-spaced buckets
//!    of [`histogram`].
//! 2. **JSONL trace dump** — [`SpanRecorder::render_jsonl`] drains the
//!    per-replica ring buffers into one [`RequestTrace::to_json_line`]
//!    line per trace (STATS format byte `2 = TRACES` on the wire).
//! 3. **Bench percentiles** — [`LatencyHistogram::quantile`] gives the
//!    bench harnesses p50/p99/p999 per phase for `BENCH_*.json`.
//!
//! Design constraints (see `ARCHITECTURE.md` § Observability): the hot
//! path is wait-free — a span start is two `Instant` reads and an array
//! store on builder-owned state, and the single mutex touch happens at
//! completion.  Tracing is on by default; `SNN_TRACE=0`
//! ([`trace_enabled_from_env`]) disables it with bit-identical serving
//! results.

pub mod histogram;
pub mod trace;

pub use histogram::{
    bucket_index, bucket_upper_bound, escape_label_value, render_histogram, LatencyHistogram,
    BUCKET_COUNT,
};
pub use trace::{
    trace_enabled_from_env, Outcome, Phase, PhaseSpan, RequestTrace, SpanRecorder, TraceBuilder,
    DEFAULT_TRACE_CAPACITY, PHASES, PHASE_COUNT,
};
