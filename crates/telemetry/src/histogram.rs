//! Fixed log-spaced latency histograms with pure-function bucket math.
//!
//! The serving stack records request-phase latencies into these
//! histograms on the hot path, so the representation is a flat array of
//! counters: no allocation per observation, merging is element-wise
//! addition, and the bucket layout is a **pure function** of the bucket
//! index ([`bucket_upper_bound`]) so property tests can pin the math
//! against a hand-stepped model without constructing a histogram at all.
//!
//! Buckets are log2-spaced seconds: bucket `i` covers
//! `(bound(i-1), bound(i)]` with `bound(i) = 1 µs · 2^i`, giving
//! [`BUCKET_COUNT`] finite buckets from 1 µs to ~33.6 s plus a `+Inf`
//! catch-all — wide enough for a queue-wait under chaos, fine enough that
//! a p99 read off the histogram is within a factor of 2 of the truth.

/// Number of finite buckets.  The `+Inf` catch-all is stored separately
/// (index [`BUCKET_COUNT`] in [`LatencyHistogram::counts`]).
pub const BUCKET_COUNT: usize = 26;

/// Upper bound (inclusive) of finite bucket `i`, in seconds:
/// `1 µs · 2^i`.  A pure function so tests can verify the layout
/// independently of any histogram instance.
///
/// # Panics
///
/// Panics when `i >= BUCKET_COUNT` — there is no finite bound past the
/// last bucket, only the `+Inf` catch-all.
pub fn bucket_upper_bound(i: usize) -> f64 {
    assert!(i < BUCKET_COUNT, "bucket {i} has no finite upper bound");
    1e-6 * (1u64 << i) as f64
}

/// The bucket a sample of `seconds` lands in: the smallest `i` with
/// `seconds <= bucket_upper_bound(i)`, or [`BUCKET_COUNT`] (the `+Inf`
/// bucket) when the sample exceeds every finite bound.  Negative samples
/// (a clock anomaly) land in bucket 0; NaN lands in `+Inf` — every
/// sample lands in exactly one bucket.
pub fn bucket_index(seconds: f64) -> usize {
    if seconds.is_nan() {
        return BUCKET_COUNT;
    }
    for i in 0..BUCKET_COUNT {
        if seconds <= bucket_upper_bound(i) {
            return i;
        }
    }
    BUCKET_COUNT
}

/// A fixed-layout latency histogram: per-bucket counts plus the running
/// sum and count that Prometheus `_sum`/`_count` series report.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    /// `counts[i]` samples fell in bucket `i`; `counts[BUCKET_COUNT]` is
    /// the `+Inf` catch-all.
    counts: [u64; BUCKET_COUNT + 1],
    sum: f64,
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; BUCKET_COUNT + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one sample of `seconds`.
    pub fn observe(&mut self, seconds: f64) {
        self.counts[bucket_index(seconds)] += 1;
        // NaN would poison the running sum without making the count lie.
        if !seconds.is_nan() {
            self.sum += seconds;
        }
        self.count += 1;
    }

    /// Adds every sample of `other` into `self` (element-wise; the bucket
    /// layout is fixed, so merging is exact).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Total samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values, in seconds.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Whether no sample has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The per-bucket counts (`+Inf` last).
    pub fn counts(&self) -> &[u64; BUCKET_COUNT + 1] {
        &self.counts
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) in seconds by linear
    /// interpolation inside the bucket holding the target rank.  Returns
    /// `0.0` for an empty histogram; a rank landing in the `+Inf` bucket
    /// reports the last finite bound (the histogram cannot resolve
    /// further).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Target rank, 1-based: the ceil matches the usual "at least q of
        // the mass at or below the value" definition.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for i in 0..BUCKET_COUNT {
            let in_bucket = self.counts[i];
            if seen + in_bucket >= rank {
                let lower = if i == 0 {
                    0.0
                } else {
                    bucket_upper_bound(i - 1)
                };
                let upper = bucket_upper_bound(i);
                let fraction = (rank - seen) as f64 / in_bucket as f64;
                return lower + (upper - lower) * fraction;
            }
            seen += in_bucket;
        }
        bucket_upper_bound(BUCKET_COUNT - 1)
    }
}

/// Escapes a Prometheus label value: backslash, double quote and newline
/// must be backslash-escaped inside the `label="value"` syntax.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Renders one Prometheus histogram metric: a single `# HELP`/`# TYPE`
/// header followed by the cumulative `_bucket`, `_sum` and `_count`
/// series of every labelled histogram in `series` (label `None` renders
/// an unlabelled series).  Empty histograms are still rendered — a
/// scraper distinguishes "no samples yet" from "series missing".
pub fn render_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    series: &[(Option<(&str, String)>, &LatencyHistogram)],
) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    for (label, histogram) in series {
        let label_prefix = match label {
            Some((key, value)) => format!("{key}=\"{}\",", escape_label_value(value)),
            None => String::new(),
        };
        let mut cumulative = 0u64;
        for (i, &count) in histogram.counts().iter().enumerate() {
            cumulative += count;
            let le = if i < BUCKET_COUNT {
                bucket_upper_bound(i).to_string()
            } else {
                "+Inf".to_string()
            };
            out.push_str(&format!(
                "{name}_bucket{{{label_prefix}le=\"{le}\"}} {cumulative}\n"
            ));
        }
        let label_block = match label {
            Some((key, value)) => format!("{{{key}=\"{}\"}}", escape_label_value(value)),
            None => String::new(),
        };
        out.push_str(&format!("{name}_sum{label_block} {}\n", histogram.sum()));
        out.push_str(&format!(
            "{name}_count{label_block} {}\n",
            histogram.count()
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_log_spaced_and_monotone() {
        assert!((bucket_upper_bound(0) - 1e-6).abs() < 1e-18);
        for i in 1..BUCKET_COUNT {
            assert!(bucket_upper_bound(i) > bucket_upper_bound(i - 1));
            assert!((bucket_upper_bound(i) / bucket_upper_bound(i - 1) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_land_where_the_bounds_say() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(1e-6), 0);
        assert_eq!(bucket_index(1.1e-6), 1);
        assert_eq!(bucket_index(f64::INFINITY), BUCKET_COUNT);
        assert_eq!(bucket_index(f64::NAN), BUCKET_COUNT);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(
            bucket_index(bucket_upper_bound(BUCKET_COUNT - 1) * 1.01),
            BUCKET_COUNT
        );
    }

    #[test]
    fn observe_merge_and_quantile_agree_with_a_flat_model() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let samples = [1e-6, 5e-6, 1e-3, 0.25, 40.0];
        for (i, &s) in samples.iter().enumerate() {
            if i % 2 == 0 { &mut a } else { &mut b }.observe(s);
        }
        a.merge(&b);
        assert_eq!(a.count(), samples.len() as u64);
        assert!((a.sum() - samples.iter().sum::<f64>()).abs() < 1e-9);
        assert_eq!(a.counts().iter().sum::<u64>(), a.count());
        // 40 s exceeds the last finite bound.
        assert_eq!(a.counts()[BUCKET_COUNT], 1);
        // The median sample (1 ms) sits in its bucket's range.
        let p50 = a.quantile(0.5);
        assert!(p50 > 1e-4 && p50 <= 1.1e-3, "p50 = {p50}");
        assert_eq!(LatencyHistogram::new().quantile(0.99), 0.0);
    }

    #[test]
    fn label_escaping_covers_the_specials() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
