//! Property-pins for the telemetry crate: histogram bucket math against
//! a hand-stepped model, Prometheus exposition-format conformance for
//! the rendered series, and JSONL round-trip over arbitrary traces.
//!
//! The bucket layout is a pure function (`bucket_upper_bound`,
//! `bucket_index`), so the model here recomputes placement by walking
//! the bounds linearly and the histogram state by replaying every
//! observation into a flat vector — any drift between the two is a
//! layout change that must be deliberate (it would silently re-bucket
//! every dashboard).

use proptest::prelude::*;
use snn_telemetry::trace::{Outcome, PhaseSpan, RequestTrace, PHASES};
use snn_telemetry::{
    bucket_index, bucket_upper_bound, render_histogram, LatencyHistogram, BUCKET_COUNT,
};

/// The hand-stepped placement model: the first bound at or above the
/// sample wins; anything past the last finite bound (or NaN) is `+Inf`.
fn model_bucket(seconds: f64) -> usize {
    if seconds.is_nan() {
        return BUCKET_COUNT;
    }
    let mut i = 0;
    while i < BUCKET_COUNT {
        if seconds <= bucket_upper_bound(i) {
            return i;
        }
        i += 1;
    }
    BUCKET_COUNT
}

/// Shapes a `(kind, magnitude)` pair into an interesting sample:
/// sub-microsecond, mid-range, beyond the last bound, zero, or negative
/// (clock anomaly).  The vendored proptest has no `prop_oneof`, so the
/// mixing happens here, in plain code.
fn shape_sample(kind: usize, magnitude: f64) -> f64 {
    match kind % 5 {
        0 => 1e-9 + magnitude * 1e-6,     // below / at the first bound
        1 => magnitude * 100.0,           // the meat of the range
        2 => 40.0 + magnitude * 1e4,      // past the last finite bound
        3 => 0.0,                         // exact zero
        _ => -1e-3 * (magnitude + 0.001), // negative: clamps to bucket 0
    }
}

/// Lowercase label text from a byte vector (no string strategies in the
/// vendored proptest).
fn label_from(bytes: &[u8]) -> String {
    bytes.iter().map(|b| char::from(b'a' + (b % 26))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Bucket bounds are strictly monotone and exactly log2-spaced, so
    /// every sample lands in exactly one bucket: the one the model picks.
    #[test]
    fn every_sample_lands_in_exactly_one_bucket(
        kind in 0usize..5,
        magnitude in 0.0f64..1.0,
    ) {
        for i in 1..BUCKET_COUNT {
            prop_assert!(bucket_upper_bound(i) > bucket_upper_bound(i - 1));
            prop_assert!(
                (bucket_upper_bound(i) / bucket_upper_bound(i - 1) - 2.0).abs() < 1e-12
            );
        }
        let s = shape_sample(kind, magnitude);
        let i = bucket_index(s);
        prop_assert_eq!(i, model_bucket(s));
        prop_assert!(i <= BUCKET_COUNT);
        if i < BUCKET_COUNT {
            prop_assert!(s <= bucket_upper_bound(i));
            if i > 0 {
                prop_assert!(s > bucket_upper_bound(i - 1));
            }
        } else {
            prop_assert!(s > bucket_upper_bound(BUCKET_COUNT - 1));
        }
    }

    /// Replaying observations into a flat model reproduces the
    /// histogram's counts, sum and count exactly; bucket counts always
    /// total the sample count (the `+Inf` catch-all leaks nothing), and
    /// merging two histograms equals observing the concatenation.
    #[test]
    fn histogram_state_matches_replayed_model(
        first in proptest::collection::vec((0usize..5, 0.0f64..1.0), 0..64),
        second in proptest::collection::vec((0usize..5, 0.0f64..1.0), 0..64),
    ) {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut model_counts = vec![0u64; BUCKET_COUNT + 1];
        let mut model_sum = 0.0f64;
        for &(kind, magnitude) in &first {
            let s = shape_sample(kind, magnitude);
            a.observe(s);
            model_counts[model_bucket(s)] += 1;
            model_sum += s;
        }
        for &(kind, magnitude) in &second {
            let s = shape_sample(kind, magnitude);
            b.observe(s);
            model_counts[model_bucket(s)] += 1;
            model_sum += s;
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), (first.len() + second.len()) as u64);
        prop_assert_eq!(a.counts().iter().sum::<u64>(), a.count());
        prop_assert_eq!(a.counts().as_slice(), model_counts.as_slice());
        prop_assert!((a.sum() - model_sum).abs() <= 1e-9 * model_sum.abs().max(1.0));

        // Quantiles are monotone in q and bounded by the bucket range.
        if !a.is_empty() {
            let p50 = a.quantile(0.5);
            let p99 = a.quantile(0.99);
            let p999 = a.quantile(0.999);
            prop_assert!(p50 <= p99 && p99 <= p999);
            prop_assert!(p999 <= bucket_upper_bound(BUCKET_COUNT - 1));
        }
    }

    /// Exposition conformance for any rendered histogram: one HELP and
    /// one TYPE line, cumulative non-decreasing `_bucket` series ending
    /// in `le="+Inf"` equal to `_count`, and every line either a comment
    /// or a `name{...} value` sample of that family.
    #[test]
    fn rendered_exposition_is_conformant(
        samples in proptest::collection::vec((0usize..5, 0.0f64..1.0), 0..32),
        label_bytes in proptest::collection::vec(0u8..255, 0..12),
    ) {
        let mut h = LatencyHistogram::new();
        for &(kind, magnitude) in &samples {
            h.observe(shape_sample(kind, magnitude));
        }
        let label = label_from(&label_bytes);
        let mut out = String::new();
        render_histogram(
            &mut out,
            "snn_test_seconds",
            "Test histogram.",
            &[(Some(("replica", label.clone())), &h)],
        );
        let lines: Vec<&str> = out.lines().collect();
        prop_assert_eq!(lines[0], "# HELP snn_test_seconds Test histogram.");
        prop_assert_eq!(lines[1], "# TYPE snn_test_seconds histogram");
        prop_assert_eq!(
            lines.iter().filter(|l| l.starts_with('#')).count(), 2,
            "exactly one HELP and one TYPE line"
        );

        let mut previous = 0u64;
        let mut bucket_lines = 0usize;
        let mut last_le = String::new();
        for line in &lines[2..] {
            prop_assert!(
                line.starts_with("snn_test_seconds_bucket{")
                    || line.starts_with("snn_test_seconds_sum{")
                    || line.starts_with("snn_test_seconds_count{"),
                "unexpected line {:?}", line
            );
            if let Some(rest) = line.strip_prefix("snn_test_seconds_bucket{") {
                bucket_lines += 1;
                let (labels, value) = rest.rsplit_once("} ").unwrap();
                prop_assert!(labels.starts_with("replica=\""));
                last_le = labels
                    .rsplit("le=\"")
                    .next()
                    .unwrap()
                    .trim_end_matches('"')
                    .to_string();
                let cumulative: u64 = value.parse().unwrap();
                prop_assert!(cumulative >= previous, "cumulative counts never decrease");
                previous = cumulative;
            }
        }
        prop_assert_eq!(bucket_lines, BUCKET_COUNT + 1);
        prop_assert_eq!(last_le.as_str(), "+Inf");
        prop_assert_eq!(previous, h.count(), "+Inf bucket equals _count");
        let count_line = *lines.last().unwrap();
        let count_suffix = format!(" {}", h.count());
        let count_matches = count_line.ends_with(&count_suffix);
        prop_assert!(count_matches, "count line mismatch: {:?}", count_line);
    }

    /// Any trace the recorder can produce survives the JSONL round trip
    /// with its identity, placement, outcome and phase set intact.
    #[test]
    fn jsonl_round_trips_arbitrary_traces(
        request_id in 0u64..u64::MAX / 2,
        unix_ms in 0u64..4_000_000_000_000,
        replica in proptest::option::of(0usize..8),
        depth in proptest::option::of(0usize..1024),
        phase_mask in 0u8..64,
        durations in proptest::collection::vec(0.0f64..100.0, 6..=6),
        outcome_pick in 0usize..5,
        scope_bytes in proptest::collection::vec(0u8..255, 1..12),
        cycles in 0u64..1_000_000_000,
    ) {
        let scope = label_from(&scope_bytes);
        let outcome = match outcome_pick {
            0 => Outcome::Scores { total_cycles: cycles },
            1 => Outcome::Rejected { scope: scope.clone() },
            2 => Outcome::Error { code: scope.clone() },
            3 => Outcome::ReplicaDown,
            _ => Outcome::Abandoned,
        };
        let phases: Vec<PhaseSpan> = PHASES
            .iter()
            .enumerate()
            .filter(|(i, _)| phase_mask & (1 << i) != 0)
            .map(|(i, &phase)| PhaseSpan { phase, seconds: durations[i] })
            .collect();
        let trace = RequestTrace {
            request_id,
            unix_ms,
            replica,
            queue_depth_at_route: depth,
            phases,
            outcome,
            total_seconds: durations.iter().sum(),
        };
        let parsed = RequestTrace::from_json_line(&trace.to_json_line());
        let parsed = parsed.expect("emitted line must parse");
        prop_assert_eq!(parsed.request_id, trace.request_id);
        prop_assert_eq!(parsed.unix_ms, trace.unix_ms);
        prop_assert_eq!(parsed.replica, trace.replica);
        prop_assert_eq!(parsed.queue_depth_at_route, trace.queue_depth_at_route);
        prop_assert_eq!(&parsed.outcome, &trace.outcome);
        prop_assert_eq!(parsed.phases.len(), trace.phases.len());
        for (a, b) in parsed.phases.iter().zip(&trace.phases) {
            prop_assert_eq!(a.phase, b.phase);
            prop_assert!((a.seconds - b.seconds).abs() <= 1e-9 * b.seconds.max(1e-6));
        }
    }
}
