//! Benchmark trend check: compares fresh `BENCH_*.json` summaries against
//! the committed previous values.
//!
//! ```text
//! bench_trend <baseline.json> <current.json> [threshold]
//! ```
//!
//! Two tiers, with the failure tier set **per metric** by
//! [`snn_bench::trend::fail_threshold_for`]: stable duration keys
//! (`_ns`/`_us`/`_ms` latencies, `p999*` tails excepted) **fail** past
//! the warn threshold (20 %) — three PRs of baselines have shown them
//! reproducible on the hosted runner — while throughput keys (`_ips`,
//! `per_sec`, ...) warn at 20 % and only fail past 50 %, because the
//! 1-core runner's ambient noise genuinely explains tens of percent of
//! throughput.  Warnings print GitHub `::warning::` annotations and stay
//! non-blocking; failures print `::error::` and exit non-zero.  A missing
//! baseline (first run of a new summary) is reported and skipped.

use snn_bench::trend::{
    compare, fail_threshold_for, parse_metrics, parse_metrics_with_skipped, DEFAULT_THRESHOLD,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_trend <baseline.json> <current.json> [threshold]");
        return;
    }
    let threshold: f64 = args
        .get(3)
        .and_then(|t| t.parse().ok())
        .unwrap_or(DEFAULT_THRESHOLD);

    let baseline_text = match std::fs::read_to_string(&args[1]) {
        Ok(text) => text,
        Err(e) => {
            println!("bench-trend: no baseline at {} ({e}); skipping", args[1]);
            return;
        }
    };
    let current_text = match std::fs::read_to_string(&args[2]) {
        Ok(text) => text,
        Err(e) => {
            println!("::warning::bench-trend: cannot read {} ({e})", args[2]);
            return;
        }
    };
    let (baseline, current, skipped) = match (
        parse_metrics(&baseline_text),
        parse_metrics_with_skipped(&current_text),
    ) {
        (Ok(b), Ok((c, s))) => (b, c, s),
        (Err(e), _) | (_, Err(e)) => {
            println!("::warning::bench-trend: malformed summary: {e}");
            return;
        }
    };
    // Keys the classifier does not compare are logged, not silently
    // dropped — a typo'd unit suffix on a new metric shows up here.
    if !skipped.is_empty() {
        println!(
            "bench-trend: {} numeric key(s) in {} are informational (not compared): {}",
            skipped.len(),
            args[2],
            skipped.join(", ")
        );
    }

    let regressions = compare(&baseline, &current, threshold);
    if regressions.is_empty() {
        println!(
            "bench-trend: {} vs {}: {} comparable metrics, none regressed by more than {:.0}%",
            args[1],
            args[2],
            current.len(),
            100.0 * threshold
        );
        return;
    }
    let mut failures = 0usize;
    for regression in &regressions {
        // The failure tier is per metric: stable duration keys fail at the
        // warn threshold, throughput keys tolerate runner noise up to 50 %.
        if regression.exceeds(fail_threshold_for(&regression.id)) {
            failures += 1;
            println!("::error::bench-trend ({}): {regression}", args[2]);
        } else {
            println!("::warning::bench-trend ({}): {regression}", args[2]);
        }
    }
    if failures > 0 {
        println!(
            "bench-trend: {failures} metric(s) regressed past their failure tier — failing the check ({} more in the warning tier)",
            regressions.len() - failures,
        );
        std::process::exit(1);
    }
    println!(
        "bench-trend: {} metric(s) regressed by more than {:.0}% (non-blocking, see warnings)",
        regressions.len(),
        100.0 * threshold
    );
}
