//! Benchmark trend check: compares fresh `BENCH_*.json` summaries against
//! the committed previous values and warns on >20 % regressions.
//!
//! ```text
//! bench_trend <baseline.json> <current.json> [threshold]
//! ```
//!
//! Per the roadmap the check is **non-blocking**: warnings are printed as
//! GitHub `::warning::` annotations and the exit code is always zero, so
//! noisy hosted runners cannot block merges while the numbers stabilise.
//! A missing baseline (first run of a new summary) is reported and
//! skipped.

use snn_bench::trend::{compare, parse_metrics, DEFAULT_THRESHOLD};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_trend <baseline.json> <current.json> [threshold]");
        return;
    }
    let threshold: f64 = args
        .get(3)
        .and_then(|t| t.parse().ok())
        .unwrap_or(DEFAULT_THRESHOLD);

    let baseline_text = match std::fs::read_to_string(&args[1]) {
        Ok(text) => text,
        Err(e) => {
            println!("bench-trend: no baseline at {} ({e}); skipping", args[1]);
            return;
        }
    };
    let current_text = match std::fs::read_to_string(&args[2]) {
        Ok(text) => text,
        Err(e) => {
            println!("::warning::bench-trend: cannot read {} ({e})", args[2]);
            return;
        }
    };
    let (baseline, current) = match (parse_metrics(&baseline_text), parse_metrics(&current_text)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            println!("::warning::bench-trend: malformed summary: {e}");
            return;
        }
    };

    let regressions = compare(&baseline, &current, threshold);
    if regressions.is_empty() {
        println!(
            "bench-trend: {} vs {}: {} comparable metrics, none regressed by more than {:.0}%",
            args[1],
            args[2],
            current.len(),
            100.0 * threshold
        );
    } else {
        for regression in &regressions {
            println!("::warning::bench-trend ({}): {regression}", args[2]);
        }
        println!(
            "bench-trend: {} metric(s) regressed by more than {:.0}% (non-blocking, see warnings)",
            regressions.len(),
            100.0 * threshold
        );
    }
}
