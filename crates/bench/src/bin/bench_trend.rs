//! Benchmark trend check: compares fresh `BENCH_*.json` summaries against
//! the committed previous values; >20 % regressions warn, >50 % fail.
//!
//! ```text
//! bench_trend <baseline.json> <current.json> [threshold]
//! ```
//!
//! Two tiers: regressions past the warn threshold (default 20 %) are
//! printed as GitHub `::warning::` annotations and stay non-blocking, so
//! noisy hosted runners cannot block merges while the numbers stabilise —
//! but a regression past [`FAIL_THRESHOLD`] (50 %) is far outside runner
//! noise, prints a `::error::` annotation and exits non-zero.  A missing
//! baseline (first run of a new summary) is reported and skipped.

use snn_bench::trend::{
    compare, parse_metrics, parse_metrics_with_skipped, DEFAULT_THRESHOLD, FAIL_THRESHOLD,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_trend <baseline.json> <current.json> [threshold]");
        return;
    }
    let threshold: f64 = args
        .get(3)
        .and_then(|t| t.parse().ok())
        .unwrap_or(DEFAULT_THRESHOLD);

    let baseline_text = match std::fs::read_to_string(&args[1]) {
        Ok(text) => text,
        Err(e) => {
            println!("bench-trend: no baseline at {} ({e}); skipping", args[1]);
            return;
        }
    };
    let current_text = match std::fs::read_to_string(&args[2]) {
        Ok(text) => text,
        Err(e) => {
            println!("::warning::bench-trend: cannot read {} ({e})", args[2]);
            return;
        }
    };
    let (baseline, current, skipped) = match (
        parse_metrics(&baseline_text),
        parse_metrics_with_skipped(&current_text),
    ) {
        (Ok(b), Ok((c, s))) => (b, c, s),
        (Err(e), _) | (_, Err(e)) => {
            println!("::warning::bench-trend: malformed summary: {e}");
            return;
        }
    };
    // Keys the classifier does not compare are logged, not silently
    // dropped — a typo'd unit suffix on a new metric shows up here.
    if !skipped.is_empty() {
        println!(
            "bench-trend: {} numeric key(s) in {} are informational (not compared): {}",
            skipped.len(),
            args[2],
            skipped.join(", ")
        );
    }

    let regressions = compare(&baseline, &current, threshold);
    if regressions.is_empty() {
        println!(
            "bench-trend: {} vs {}: {} comparable metrics, none regressed by more than {:.0}%",
            args[1],
            args[2],
            current.len(),
            100.0 * threshold
        );
        return;
    }
    let mut failures = 0usize;
    for regression in &regressions {
        if regression.exceeds(FAIL_THRESHOLD) {
            failures += 1;
            println!("::error::bench-trend ({}): {regression}", args[2]);
        } else {
            println!("::warning::bench-trend ({}): {regression}", args[2]);
        }
    }
    if failures > 0 {
        println!(
            "bench-trend: {failures} metric(s) regressed by more than {:.0}% — failing the check              ({} more past the {:.0}% warning tier)",
            100.0 * FAIL_THRESHOLD,
            regressions.len() - failures,
            100.0 * threshold
        );
        std::process::exit(1);
    }
    println!(
        "bench-trend: {} metric(s) regressed by more than {:.0}% (non-blocking, see warnings)",
        regressions.len(),
        100.0 * threshold
    );
}
