//! Design-space exploration ablation: sweeps the number of convolution
//! units, the clock frequency and the linear-unit lanes for LeNet-5, prints
//! every evaluated point and marks the Pareto-optimal ones — the automated
//! version of the paper's informal "four units give one of the best
//! latency-power-resource ratios" argument (Section IV-A).
//!
//! Usage: `cargo run -p snn-bench --release --bin dse`

use snn_accel::config::AcceleratorConfig;
use snn_accel::dse::{sweep, SweepSpace};
use snn_model::zoo;

fn main() {
    let net = zoo::lenet5();
    let space = SweepSpace {
        conv_units: vec![1, 2, 4, 8],
        clock_mhz: vec![100.0, 150.0, 200.0],
        linear_lanes: vec![8, 16, 32],
    };
    let result = sweep(&AcceleratorConfig::default(), &space, &net, 4)
        .expect("LeNet-5 maps onto every swept configuration");
    let pareto: std::collections::HashSet<usize> = result.pareto_indices().into_iter().collect();

    println!("design-space exploration: LeNet-5, T = 4, 3-bit weights");
    println!(
        "{:>6} {:>6} {:>6} {:>12} {:>8} {:>12} {:>8} {:>8}  pareto",
        "units", "MHz", "lanes", "latency[us]", "pow[W]", "energy[uJ]", "LUTs", "FFs"
    );
    for (i, point) in result.points.iter().enumerate() {
        println!(
            "{:>6} {:>6.0} {:>6} {:>12.1} {:>8.2} {:>12.1} {:>8} {:>8}  {}",
            point.config.conv_units,
            point.config.clock_mhz,
            point.config.linear_lanes,
            point.latency_us,
            point.power_w,
            point.energy_uj,
            point.luts,
            point.flip_flops,
            if pareto.contains(&i) { "*" } else { "" }
        );
    }
    if let Some(best) = result.best_by_figure_of_merit() {
        println!(
            "\nbest latency x power x LUTs product: {} conv units at {:.0} MHz with {} lanes",
            best.config.conv_units, best.config.clock_mhz, best.config.linear_lanes
        );
    }
    println!("(the paper picks 4 units at 200 MHz for its LeNet-5 deployment)");
}
