//! Regenerates Table I of the paper: classification accuracy and inference
//! latency of LeNet-5 as a function of the spike-train length (T = 3..=6),
//! with two convolution units at 100 MHz.
//!
//! The accuracy column uses the synthetic-digit stand-in for MNIST (see
//! DESIGN.md), so absolute accuracies differ from the paper; the trends —
//! accuracy improving then saturating with T, latency scaling linearly with
//! T — are the reproduction targets.
//!
//! Usage: `cargo run -p snn-bench --release --bin table1 [--full]`

use snn_bench::experiments::{format_table1, table1};
use snn_bench::workloads::Effort;

fn main() {
    let effort = if std::env::args().any(|a| a == "--full") {
        Effort::Full
    } else {
        Effort::Quick
    };
    eprintln!("training LeNet-5 on the synthetic digit dataset ({effort:?} profile)...");
    let rows = table1(effort, 2022);
    print!("{}", format_table1(&rows));
    println!();
    println!("paper reference (MNIST, Table I):");
    println!(
        "{:>10} {:>10} {:>12}",
        "time steps", "acc [%]", "latency [us]"
    );
    for (t, acc, lat) in [
        (3, 98.57, 648.0),
        (4, 99.09, 856.0),
        (5, 99.21, 1063.0),
        (6, 99.26, 1271.0),
    ] {
        println!("{t:>10} {acc:>10.2} {lat:>12.0}");
    }
}
