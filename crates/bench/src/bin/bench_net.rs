//! Multi-connection loopback load generator for the `snn-net` TCP
//! front-end: measures end-to-end serving throughput and latency
//! percentiles **at the system boundary** — sockets, framing, the single
//! reactor and the micro-batching server included — and writes
//! `BENCH_net.json` at the workspace root so the network-serving
//! trajectory is tracked PR over PR alongside `BENCH_conv.json` and
//! `BENCH_serve.json`.
//!
//! Five phases:
//!
//! 1. **Latency probe** — one connection streams sequential LeNet
//!    inferences; per-request wall-clock latencies give p50/p99 (the
//!    figure a lone interactive client sees).
//! 2. **Closed-loop throughput** — `SNN_BENCH_CONNECTIONS` concurrent
//!    connections (default 64) each **pipeline** `REQUESTS_PER_CONNECTION`
//!    inferences over `NetClient::infer_many`.  This measures capacity,
//!    but its latency is coordinated-omission biased: each connection
//!    waits for replies before offering more load, so the summary labels
//!    the number as capacity and leaves latency-at-rate to phase 3.
//! 3. **Open-loop latency** — Poisson arrivals at **controlled
//!    utilisation points** (50 % and 90 % of the phase-2 capacity) over
//!    `SNN_BENCH_OPENLOOP_CONNECTIONS` pipelined connections: offered vs
//!    achieved rate, latency from each request's *scheduled* arrival,
//!    and the generator's own send-lag/jitter so scheduling noise is
//!    separable from server saturation.  Each point drains the trace ring
//!    for its own per-phase percentiles.
//! 4. **Backend comparison** — the same closed-loop load at 256
//!    connections against a fresh epoll server and a fresh `poll(2)`
//!    fallback server; the summary records both rates side by side.
//! 5. **Backpressure** — a burst against a one-slot queue forces the
//!    admission policy to shed load; the summary records how many REJECTED
//!    frames came back and a sample retry-after hint, proving the hint
//!    path end to end.

use snn_accel::config::AcceleratorConfig;
use snn_accel::serve::ServerOptions;
use snn_bench::openloop::{self, OpenLoopConfig, Schedule};
use snn_bench::phases::{any_phase, phase_latency_json};
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::snn::SnnModel;
use snn_model::zoo;
use snn_net::{scrape_traces, NetClient, NetError, NetOptions, NetServer, ReactorBackend};
use snn_telemetry::{Phase, RequestTrace};
use snn_tensor::Tensor;
use std::time::{Duration, Instant};

/// Concurrent connections of the throughput phase; override with the
/// `SNN_BENCH_CONNECTIONS` environment variable (CI runs the default).
const DEFAULT_CONNECTIONS: usize = 64;
const REQUESTS_PER_CONNECTION: usize = 4;
const PROBE_REQUESTS: usize = 24;
const BURST_CONNECTIONS: usize = 4;
const BURST_REQUESTS: usize = 25;
/// Connections of the open-loop utilisation points (override with
/// `SNN_BENCH_OPENLOOP_CONNECTIONS`) — "hundreds of pipelined
/// connections", per the scale-out acceptance bar.
const OPENLOOP_CONNECTIONS: usize = 256;
/// Duration of each open-loop point (override with `SNN_BENCH_OPENLOOP_MS`).
const OPENLOOP_DURATION_MS: u64 = 3000;

fn connections() -> usize {
    std::env::var("SNN_BENCH_CONNECTIONS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&c| c > 0)
        .unwrap_or(DEFAULT_CONNECTIONS)
}

fn lenet_model(inputs_wanted: usize) -> (SnnModel, Vec<Tensor<f32>>) {
    let net = zoo::lenet5();
    let params = Parameters::he_init(&net, 7).expect("parameters");
    let inputs: Vec<Tensor<f32>> = (0..inputs_wanted.max(4))
        .map(|b| {
            let values: Vec<f32> = (0..1024)
                .map(|j| (((j * 13 + b * 101) % 97) as f32) / 96.0)
                .collect();
            Tensor::from_vec(vec![1, 32, 32], values).expect("input")
        })
        .collect();
    let stats =
        CalibrationStats::collect(&net, &params, inputs.iter().take(4)).expect("calibration");
    let model = convert(
        &net,
        &params,
        &stats,
        ConversionConfig {
            weight_bits: 3,
            time_steps: 4,
        },
    )
    .expect("conversion");
    (model, inputs)
}

/// Closed-loop pipelined load: every connection keeps `depth` requests in
/// flight until its share is served.  Returns `(requests, achieved_ips)`.
/// The achieved rate doubles as the offered rate — a closed loop offers
/// exactly what the server absorbs, which is why latency-at-rate comes
/// from the open-loop phase instead.
fn closed_loop_ips(
    addr: std::net::SocketAddr,
    connections: usize,
    depth: usize,
    inputs: &[Tensor<f32>],
) -> (usize, f64) {
    let started = Instant::now();
    let workers: Vec<_> = (0..connections)
        .map(|c| {
            let batch: Vec<Tensor<f32>> = (0..depth)
                .map(|r| inputs[(c + r) % inputs.len()].clone())
                .collect();
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                let replies = client.infer_many(&batch).expect("pipelined batch");
                let mut served = 0usize;
                for reply in replies {
                    reply.expect("inference succeeds");
                    served += 1;
                }
                served
            })
        })
        .collect();
    let mut total = 0usize;
    for worker in workers {
        total += worker.join().expect("load thread");
    }
    (total, total as f64 / started.elapsed().as_secs_f64())
}

fn percentile_us(sorted_ns: &[u64], pct: usize) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let index = (sorted_ns.len() - 1) * pct / 100;
    sorted_ns[index] as f64 / 1000.0
}

fn main() {
    let connections = connections();
    let (model, inputs) = lenet_model(8);
    let config = AcceleratorConfig::lenet_table3();

    // The summary embeds per-phase trace percentiles, so tracing is
    // pinned on regardless of the SNN_TRACE environment.
    let options = NetOptions {
        server: ServerOptions {
            trace: true,
            ..ServerOptions::default()
        },
        ..NetOptions::default()
    };
    let server =
        NetServer::bind("127.0.0.1:0", config, model.clone(), options).expect("bind server");
    let addr = server.local_addr();
    // Warm up the pool, the compiled program and the connection path.
    let mut warm = NetClient::connect(addr).expect("warmup connect");
    warm.infer(&inputs[0]).expect("warmup inference");
    drop(warm);

    // Phase 1: sequential latency probe over one connection.
    let mut probe = NetClient::connect(addr).expect("probe connect");
    let mut latencies_ns = Vec::with_capacity(PROBE_REQUESTS);
    for i in 0..PROBE_REQUESTS {
        let input = &inputs[i % inputs.len()];
        let t0 = Instant::now();
        probe.infer(input).expect("probe inference");
        latencies_ns.push(t0.elapsed().as_nanos() as u64);
    }
    drop(probe);
    latencies_ns.sort_unstable();
    let p50_us = percentile_us(&latencies_ns, 50);
    let p99_us = percentile_us(&latencies_ns, 99);
    let mean_us =
        latencies_ns.iter().sum::<u64>() as f64 / latencies_ns.len().max(1) as f64 / 1000.0;

    // Phase 2: closed-loop pipelined throughput — the capacity number.
    let (total_requests, ips) =
        closed_loop_ips(addr, connections, REQUESTS_PER_CONNECTION, &inputs);

    // Drain the per-request traces the run produced (tracing is on by
    // default) and summarise per-phase latency percentiles for the trend.
    let trace_dump = scrape_traces(addr).expect("trace scrape");
    let traces: Vec<RequestTrace> = trace_dump
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| RequestTrace::from_json_line(l).expect("parse trace line"))
        .collect();
    let expected_traces = total_requests + PROBE_REQUESTS + 1;
    assert!(
        !traces.is_empty() && traces.len() <= expected_traces,
        "trace drain must return at most one trace per request"
    );
    // With the default connection count the ring never evicts, so the
    // correlation is exact; an oversized SNN_BENCH_CONNECTIONS run may
    // legitimately evict old traces.
    if expected_traces <= snn_telemetry::DEFAULT_TRACE_CAPACITY {
        assert_eq!(
            traces.len(),
            expected_traces,
            "every request (plus probe and warmup) must leave exactly one trace"
        );
    }
    for phase in [Phase::QueueWait, Phase::Compute, Phase::WriteStall] {
        assert!(
            any_phase(&traces, phase),
            "the loopback run must record {phase:?} spans"
        );
    }
    let phase_latency = phase_latency_json(&traces);
    println!(
        "net: {total_requests} LeNet inferences pipelined over {connections} TCP connections \
         (depth {REQUESTS_PER_CONNECTION}, closed loop): {ips:.1} inf/s; sequential probe \
         p50 {p50_us:.0} us, p99 {p99_us:.0} us"
    );

    // Phase 3: open-loop arrivals at controlled utilisation points.  The
    // trace ring was just drained, so each point's scrape attributes only
    // its own requests.
    let openloop_connections = std::env::var("SNN_BENCH_OPENLOOP_CONNECTIONS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&c| c > 0)
        .unwrap_or(OPENLOOP_CONNECTIONS);
    let openloop_ms = std::env::var("SNN_BENCH_OPENLOOP_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&m| m > 0)
        .unwrap_or(OPENLOOP_DURATION_MS);
    let mut open_loop_sections = Vec::new();
    let mut open_loop_completed = 0u64;
    for (label, utilisation) in [("u50", 0.5), ("u90", 0.9)] {
        let open_config = OpenLoopConfig {
            connections: openloop_connections,
            rate_ips: ips * utilisation,
            duration: Duration::from_millis(openloop_ms),
            schedule: Schedule::Poisson { seed: 0x5eed },
        };
        let report = openloop::run(addr, &inputs[0], &open_config);
        let point_traces: Vec<RequestTrace> = scrape_traces(addr)
            .expect("open-loop trace scrape")
            .lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(RequestTrace::from_json_line)
            .collect();
        println!(
            "open-loop {label}: offered {:.1}/s achieved {:.1}/s over {} connections, \
             latency p50 {:.0} us p99 {:.0} us (jitter p99 {:.0} us, {} rejected)",
            report.offered_rate_ips,
            report.achieved_rate_ips,
            openloop_connections,
            report.latency.p50_us,
            report.latency.p99_us,
            report.jitter.p99_us,
            report.rejected,
        );
        assert!(
            report.completed > 0,
            "the {label} open-loop point must serve at least one request"
        );
        assert_eq!(report.errors, 0, "open-loop requests must not error");
        open_loop_completed += report.completed;
        open_loop_sections.push(format!(
            "\"{label}\": {{\"utilisation_target\": {utilisation}, \"report\": {}, \
             \"trace_phase_latency\": {}}}",
            report.to_json(),
            phase_latency_json(&point_traces)
        ));
    }

    let stats = server.shutdown();
    assert_eq!(
        stats.server.completed,
        (total_requests + PROBE_REQUESTS + 1) as u64 + open_loop_completed,
        "every request (probe, warmup, closed- and open-loop) must resolve"
    );
    assert_eq!(
        stats.turned_away, 0,
        "the reactor must hold {connections} concurrent connections without shedding"
    );

    // Phase 4: the same closed-loop load at 256 connections on both
    // readiness backends — the headline epoll-vs-poll comparison.  Fresh
    // servers so neither inherits the other's warmup.
    let comparison_connections = 256usize.min(
        std::env::var("SNN_BENCH_COMPARE_CONNECTIONS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(256),
    );
    let mut backend_ips = Vec::new();
    for backend in [ReactorBackend::Epoll, ReactorBackend::Poll] {
        let compare = NetServer::bind(
            "127.0.0.1:0",
            config,
            model.clone(),
            NetOptions {
                backend,
                max_connections: comparison_connections.max(256),
                ..NetOptions::default()
            },
        )
        .expect("bind comparison server");
        let compare_addr = compare.local_addr();
        let mut warm = NetClient::connect(compare_addr).expect("comparison warmup");
        warm.infer(&inputs[0]).expect("comparison warmup inference");
        drop(warm);
        let (_, rate) = closed_loop_ips(compare_addr, comparison_connections, 2, &inputs);
        let name = compare.stats().per_reactor[0].backend;
        compare.shutdown();
        println!("backend comparison: {name} serves {rate:.1} inf/s at {comparison_connections} connections");
        backend_ips.push((name, rate));
    }

    // Phase 5: forced backpressure against a one-slot queue.
    let tight = NetServer::bind(
        "127.0.0.1:0",
        config,
        model,
        NetOptions {
            server: ServerOptions {
                max_batch: 1,
                queue_capacity: 1,
                ..ServerOptions::default()
            },
            ..NetOptions::default()
        },
    )
    .expect("bind backpressure server");
    let tight_addr = tight.local_addr();
    let burst: Vec<_> = (0..BURST_CONNECTIONS)
        .map(|c| {
            let input = inputs[c % inputs.len()].clone();
            std::thread::spawn(move || {
                let mut client = NetClient::connect(tight_addr).expect("connect");
                let mut rejections = 0u64;
                let mut hint_ms = 0u64;
                for _ in 0..BURST_REQUESTS {
                    match client.infer(&input) {
                        Ok(_) => {}
                        Err(NetError::Rejected(reply)) => {
                            rejections += 1;
                            hint_ms = hint_ms.max(reply.retry_after_ms);
                        }
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
                (rejections, hint_ms)
            })
        })
        .collect();
    let mut rejections = 0u64;
    let mut hint_ms = 0u64;
    for worker in burst {
        let (r, h) = worker.join().expect("burst thread");
        rejections += r;
        hint_ms = hint_ms.max(h);
    }
    let tight_stats = tight.shutdown();
    println!(
        "backpressure: {rejections}/{} requests shed by the one-slot queue, \
         sample retry-after hint {hint_ms} ms",
        BURST_CONNECTIONS * BURST_REQUESTS
    );
    assert_eq!(tight_stats.server.rejected, rejections);
    // The phase exists to prove the REJECTED/hint path end to end; a run
    // in which the burst never overflowed the one-slot queue proved
    // nothing and must fail loudly rather than record a vacuous summary.
    assert!(
        rejections > 0,
        "the burst must force at least one QueueFull rejection"
    );
    assert!(hint_ms >= 1, "a rejection must carry a positive retry hint");

    let utilisation: Vec<String> = stats
        .server
        .utilisation
        .iter()
        .map(|u| {
            format!(
                "\"{:?}\": {{\"units\": {}, \"busy_cycles\": {}, \"total_cycles\": {}, \
                 \"utilisation\": {:.4}}}",
                u.kind,
                u.units,
                u.busy_cycles,
                u.total_cycles,
                u.utilisation()
            )
        })
        .collect();
    let backend_throughput: Vec<String> = backend_ips
        .iter()
        .map(|(name, rate)| format!("\"{name}_ips\": {rate:.2}"))
        .collect();
    let json = format!(
        "{{\n\
         \"workload\": \"lenet5_T4_tcp_loopback\",\n\
         \"connections\": {connections},\n\
         \"pipeline_depth\": {REQUESTS_PER_CONNECTION},\n\
         \"requests\": {total_requests},\n\
         \"thread_budget\": {},\n\
         \"reactors\": {},\n\
         \"reactor_backend\": \"{}\",\n\
         \"inferences_per_sec\": {{\"tcp_loopback\": {ips:.2}}},\n\
         \"latency\": {{\"p50_us\": {p50_us:.1}, \"p99_us\": {p99_us:.1}, \
         \"mean_us\": {mean_us:.1}}},\n\
         \"trace_phase_latency\": {phase_latency},\n\
         \"open_loop\": {{\"connections\": {openloop_connections}, {}}},\n\
         \"backend_throughput_256conn\": {{{}}},\n\
         \"backpressure\": {{\"burst_requests\": {}, \"rejections\": {rejections}, \
         \"retry_hint_sample\": {hint_ms}}},\n\
         \"unit_utilisation\": {{{}}}\n\
         }}\n",
        stats.server.thread_budget,
        stats.reactors,
        stats
            .per_reactor
            .first()
            .map(|r| r.backend)
            .unwrap_or("unknown"),
        open_loop_sections.join(", "),
        backend_throughput.join(", "),
        BURST_CONNECTIONS * BURST_REQUESTS,
        utilisation.join(", ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
    std::fs::write(path, &json).expect("write BENCH_net.json");
    println!("wrote {path}");
}
