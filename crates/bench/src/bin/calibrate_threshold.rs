//! Calibrates [`AcceleratorConfig::dense_gather_threshold`] for the host:
//! sweeps the sparse/dense gather crossover on LeNet-conv2-shaped layers
//! across input spike densities and reports the threshold with the lowest
//! total simulation time.
//!
//! The engine picks the dense row representation when a row's spike count
//! reaches `threshold x row width`; where the crossover sits depends on how
//! fast the host's dispatched `snn_tensor::simd` kernels run relative to
//! the sparse scatter walk, so the right value is a per-host measurement,
//! not a constant.  The committed default
//! ([`snn_accel::config::DEFAULT_DENSE_GATHER_THRESHOLD`]) encodes the
//! engine's original `2 x nnz >= width` rule; this binary says whether the
//! current host agrees.
//!
//! Usage: `cargo run -p snn-bench --release --bin calibrate_threshold
//! [iters]` — `iters` defaults to 12; CI runs a 2-iteration smoke.
//!
//! [`AcceleratorConfig::dense_gather_threshold`]:
//!     snn_accel::config::AcceleratorConfig::dense_gather_threshold

use snn_accel::config::{ArrayGeometry, DEFAULT_DENSE_GATHER_THRESHOLD};
use snn_accel::conv::ConvolutionUnit;
use snn_tensor::{simd, Tensor};
use std::time::Instant;

/// Spike densities swept: from CIFAR-style sparse feature maps to the
/// near-dense early layers the paper's Table 2 profiles.
const DENSITIES: [f64; 5] = [0.1, 0.25, 0.5, 0.75, 0.9];

/// Candidate thresholds: 0.0 forces the dense gather for every non-silent
/// row, 1.01 never takes it (a row cannot exceed 100 % density).
const THRESHOLDS: [f64; 9] = [0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.01];

const TIME_STEPS: usize = 4;

/// LeNet-5 conv2 shapes: 6 -> 16 channels, 5x5 kernel, 14x14 maps.
fn workload(density: f64) -> (Tensor<i64>, Tensor<i64>, Tensor<i64>) {
    let max_level = (1u64 << TIME_STEPS) - 1;
    let input = Tensor::from_vec(
        vec![6, 14, 14],
        (0..6 * 14 * 14)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(12345);
                if (x % 1000) as f64 / 1000.0 < density {
                    (((x >> 32) % max_level) + 1) as i64
                } else {
                    0
                }
            })
            .collect(),
    )
    .expect("input tensor");
    let kernel = Tensor::from_vec(
        vec![16, 6, 5, 5],
        (0..16 * 6 * 25).map(|v| ((v % 7) as i64) - 3).collect(),
    )
    .expect("kernel tensor");
    let bias = Tensor::filled(vec![16], 0i64);
    (input, kernel, bias)
}

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("iters must be a positive integer"))
        .unwrap_or(12);

    let workloads: Vec<_> = DENSITIES.iter().map(|&d| (d, workload(d))).collect();
    let geometry = ArrayGeometry {
        columns: 30,
        rows: 5,
    };

    println!(
        "dense-gather threshold calibration: LeNet conv2, T = {TIME_STEPS}, \
         {iters} iters/point, simd level {}",
        simd::active_level().name()
    );
    println!(
        "{:>10} {:>12} {}",
        "threshold",
        "total[ms]",
        DENSITIES
            .iter()
            .map(|d| format!("{:>9}", format!("d={d}")))
            .collect::<Vec<_>>()
            .join(" ")
    );

    // The threshold only moves work between the two gather paths; every
    // swept point must reproduce the default unit's accumulators exactly.
    let oracles: Vec<Tensor<i64>> = workloads
        .iter()
        .map(|(_, (input, kernel, bias))| {
            ConvolutionUnit::new(geometry)
                .run_layer(input, kernel, bias, TIME_STEPS, 1, 0)
                .expect("oracle conv run")
                .accumulators
        })
        .collect();

    let mut best: Option<(f64, f64)> = None;
    for &threshold in &THRESHOLDS {
        let unit = ConvolutionUnit::with_threshold(geometry, threshold);
        let mut per_density = Vec::with_capacity(DENSITIES.len());
        let mut total = 0.0f64;
        for ((_, (input, kernel, bias)), oracle) in workloads.iter().zip(&oracles) {
            let start = Instant::now();
            for _ in 0..iters {
                let result = unit
                    .run_layer(input, kernel, bias, TIME_STEPS, 1, 0)
                    .expect("conv unit run");
                std::hint::black_box(&result.accumulators);
                assert_eq!(oracle, &result.accumulators, "threshold {threshold}");
            }
            let ms = start.elapsed().as_secs_f64() * 1e3;
            per_density.push(ms);
            total += ms;
        }
        println!(
            "{:>10.3} {:>12.2} {}",
            threshold,
            total,
            per_density
                .iter()
                .map(|ms| format!("{ms:>9.2}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        if best.is_none_or(|(_, t)| total < t) {
            best = Some((threshold, total));
        }
    }

    let (best_threshold, best_ms) = best.expect("at least one threshold measured");
    println!(
        "\nbest threshold on this host: {best_threshold} ({best_ms:.2} ms total); \
         committed default: {DEFAULT_DENSE_GATHER_THRESHOLD}"
    );
    if (best_threshold - DEFAULT_DENSE_GATHER_THRESHOLD).abs() > 0.2 {
        println!(
            "note: the crossover is more than 0.2 away from the default — \
             consider setting `dense_gather_threshold: {best_threshold}` in \
             the AcceleratorConfig for deployments on hosts like this one"
        );
    } else {
        println!("the default is within 0.2 of the measured crossover; keep it");
    }
}
