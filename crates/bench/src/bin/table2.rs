//! Regenerates Table II of the paper: latency, power and resource usage of
//! LeNet-5 (T = 3, 100 MHz) as the number of convolution units is swept
//! over 1, 2, 4 and 8.
//!
//! Usage: `cargo run -p snn-bench --release --bin table2`

use snn_bench::experiments::{format_table2, table2};

fn main() {
    let rows = table2();
    print!("{}", format_table2(&rows));
    println!();
    println!("paper reference (Table II):");
    println!(
        "{:>10} {:>12} {:>8} {:>8} {:>8}",
        "conv units", "latency [us]", "pow [W]", "LUTs", "FF"
    );
    for (units, lat, pow, lut, ff) in [
        (1, 1063.0, 3.07, "11k", "10k"),
        (2, 648.0, 3.09, "15k", "14k"),
        (4, 450.0, 3.17, "24k", "23k"),
        (8, 370.0, 3.28, "42k", "39k"),
    ] {
        println!("{units:>10} {lat:>12.0} {pow:>8.2} {lut:>8} {ff:>8}");
    }
}
