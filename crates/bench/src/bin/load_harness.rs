//! `load_harness` — the open-loop load generator as a standalone tool.
//!
//! Self-hosts a loopback `NetServer` (LeNet-5, tracing on) unless
//! `--addr` points at an external front-end, drives it with a
//! Poisson/fixed-rate arrival schedule over pipelined connections, and
//! prints a JSON report: offered vs achieved rate, coordinated-omission-
//! resistant latency percentiles (measured from each request's
//! *scheduled* arrival), the generator's own scheduling noise (send lag,
//! inter-arrival jitter), and — for the self-hosted server — per-phase
//! trace percentiles from the PR 9 `RequestTrace` JSONL drain, so a
//! saturation regression is attributable to queue wait, compute, or
//! write stall rather than a single opaque number.
//!
//! ```text
//! load_harness [--rate IPS] [--connections N] [--duration-ms MS]
//!              [--schedule poisson|fixed] [--seed N]
//!              [--reactors N] [--addr HOST:PORT] [--out FILE]
//! ```
//!
//! Every flag also reads an `SNN_LOAD_*` environment variable
//! (`SNN_LOAD_RATE`, `SNN_LOAD_CONNECTIONS`, `SNN_LOAD_DURATION_MS`,
//! `SNN_LOAD_SCHEDULE`, `SNN_LOAD_SEED`, `SNN_LOAD_REACTORS`), flags
//! winning; CI's smoke run sets a low rate and short duration.  Against
//! an external `--addr` the trace section is skipped (draining another
//! operator's trace ring from a bench tool would be rude).

use snn_accel::config::AcceleratorConfig;
use snn_accel::serve::ServerOptions;
use snn_bench::openloop::{self, OpenLoopConfig, Schedule};
use snn_bench::phases::phase_latency_json;
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::zoo;
use snn_net::{scrape_traces, NetOptions, NetServer};
use snn_telemetry::RequestTrace;
use snn_tensor::Tensor;
use std::net::SocketAddr;
use std::time::Duration;

struct Args {
    rate_ips: f64,
    connections: usize,
    duration: Duration,
    schedule: Schedule,
    reactors: usize,
    addr: Option<SocketAddr>,
    out: Option<String>,
}

fn env_or<T: std::str::FromStr>(key: &str, fallback: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(fallback)
}

fn parse_args() -> Args {
    let mut args = Args {
        rate_ips: env_or("SNN_LOAD_RATE", 200.0),
        connections: env_or("SNN_LOAD_CONNECTIONS", 64),
        duration: Duration::from_millis(env_or("SNN_LOAD_DURATION_MS", 3000u64)),
        schedule: std::env::var("SNN_LOAD_SCHEDULE")
            .ok()
            .and_then(|v| Schedule::parse(&v))
            .unwrap_or(Schedule::Poisson {
                seed: env_or("SNN_LOAD_SEED", 0x5eed_u64),
            }),
        reactors: env_or("SNN_LOAD_REACTORS", 0usize),
        addr: None,
        out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: usize| -> &str {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag {
            "--rate" => args.rate_ips = value(i).parse().expect("--rate IPS"),
            "--connections" => args.connections = value(i).parse().expect("--connections N"),
            "--duration-ms" => {
                args.duration = Duration::from_millis(value(i).parse().expect("--duration-ms MS"))
            }
            "--schedule" => {
                args.schedule = Schedule::parse(value(i))
                    .unwrap_or_else(|| panic!("--schedule poisson|fixed, got {}", value(i)))
            }
            "--seed" => {
                args.schedule = Schedule::Poisson {
                    seed: value(i).parse().expect("--seed N"),
                }
            }
            "--reactors" => args.reactors = value(i).parse().expect("--reactors N"),
            "--addr" => args.addr = Some(value(i).parse().expect("--addr HOST:PORT")),
            "--out" => args.out = Some(value(i).to_string()),
            other => panic!("unknown flag {other} (see the module docs for usage)"),
        }
        i += 2;
    }
    assert!(args.rate_ips > 0.0, "--rate must be positive");
    assert!(args.connections > 0, "--connections must be positive");
    args
}

fn lenet_input() -> Tensor<f32> {
    let values: Vec<f32> = (0..1024).map(|j| ((j * 13 % 97) as f32) / 96.0).collect();
    Tensor::from_vec(vec![1, 32, 32], values).expect("input")
}

fn main() {
    let args = parse_args();
    let input = lenet_input();

    // Self-hosted loopback server unless --addr names an external one.
    let server = if args.addr.is_none() {
        let net = zoo::lenet5();
        let params = Parameters::he_init(&net, 7).expect("parameters");
        let calibration: Vec<Tensor<f32>> = vec![input.clone()];
        let stats =
            CalibrationStats::collect(&net, &params, calibration.iter()).expect("calibration");
        let model = convert(
            &net,
            &params,
            &stats,
            ConversionConfig {
                weight_bits: 3,
                time_steps: 4,
            },
        )
        .expect("conversion");
        let options = NetOptions {
            server: ServerOptions {
                trace: true,
                ..ServerOptions::default()
            },
            reactors: args.reactors,
            max_connections: args.connections.max(NetOptions::default().max_connections),
            ..NetOptions::default()
        };
        Some(
            NetServer::bind(
                "127.0.0.1:0",
                AcceleratorConfig::lenet_table3(),
                model,
                options,
            )
            .expect("bind server"),
        )
    } else {
        None
    };
    let addr = args
        .addr
        .unwrap_or_else(|| server.as_ref().expect("self-hosted").local_addr());

    let config = OpenLoopConfig {
        connections: args.connections,
        rate_ips: args.rate_ips,
        duration: args.duration,
        schedule: args.schedule,
    };
    let report = openloop::run(addr, &input, &config);

    // Per-phase attribution from the self-hosted server's trace ring.
    let trace_phase_latency = if server.is_some() {
        let dump = scrape_traces(addr).expect("trace scrape");
        let traces: Vec<RequestTrace> = dump
            .lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(RequestTrace::from_json_line)
            .collect();
        Some(phase_latency_json(&traces))
    } else {
        None
    };

    let mut json = format!(
        "{{\n\"workload\": \"lenet5_T4_open_loop\",\n\"open_loop\": {}",
        report.to_json()
    );
    if let Some(phases) = &trace_phase_latency {
        json.push_str(&format!(",\n\"trace_phase_latency\": {phases}"));
    }
    if let Some(server) = server {
        let stats = server.shutdown();
        json.push_str(&format!(
            ",\n\"reactors\": {},\n\"reactor_backend\": \"{}\"",
            stats.reactors,
            stats
                .per_reactor
                .first()
                .map(|r| r.backend)
                .unwrap_or("unknown"),
        ));
    }
    json.push_str("\n}\n");

    eprintln!(
        "open-loop: offered {:.1}/s, achieved {:.1}/s over {} connections ({}): \
         {} completed, {} rejected, {} errors; latency p50 {:.0} us p99 {:.0} us \
         (send lag p99 {:.0} us, jitter p99 {:.0} us)",
        report.offered_rate_ips,
        report.achieved_rate_ips,
        config.connections,
        match config.schedule {
            Schedule::Poisson { .. } => "poisson",
            Schedule::Fixed => "fixed",
        },
        report.completed,
        report.rejected,
        report.errors,
        report.latency.p50_us,
        report.latency.p99_us,
        report.send_lag.p99_us,
        report.jitter.p99_us,
    );
    if let Some(path) = &args.out {
        std::fs::write(path, &json).expect("write report");
        eprintln!("wrote {path}");
    }
    println!("{json}");
}
