//! Regenerates Table III of the paper: efficiency and performance of SNN
//! hardware accelerators — the published baselines (Ju et al., Fang et al.)
//! next to this work's deployments of the Fang CNN, LeNet-5 and VGG-11.
//!
//! Pass `--with-accuracy` to also train LeNet-5 on the synthetic digits and
//! fill in its accuracy cell (slower).
//!
//! Usage: `cargo run -p snn-bench --release --bin table3 [--with-accuracy]`

use snn_bench::experiments::{encoding_ablation, format_encoding_ablation, table3};
use snn_bench::workloads::{self, Effort};

fn main() {
    let lenet_accuracy = if std::env::args().any(|a| a == "--with-accuracy") {
        eprintln!("training LeNet-5 for the accuracy column...");
        let workload = workloads::trained_lenet5(Effort::Quick, 2022);
        let snn = workloads::convert_workload(&workload, 4);
        Some(workloads::snn_accuracy_pct(&snn, &workload.data.test))
    } else {
        None
    };

    let table = table3(lenet_accuracy);
    println!("Table III — efficiency and performance of SNN hardware accelerators");
    println!("(rows marked * use the synthetic stand-in datasets; see DESIGN.md)");
    print!("{table}");
    println!();
    println!(
        "improvement of this work (CNN-2) over Fang et al.: {:.1}x latency, {:.2}x power",
        table.latency_improvement(2, 1),
        table.power_ratio(2, 1)
    );
    println!(
        "improvement of this work (CNN-2) over Ju et al.:  {:.1}x throughput",
        table.throughput_improvement(2, 0)
    );
    println!();
    print!("{}", format_encoding_ablation(&encoding_ablation()));
}
