//! Open-loop load generation against a running `snn-net` front-end.
//!
//! The closed-loop harness (`bench_net`'s pipelined phase) suffers
//! **coordinated omission**: each connection only issues its next request
//! after the previous reply arrives, so a saturated server silently slows
//! the offered load down and the measured latency describes the survivor
//! requests, not the intended arrival process.  The open-loop generator
//! fixes both biases:
//!
//! * Arrivals follow a **pre-computed schedule** (Poisson or fixed-rate)
//!   that does not react to the server: the offered rate is a controlled
//!   input, and the report states offered *and* achieved rate so
//!   saturation is visible as the gap between them.
//! * Every latency sample is measured **from the scheduled arrival
//!   time**, not the actual send time: a request the generator itself
//!   sent late (because an earlier write blocked) still charges the
//!   server for the delay, exactly as a real user would experience it.
//! * The generator records its own **scheduling noise** — the lag between
//!   scheduled and actual send, and the inter-arrival jitter (deviation
//!   of realised gaps from scheduled gaps) — so a latency regression can
//!   be attributed to the server or to the load machine.
//!
//! Each connection runs a writer thread (paced sends, then a half-close)
//! and a reader thread (decodes replies until EOF); requests are
//! correlated by wire request id, so pipelining depth is whatever the
//! schedule produces.  The whole engine speaks the raw
//! [`snn_net::protocol::Frame`] codec — no client-side retry or pooling
//! layer between the schedule and the socket.

use snn_net::protocol::{Frame, InferRequest};
use snn_tensor::Tensor;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Arrival process of the open-loop schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Exponentially distributed inter-arrival gaps (a Poisson process)
    /// seeded per connection from this base seed — the memoryless arrival
    /// pattern of independent users.
    Poisson {
        /// Base RNG seed; connection `i` derives its own stream from it.
        seed: u64,
    },
    /// Deterministic equal gaps, with each connection phase-shifted so
    /// the aggregate arrival stream is evenly spaced rather than a
    /// per-interval thundering herd.
    Fixed,
}

impl Schedule {
    /// Parses the CLI/env spelling (`poisson` / `fixed`).
    pub fn parse(text: &str) -> Option<Schedule> {
        match text.trim().to_ascii_lowercase().as_str() {
            "poisson" => Some(Schedule::Poisson { seed: 0x5eed }),
            "fixed" => Some(Schedule::Fixed),
            _ => None,
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Schedule::Poisson { .. } => "poisson",
            Schedule::Fixed => "fixed",
        }
    }
}

/// Parameters of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Concurrent connections; the aggregate rate is split evenly over
    /// them and requests pipeline freely within each connection.
    pub connections: usize,
    /// Aggregate offered arrival rate, inferences per second.
    pub rate_ips: f64,
    /// How long the schedule runs (the drain of in-flight replies after
    /// the last arrival is not counted against the schedule).
    pub duration: Duration,
    /// Arrival process.
    pub schedule: Schedule,
}

/// Latency percentile summary in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// 99.9th percentile.
    pub p999_us: f64,
    /// Arithmetic mean.
    pub mean_us: f64,
}

impl LatencySummary {
    fn from_samples(mut samples_us: Vec<f64>) -> Self {
        if samples_us.is_empty() {
            return LatencySummary::default();
        }
        samples_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let pick = |num: usize, den: usize| crate::phases::percentile(&samples_us, num, den);
        LatencySummary {
            p50_us: pick(50, 100),
            p99_us: pick(99, 100),
            p999_us: pick(999, 1000),
            mean_us: samples_us.iter().sum::<f64>() / samples_us.len() as f64,
        }
    }

    /// Renders the `{"p50_us": ..}` JSON object body.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"mean_us\": {:.1}}}",
            self.p50_us, self.p99_us, self.p999_us, self.mean_us
        )
    }
}

/// Outcome of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Requests the schedule offered (arrivals generated).
    pub offered: u64,
    /// Requests actually written to a socket (a dead connection stops its
    /// writer early; the gap is part of the measurement, not an error).
    pub sent: u64,
    /// SCORES replies received.
    pub completed: u64,
    /// Typed REJECTED replies received (queue backpressure under
    /// overload — the server refusing politely, not failing).
    pub rejected: u64,
    /// Error replies, transport errors and reader timeouts.
    pub errors: u64,
    /// The controlled input: `offered / duration`.
    pub offered_rate_ips: f64,
    /// `completed / wall`, where wall runs from the first scheduled
    /// arrival to the last observed reply (drain included).
    pub achieved_rate_ips: f64,
    /// Wall-clock of the whole run, drain included, seconds.
    pub wall_seconds: f64,
    /// Reply latency measured from the **scheduled** arrival instant
    /// (coordinated-omission resistant), successful replies only.
    pub latency: LatencySummary,
    /// How late each request actually left relative to its schedule —
    /// load-machine noise, not server latency.
    pub send_lag: LatencySummary,
    /// |realised gap − scheduled gap| between consecutive sends on the
    /// same connection: the generator's inter-arrival jitter.  High
    /// latency with low jitter implicates the server; high jitter means
    /// the load machine could not hold the schedule.
    pub jitter: LatencySummary,
    /// Echo of the run's configuration for the report.
    pub config: OpenLoopConfig,
}

impl OpenLoopReport {
    /// Renders the report as a JSON object body for embedding in
    /// `BENCH_net.json` or the load-harness output.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schedule\": \"{}\", \"connections\": {}, \"duration_secs\": {:.2}, \
             \"offered\": {}, \"sent\": {}, \"completed\": {}, \"rejected\": {}, \
             \"errors\": {}, \"offered_rate_ips\": {:.2}, \"achieved_rate_ips\": {:.2}, \
             \"latency\": {}, \"send_lag\": {}, \"interarrival_jitter\": {}}}",
            self.config.schedule.name(),
            self.config.connections,
            self.config.duration.as_secs_f64(),
            self.offered,
            self.sent,
            self.completed,
            self.rejected,
            self.errors,
            self.offered_rate_ips,
            self.achieved_rate_ips,
            self.latency.to_json(),
            self.send_lag.to_json(),
            self.jitter.to_json(),
        )
    }
}

/// splitmix64: tiny, seedable, statistically fine for schedule jitter
/// (the workspace has no RNG dependency).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A uniform draw in `(0, 1]` — open at zero so `ln` stays finite.
fn uniform_01(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

/// One connection's arrival offsets from the run origin, ascending.
fn connection_schedule(config: &OpenLoopConfig, index: usize) -> Vec<Duration> {
    let per_conn_rate = config.rate_ips / config.connections as f64;
    if per_conn_rate <= 0.0 {
        return Vec::new();
    }
    let horizon = config.duration.as_secs_f64();
    let mut offsets = Vec::new();
    match config.schedule {
        Schedule::Poisson { seed } => {
            let mut state = seed ^ (index as u64).wrapping_mul(0x2545f4914f6cdd1d);
            let mut t = 0.0f64;
            loop {
                // Exponential gap via inverse transform sampling.
                t += -uniform_01(&mut state).ln() / per_conn_rate;
                if t >= horizon {
                    break;
                }
                offsets.push(Duration::from_secs_f64(t));
            }
        }
        Schedule::Fixed => {
            let gap = 1.0 / per_conn_rate;
            // Phase-shift each connection so aggregate arrivals interleave.
            let phase = gap * (index as f64) / (config.connections as f64);
            let mut t = phase;
            while t < horizon {
                offsets.push(Duration::from_secs_f64(t));
                t += gap;
            }
        }
    }
    offsets
}

/// Per-connection worker result.
#[derive(Default)]
struct ConnOutcome {
    offered: u64,
    sent: u64,
    completed: u64,
    rejected: u64,
    errors: u64,
    latency_us: Vec<f64>,
    send_lag_us: Vec<f64>,
    jitter_us: Vec<f64>,
    last_reply: Option<Instant>,
}

/// Reader half: decodes reply frames until EOF, recording latency from
/// each request's scheduled arrival.
fn read_replies(
    mut stream: TcpStream,
    scheduled: Arc<Mutex<HashMap<u64, Instant>>>,
    outcome: &mut ConnOutcome,
) {
    // A reply that takes this long is not latency, it is a hang; bail out
    // and count the remainder as errors rather than wedging the harness.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut buf: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 16384];
    loop {
        loop {
            match Frame::decode(&buf) {
                Ok(Some((frame, used))) => {
                    buf.drain(..used);
                    let now = Instant::now();
                    let (request_id, kind) = match &frame {
                        Frame::Scores(reply) => (reply.request_id, 0u8),
                        Frame::Rejected(reply) => (reply.request_id, 1),
                        Frame::Error(reply) => (reply.request_id, 2),
                        _ => continue,
                    };
                    let sched = scheduled.lock().expect("schedule map").remove(&request_id);
                    match kind {
                        0 => {
                            outcome.completed += 1;
                            outcome.last_reply = Some(now);
                            if let Some(at) = sched {
                                outcome
                                    .latency_us
                                    .push(now.duration_since(at).as_secs_f64() * 1e6);
                            }
                        }
                        1 => outcome.rejected += 1,
                        _ => outcome.errors += 1,
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    outcome.errors += 1;
                    return;
                }
            }
        }
        match stream.read(&mut scratch) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&scratch[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                // Timeout or reset with requests possibly outstanding.
                outcome.errors += 1;
                return;
            }
        }
    }
}

/// Runs one open-loop load generation against `addr`, sending `input`
/// for every request.  Blocks until every connection has drained.
pub fn run(addr: SocketAddr, input: &Tensor<f32>, config: &OpenLoopConfig) -> OpenLoopReport {
    // One frame, encoded once: every request reuses the byte image with
    // only the request id patched in by re-encoding per send (cheap next
    // to the syscall).
    let origin = Instant::now() + Duration::from_millis(50);
    let workers: Vec<thread::JoinHandle<ConnOutcome>> = (0..config.connections)
        .map(|index| {
            let offsets = connection_schedule(config, index);
            let input = input.clone();
            thread::spawn(move || {
                let mut outcome = ConnOutcome {
                    offered: offsets.len() as u64,
                    ..ConnOutcome::default()
                };
                let Ok(stream) = TcpStream::connect(addr) else {
                    outcome.errors += offsets.len() as u64;
                    return outcome;
                };
                let _ = stream.set_nodelay(true);
                let Ok(reader_stream) = stream.try_clone() else {
                    outcome.errors += offsets.len() as u64;
                    return outcome;
                };
                let scheduled: Arc<Mutex<HashMap<u64, Instant>>> =
                    Arc::new(Mutex::new(HashMap::new()));
                let reader_map = Arc::clone(&scheduled);
                let reader = thread::spawn(move || {
                    let mut outcome = ConnOutcome::default();
                    read_replies(reader_stream, reader_map, &mut outcome);
                    outcome
                });

                // Writer: paced sends from the precomputed schedule.
                let mut writer = stream;
                let mut prev: Option<(Instant, Instant)> = None; // (target, actual)
                for (k, offset) in offsets.iter().enumerate() {
                    let target = origin + *offset;
                    let now = Instant::now();
                    if target > now {
                        thread::sleep(target - now);
                    }
                    let actual = Instant::now();
                    outcome
                        .send_lag_us
                        .push(actual.duration_since(target).as_secs_f64() * 1e6);
                    if let Some((prev_target, prev_actual)) = prev {
                        let planned = target.duration_since(prev_target).as_secs_f64();
                        let realised = actual.duration_since(prev_actual).as_secs_f64();
                        outcome.jitter_us.push((realised - planned).abs() * 1e6);
                    }
                    prev = Some((target, actual));
                    let request_id = k as u64;
                    // Latency is charged from the *scheduled* arrival: a
                    // late send is the generator's delay, and the server
                    // owns it the way a queue owns a waiting customer.
                    scheduled
                        .lock()
                        .expect("schedule map")
                        .insert(request_id, target);
                    let frame = Frame::Infer(InferRequest::from_tensor(request_id, &input));
                    if writer.write_all(&frame.encode()).is_err() {
                        // The server closed on us (shed or died): every
                        // remaining arrival is unservable.
                        scheduled.lock().expect("schedule map").remove(&request_id);
                        break;
                    }
                    outcome.sent += 1;
                }
                // Half-close: the server serves what is in flight, flushes
                // and closes, which lands the reader on a clean EOF.
                let _ = writer.shutdown(Shutdown::Write);
                drop(writer);
                let reader_outcome = reader.join().expect("reader thread");
                outcome.completed = reader_outcome.completed;
                outcome.rejected = reader_outcome.rejected;
                outcome.errors += reader_outcome.errors;
                outcome.latency_us = reader_outcome.latency_us;
                outcome.last_reply = reader_outcome.last_reply;
                outcome
            })
        })
        .collect();

    let mut offered = 0u64;
    let mut sent = 0u64;
    let mut completed = 0u64;
    let mut rejected = 0u64;
    let mut errors = 0u64;
    let mut latency_us = Vec::new();
    let mut send_lag_us = Vec::new();
    let mut jitter_us = Vec::new();
    let mut last_reply: Option<Instant> = None;
    for worker in workers {
        let outcome = worker.join().expect("connection worker");
        offered += outcome.offered;
        sent += outcome.sent;
        completed += outcome.completed;
        rejected += outcome.rejected;
        errors += outcome.errors;
        latency_us.extend(outcome.latency_us);
        send_lag_us.extend(outcome.send_lag_us);
        jitter_us.extend(outcome.jitter_us);
        last_reply = match (last_reply, outcome.last_reply) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
    let wall_seconds = last_reply
        .map(|t| t.duration_since(origin).as_secs_f64())
        .unwrap_or_else(|| config.duration.as_secs_f64())
        .max(1e-9);
    OpenLoopReport {
        offered,
        sent,
        completed,
        rejected,
        errors,
        offered_rate_ips: offered as f64 / config.duration.as_secs_f64().max(1e-9),
        achieved_rate_ips: completed as f64 / wall_seconds,
        wall_seconds,
        latency: LatencySummary::from_samples(latency_us),
        send_lag: LatencySummary::from_samples(send_lag_us),
        jitter: LatencySummary::from_samples(jitter_us),
        config: config.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(schedule: Schedule, rate: f64, connections: usize, ms: u64) -> OpenLoopConfig {
        OpenLoopConfig {
            connections,
            rate_ips: rate,
            duration: Duration::from_millis(ms),
            schedule,
        }
    }

    #[test]
    fn fixed_schedule_offers_the_requested_rate() {
        let cfg = config(Schedule::Fixed, 100.0, 4, 1000);
        let total: usize = (0..4).map(|i| connection_schedule(&cfg, i).len()).sum();
        // 100/s over 1s split across 4 connections = 25 each, exactly.
        assert_eq!(total, 100);
        for i in 0..4 {
            let offsets = connection_schedule(&cfg, i);
            assert!(offsets.windows(2).all(|w| w[0] < w[1]), "ascending");
            assert!(offsets.iter().all(|o| *o < Duration::from_secs(1)));
        }
    }

    #[test]
    fn fixed_connections_are_phase_shifted_not_synchronised() {
        let cfg = config(Schedule::Fixed, 50.0, 5, 1000);
        let firsts: Vec<Duration> = (0..5).map(|i| connection_schedule(&cfg, i)[0]).collect();
        let distinct: std::collections::HashSet<Duration> = firsts.iter().copied().collect();
        assert_eq!(distinct.len(), firsts.len(), "no thundering herd");
    }

    #[test]
    fn poisson_schedule_approximates_the_requested_rate_and_is_seeded() {
        let cfg = config(Schedule::Poisson { seed: 42 }, 1000.0, 8, 2000);
        let total: usize = (0..8).map(|i| connection_schedule(&cfg, i).len()).sum();
        // 2000 expected arrivals; a Poisson total 5 sigma out is ~±224.
        assert!(
            (1776..=2224).contains(&total),
            "poisson arrival count {total} is implausible for mean 2000"
        );
        // Determinism: the same seed regenerates the same schedule.
        assert_eq!(
            connection_schedule(&cfg, 3),
            connection_schedule(&cfg, 3),
            "schedules must be reproducible"
        );
        // Independence: different connections see different streams.
        assert_ne!(connection_schedule(&cfg, 0), connection_schedule(&cfg, 1));
    }

    #[test]
    fn schedule_parse_covers_the_cli_spellings() {
        assert_eq!(Schedule::parse("fixed"), Some(Schedule::Fixed));
        assert!(matches!(
            Schedule::parse("Poisson"),
            Some(Schedule::Poisson { .. })
        ));
        assert_eq!(Schedule::parse("bursty"), None);
    }

    #[test]
    fn latency_summary_reports_nearest_rank_percentiles() {
        let samples: Vec<f64> = (1..=1000).map(|v| v as f64).collect();
        let summary = LatencySummary::from_samples(samples);
        assert_eq!(summary.p50_us, 500.0);
        assert_eq!(summary.p99_us, 990.0);
        assert_eq!(summary.p999_us, 999.0);
        assert!((summary.mean_us - 500.5).abs() < 1e-9);
    }
}
