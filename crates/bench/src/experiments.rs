//! The experiment implementations behind the `table1`, `table2` and
//! `table3` binaries.

use crate::workloads::{self, Effort, TrainedWorkload};
use serde::{Deserialize, Serialize};
use snn_accel::config::AcceleratorConfig;
use snn_accel::cost;
use snn_accel::timing::network_timing;
use snn_baselines::comparison::{ComparisonRow, ComparisonTable};
use snn_baselines::published;
use snn_baselines::rate_equivalent;
use snn_model::zoo;
use std::fmt;

/// One row of Table I: accuracy and latency versus spike-train length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Spike-train length `T`.
    pub time_steps: usize,
    /// Classification accuracy on the held-out synthetic test set, percent.
    pub accuracy_pct: f64,
    /// Predicted inference latency in microseconds (two convolution units,
    /// 100 MHz, as in the paper).
    pub latency_us: f64,
}

/// Regenerates Table I: LeNet-5 accuracy and latency for `T = 3..=6`
/// with two convolution units at 100 MHz.
///
/// The accuracy column uses the synthetic-digit stand-in for MNIST, so
/// absolute values differ from the paper; the latency column and both
/// trends (accuracy saturating with `T`, latency growing linearly with `T`)
/// are the reproduction targets.
pub fn table1(effort: Effort, seed: u64) -> Vec<Table1Row> {
    let workload = workloads::trained_lenet5(effort, seed);
    table1_with_workload(&workload)
}

/// Table I for an already-trained workload (lets tests reuse one training
/// run).
pub fn table1_with_workload(workload: &TrainedWorkload) -> Vec<Table1Row> {
    let config = AcceleratorConfig::lenet_experiment(2);
    (3..=6)
        .map(|time_steps| {
            let snn = workloads::convert_workload(workload, time_steps);
            let accuracy_pct = workloads::snn_accuracy_pct(&snn, &workload.data.test);
            let timing = network_timing(&config, &workload.net, time_steps)
                .expect("LeNet-5 maps onto the default configuration");
            Table1Row {
                time_steps,
                accuracy_pct,
                latency_us: timing.latency_us(&config),
            }
        })
        .collect()
}

/// One row of Table II: latency, power and resources versus the number of
/// convolution units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Number of convolution units.
    pub conv_units: usize,
    /// Predicted latency in microseconds (T = 3, 100 MHz).
    pub latency_us: f64,
    /// Estimated power in watts.
    pub power_w: f64,
    /// Estimated lookup tables.
    pub luts: u64,
    /// Estimated flip-flops.
    pub flip_flops: u64,
}

/// Regenerates Table II: LeNet-5 with `T = 3` at 100 MHz for 1, 2, 4 and 8
/// convolution units.  Purely structural — no training needed.
pub fn table2() -> Vec<Table2Row> {
    let net = zoo::lenet5();
    [1usize, 2, 4, 8]
        .iter()
        .map(|&conv_units| {
            let config = AcceleratorConfig::lenet_experiment(conv_units);
            let timing = network_timing(&config, &net, 3)
                .expect("LeNet-5 maps onto the sweep configuration");
            let power = cost::estimate_power(&config);
            let resources = cost::estimate_resources(&config, &net, 3);
            Table2Row {
                conv_units,
                latency_us: timing.latency_us(&config),
                power_w: power.total_w(),
                luts: resources.luts,
                flip_flops: resources.flip_flops,
            }
        })
        .collect()
}

/// Regenerates Table III: the published baselines (Ju et al., Fang et al.)
/// next to our simulated deployments of the Fang CNN, LeNet-5 and VGG-11.
///
/// `lenet_accuracy_pct` optionally carries the accuracy measured by the
/// Table I pipeline so the LeNet row has an accuracy entry; the other
/// simulated rows report `None` because training those networks on
/// synthetic data is outside the scope of the hardware experiment.
pub fn table3(lenet_accuracy_pct: Option<f64>) -> ComparisonTable {
    let mut rows = vec![
        ComparisonRow::from_published(&published::ju_et_al()),
        ComparisonRow::from_published(&published::fang_et_al()),
    ];

    // This work on the CNN of Fang et al. (200 MHz, 4 units, T = 4).
    {
        let net = zoo::fang_cnn();
        let config = AcceleratorConfig::fang_cnn_table3();
        let timing = network_timing(&config, &net, 4).expect("Fang CNN maps");
        let resources = cost::estimate_resources(&config, &net, 4);
        let power = cost::estimate_power(&config);
        rows.push(ComparisonRow {
            label: "This work (sim, CNN-2)".to_string(),
            dataset: "MNIST*".to_string(),
            network: net.notation(),
            accuracy_pct: None,
            frequency_mhz: config.clock_mhz,
            latency_us: config.cycles_to_us(timing.total_cycles()),
            throughput_fps: timing.throughput_fps(&config),
            power_w: power.total_w(),
            luts: resources.luts,
            flip_flops: resources.flip_flops,
        });
    }

    // This work on LeNet-5 (200 MHz, 4 units, T = 4).
    {
        let net = zoo::lenet5();
        let config = AcceleratorConfig::lenet_table3();
        let timing = network_timing(&config, &net, 4).expect("LeNet-5 maps");
        let resources = cost::estimate_resources(&config, &net, 4);
        let power = cost::estimate_power(&config);
        rows.push(ComparisonRow {
            label: "This work (sim, LeNet-5)".to_string(),
            dataset: "MNIST*".to_string(),
            network: net.notation(),
            accuracy_pct: lenet_accuracy_pct,
            frequency_mhz: config.clock_mhz,
            latency_us: config.cycles_to_us(timing.total_cycles()),
            throughput_fps: timing.throughput_fps(&config),
            power_w: power.total_w(),
            luts: resources.luts,
            flip_flops: resources.flip_flops,
        });
    }

    // This work on VGG-11 (115 MHz, 8 units, T = 6, DRAM weights).
    {
        let net = zoo::vgg11(100);
        let config = AcceleratorConfig::vgg11_table3();
        let timing = network_timing(&config, &net, 6).expect("VGG-11 maps");
        let resources = cost::estimate_resources(&config, &net, 6);
        let power = cost::estimate_power(&config);
        rows.push(ComparisonRow {
            label: "This work (sim, VGG-11)".to_string(),
            dataset: "CIFAR-100*".to_string(),
            network: "VGG-11".to_string(),
            accuracy_pct: None,
            frequency_mhz: config.clock_mhz,
            latency_us: config.cycles_to_us(timing.total_cycles()),
            throughput_fps: timing.throughput_fps(&config),
            power_w: power.total_w(),
            luts: resources.luts,
            flip_flops: resources.flip_flops,
        });
    }

    ComparisonTable::new(rows)
}

/// One row of the encoding ablation: radix versus rate latency at equal
/// resolution (the design choice the whole accelerator is built around).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncodingAblationRow {
    /// Radix spike-train length.
    pub radix_steps: usize,
    /// Rate-encoding steps needed for the same resolution.
    pub rate_steps: usize,
    /// Latency with radix encoding, microseconds.
    pub radix_latency_us: f64,
    /// Latency with rate encoding, microseconds.
    pub rate_latency_us: f64,
    /// Slowdown factor of rate encoding.
    pub slowdown: f64,
}

/// Ablation of the neural encoding: runs the LeNet-5 timing model under
/// radix and under resolution-equivalent rate encoding for `T = 3..=6`.
pub fn encoding_ablation() -> Vec<EncodingAblationRow> {
    let net = zoo::lenet5();
    let config = AcceleratorConfig::lenet_experiment(2);
    (3..=6)
        .map(|t| {
            let cmp = rate_equivalent::compare_encodings(&config, &net, t)
                .expect("LeNet-5 maps onto the default configuration");
            EncodingAblationRow {
                radix_steps: cmp.radix_steps,
                rate_steps: cmp.rate_steps,
                radix_latency_us: config.cycles_to_us(cmp.radix_cycles),
                rate_latency_us: config.cycles_to_us(cmp.rate_cycles),
                slowdown: cmp.slowdown(),
            }
        })
        .collect()
}

/// Pretty-prints Table I rows.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "Table I — accuracy & latency vs. time steps (LeNet-5, 2 conv units, 100 MHz)\n",
    );
    out.push_str(&format!(
        "{:>10} {:>10} {:>12}\n",
        "time steps", "acc [%]", "latency [us]"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>10} {:>10.2} {:>12.0}\n",
            row.time_steps, row.accuracy_pct, row.latency_us
        ));
    }
    out
}

/// Pretty-prints Table II rows.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut out = String::from(
        "Table II — latency, power & resources vs. convolution units (LeNet-5, T = 3, 100 MHz)\n",
    );
    out.push_str(&format!(
        "{:>10} {:>12} {:>8} {:>8} {:>8}\n",
        "conv units", "latency [us]", "pow [W]", "LUTs", "FF"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>10} {:>12.0} {:>8.2} {:>8} {:>8}\n",
            row.conv_units, row.latency_us, row.power_w, row.luts, row.flip_flops
        ));
    }
    out
}

/// Pretty-prints the encoding ablation.
pub fn format_encoding_ablation(rows: &[EncodingAblationRow]) -> String {
    let mut out = String::from(
        "Encoding ablation — radix vs. resolution-equivalent rate encoding (LeNet-5)\n",
    );
    out.push_str(&format!(
        "{:>6} {:>6} {:>14} {:>14} {:>10}\n",
        "T", "T_rate", "radix [us]", "rate [us]", "slowdown"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>6} {:>6} {:>14.0} {:>14.0} {:>9.1}x\n",
            row.radix_steps,
            row.rate_steps,
            row.radix_latency_us,
            row.rate_latency_us,
            row.slowdown
        ));
    }
    out
}

/// Helper used by the binaries to render any displayable table.
pub fn render<T: fmt::Display>(value: &T) -> String {
    value.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduces_the_papers_trends() {
        let rows = table2();
        assert_eq!(rows.len(), 4);
        // Latency decreases with more units but sub-linearly.
        assert!(rows[0].latency_us > rows[1].latency_us);
        assert!(rows[1].latency_us > rows[2].latency_us);
        assert!(rows[2].latency_us >= rows[3].latency_us);
        let speedup_1_to_2 = rows[0].latency_us / rows[1].latency_us;
        assert!(speedup_1_to_2 < 2.0);
        // Power and resources increase monotonically.
        assert!(rows[0].power_w < rows[3].power_w);
        assert!(rows[0].luts < rows[3].luts);
        // Resources scale roughly linearly: the 8-unit design uses more than
        // 2.5x the LUTs of the 1-unit design (paper: 11k -> 42k, i.e. 3.8x).
        assert!(rows[3].luts as f64 / rows[0].luts as f64 > 2.5);
    }

    #[test]
    fn table3_has_five_rows_and_preserves_the_winner() {
        let table = table3(Some(95.0));
        assert_eq!(table.rows.len(), 5);
        // Our simulated CNN-2 row (index 2) must beat Fang et al. (index 1)
        // in latency and power, as in the paper.
        assert!(table.latency_improvement(2, 1) > 5.0);
        assert!(table.power_ratio(2, 1) > 1.0);
        // Our LeNet row carries the measured accuracy.
        assert_eq!(table.rows[3].accuracy_pct, Some(95.0));
        // The VGG-11 row is orders of magnitude slower than LeNet but still
        // reaches a few frames per second.
        assert!(table.rows[4].latency_us > table.rows[3].latency_us * 50.0);
        assert!(table.rows[4].throughput_fps > 1.0);
    }

    #[test]
    fn encoding_ablation_shows_rate_coding_blowup() {
        let rows = encoding_ablation();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.slowdown > 1.5, "slowdown {}", row.slowdown);
            assert!(row.rate_latency_us > row.radix_latency_us);
        }
        // Slowdown grows with the resolution.
        assert!(rows.last().unwrap().slowdown > rows[0].slowdown);
    }

    #[test]
    fn formatting_contains_headers_and_rows() {
        let t2 = format_table2(&table2());
        assert!(t2.contains("conv units"));
        assert!(t2.lines().count() >= 6);
        let ablation = format_encoding_ablation(&encoding_ablation());
        assert!(ablation.contains("slowdown"));
    }
}
