//! Shared workload preparation: synthetic datasets, trained ANNs and
//! converted SNN models for the experiment harnesses.

use snn_data::digits::SyntheticDigits;
use snn_data::{Dataset, DatasetSplit};
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::snn::SnnModel;
use snn_model::{zoo, NetworkSpec};
use snn_train::trainer::{Trainer, TrainingConfig};

/// A trained ANN ready for conversion, together with its evaluation data.
#[derive(Debug, Clone)]
pub struct TrainedWorkload {
    /// The network topology.
    pub net: NetworkSpec,
    /// Trained floating-point parameters.
    pub params: Parameters,
    /// Train/test split of the synthetic dataset.
    pub data: DatasetSplit,
    /// Activation calibration collected on (a subset of) the training set.
    pub calibration: CalibrationStats,
}

/// Controls how much work the experiment harness performs.  The quick
/// profile keeps the Table I pipeline (training + per-T evaluation) to a few
/// seconds; the full profile uses more data for smoother accuracy numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small dataset and few epochs — used by tests and CI.
    Quick,
    /// Larger dataset — used when regenerating the tables for the report.
    Full,
}

impl Effort {
    /// Unoptimised (debug) builds shrink the workloads further so that
    /// `cargo test --workspace` stays fast; the experiment binaries are
    /// always run with `--release`, where the full quick/full profiles
    /// apply.
    const DEBUG_SCALE: usize = if cfg!(debug_assertions) { 4 } else { 1 };

    fn train_samples(self) -> usize {
        match self {
            Effort::Quick => 240 / Self::DEBUG_SCALE,
            Effort::Full => 500 / Self::DEBUG_SCALE,
        }
    }

    fn test_samples(self) -> usize {
        match self {
            Effort::Quick => 60 / Self::DEBUG_SCALE,
            Effort::Full => 100 / Self::DEBUG_SCALE,
        }
    }

    fn epochs(self) -> usize {
        match self {
            Effort::Quick => 8 / Self::DEBUG_SCALE.min(4),
            Effort::Full => 14 / Self::DEBUG_SCALE.min(4),
        }
    }
}

/// Trains LeNet-5 on the synthetic digit dataset (the MNIST stand-in) and
/// collects activation calibration, ready for ANN-to-SNN conversion.
///
/// # Panics
///
/// Panics if training fails, which only happens for internal configuration
/// errors.
pub fn trained_lenet5(effort: Effort, seed: u64) -> TrainedWorkload {
    let net = zoo::lenet5();
    let generator = SyntheticDigits::new(32).with_noise_percent(5);
    let dataset = generator.generate(effort.train_samples() + effort.test_samples(), seed);
    let split_fraction =
        effort.train_samples() as f32 / (effort.train_samples() + effort.test_samples()) as f32;
    let data = dataset.split(split_fraction);

    let mut params = Parameters::he_init(&net, seed).expect("LeNet-5 parameters");
    let config = TrainingConfig {
        epochs: effort.epochs(),
        learning_rate: 0.01,
        momentum: 0.9,
        lr_decay: 0.9,
    };
    Trainer::new(config)
        .train(&net, &mut params, &data.train)
        .expect("LeNet-5 training on the synthetic digits");

    let calibration_inputs: Vec<_> = data.train.iter().take(32).map(|(img, _)| img).collect();
    let calibration = CalibrationStats::collect(&net, &params, calibration_inputs)
        .expect("activation calibration");

    TrainedWorkload {
        net,
        params,
        data,
        calibration,
    }
}

/// Converts a trained workload into a radix-encoded SNN with the given
/// spike-train length (3-bit weights, as in the paper).
///
/// # Panics
///
/// Panics only on internal conversion errors.
pub fn convert_workload(workload: &TrainedWorkload, time_steps: usize) -> SnnModel {
    convert(
        &workload.net,
        &workload.params,
        &workload.calibration,
        ConversionConfig {
            weight_bits: 3,
            time_steps,
        },
    )
    .expect("ANN-to-SNN conversion")
}

/// Evaluates an SNN model's classification accuracy (percent) on a dataset.
///
/// # Panics
///
/// Panics only on internal inference errors.
pub fn snn_accuracy_pct(model: &SnnModel, dataset: &Dataset) -> f64 {
    model.evaluate(dataset.iter()).expect("SNN evaluation") as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_lenet_pipeline_produces_a_converted_model() {
        let workload = trained_lenet5(Effort::Quick, 3);
        assert_eq!(workload.net.name(), "LeNet-5");
        assert!(!workload.data.test.is_empty());
        let snn = convert_workload(&workload, 4);
        assert_eq!(snn.time_steps(), 4);
        let acc = snn_accuracy_pct(&snn, &workload.data.test);
        assert!((0.0..=100.0).contains(&acc));
    }
}
