//! The serving scenario behind `BENCH_serve.json`: naive per-call
//! inference versus the streaming server, swept across replica counts.
//!
//! One compiled LeNet-5 program is served three ways: a naive sequential
//! `run_fast` call per input (per-call compile — what a client without the
//! server would do), the streaming micro-batching server with a single
//! engine, and the same server with 2 and 4 replica engines behind the
//! queue-aware router.  Logits are bit-identical in every configuration
//! (pinned by the `exec_properties` and `replica_properties` suites); the
//! sweep records what each configuration buys in throughput.
//!
//! The body produced by [`sweep_body`] is shared by the `end_to_end`
//! criterion harness (which appends its `results` rows) and the standalone
//! `bench_serve` binary (which writes the sweep alone), so both regenerate
//! the same schema.
//!
//! Replica scaling is a property of the host: on a single hardware thread
//! the dispatcher threads time-slice one core and `replicas_2_vs_1` hovers
//! around 1.0; the committed numbers are whatever the recording host
//! honestly measured, and the trend check compares like against like.

use snn_accel::config::AcceleratorConfig;
use snn_accel::serve::{ServerOptions, StreamServer};
use snn_accel::sim::Accelerator;
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::snn::SnnModel;
use snn_model::zoo;
use snn_tensor::Tensor;
use std::hint::black_box;
use std::time::Instant;

/// Inferences per measured round.
pub const BATCH: usize = 32;

/// Micro-batch size of every server configuration in the sweep.
pub const MICRO_BATCH: usize = 8;

/// Measurement rounds per configuration; the best round is recorded.
pub const ROUNDS: usize = 3;

/// Replica-engine counts swept by the serving scenario.
pub const REPLICA_COUNTS: [usize; 3] = [1, 2, 4];

fn lenet_model() -> (SnnModel, Tensor<f32>) {
    let net = zoo::lenet5();
    let params = Parameters::he_init(&net, 7).expect("parameters");
    let input = Tensor::from_vec(
        vec![1, 32, 32],
        (0..1024).map(|i| (i % 97) as f32 / 96.0).collect(),
    )
    .expect("input");
    let stats = CalibrationStats::collect(&net, &params, [&input]).expect("calibration");
    let model = convert(
        &net,
        &params,
        &stats,
        ConversionConfig {
            weight_bits: 3,
            time_steps: 4,
        },
    )
    .expect("conversion");
    (model, input)
}

/// Measures the serving scenario and returns the `BENCH_serve.json` body
/// (everything except the criterion `results` array).
///
/// Baseline: naive sequential `run_fast` per-input calls.  Contenders: the
/// streaming server at each replica count in [`REPLICA_COUNTS`].  The
/// historical `inferences_per_sec/stream_server` and
/// `speedup_server_vs_naive` keys keep tracking the single-replica server
/// so the PR-over-PR trend is unbroken; the sweep adds
/// `replica_throughput_ips/replicas_N` and `replica_speedup` on top.
///
/// # Panics
///
/// Panics if any server fails to start or any inference errors — a bench
/// run that cannot serve must fail loudly rather than record garbage.
pub fn sweep_body() -> String {
    let (model, base_input) = lenet_model();
    let config = AcceleratorConfig::lenet_table3();
    let volume = base_input.len();
    let inputs: Vec<Tensor<f32>> = (0..BATCH)
        .map(|b| {
            let values: Vec<f32> = (0..volume)
                .map(|j| (((j * 13 + b * 101) % 97) as f32) / 96.0)
                .collect();
            Tensor::from_vec(vec![1, 32, 32], values).expect("serve input")
        })
        .collect();

    // Naive baseline: one `run_fast` call per input, best of ROUNDS.
    let accel = Accelerator::new(config);
    accel.run_fast(&model, &inputs[0]).expect("warmup");
    let mut naive_best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        for input in &inputs {
            black_box(accel.run_fast(&model, input).expect("naive run_fast"));
        }
        naive_best = naive_best.min(start.elapsed().as_secs_f64());
    }
    let naive_ips = BATCH as f64 / naive_best;

    // Replica sweep: compile once, micro-batch onto 1/2/4 engines behind
    // the router.  Single-replica stats feed the utilisation section so
    // the modelled per-unit numbers stay comparable with earlier PRs.
    let mut swept: Vec<(usize, f64)> = Vec::new();
    let mut single_stats = None;
    let mut phase_latency = String::from("{}");
    for replicas in REPLICA_COUNTS {
        let server = StreamServer::start_with(
            config,
            model.clone(),
            ServerOptions {
                max_batch: MICRO_BATCH,
                replicas,
                // The summary embeds per-phase trace percentiles, so
                // tracing is pinned on regardless of SNN_TRACE.
                trace: true,
                ..ServerOptions::default()
            },
        )
        .expect("start server");
        server.run_all(&inputs[..2]).expect("server warmup");
        let mut best = f64::INFINITY;
        for _ in 0..ROUNDS {
            let start = Instant::now();
            black_box(server.run_all(&inputs).expect("served batch"));
            best = best.min(start.elapsed().as_secs_f64());
        }
        let ips = BATCH as f64 / best;
        if replicas == 1 {
            // Per-phase latency percentiles from the single-replica run's
            // span recorder (tracing is on by default), summarised for
            // the PR-over-PR trend like the throughput numbers.
            let traces = server.recorder().drain();
            if !traces.is_empty() {
                phase_latency = crate::phases::phase_latency_json(&traces);
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.replicas, replicas, "sweep must run what it claims");
        assert_eq!(
            stats.healthy_replicas, replicas,
            "every engine must survive the measured rounds"
        );
        if replicas == 1 {
            single_stats = Some(stats);
        }
        swept.push((replicas, ips));
    }
    let stats = single_stats.expect("REPLICA_COUNTS includes 1");
    let serve_ips = swept[0].1;
    let speedup = serve_ips / naive_ips;
    let scaling: Vec<String> = swept
        .iter()
        .skip(1)
        .map(|(r, ips)| format!("{r}x={:.2}", ips / serve_ips))
        .collect();
    println!(
        "serve: naive {naive_ips:.1} inf/s, stream server {serve_ips:.1} inf/s ({speedup:.2}x, \
         thread budget {}); replica scaling {}",
        stats.thread_budget,
        scaling.join(" ")
    );

    let throughput: Vec<String> = swept
        .iter()
        .map(|(r, ips)| format!("\"replicas_{r}\": {ips:.2}"))
        .collect();
    let replica_speedup: Vec<String> = swept
        .iter()
        .skip(1)
        .map(|(r, ips)| format!("\"replicas_{r}_vs_1\": {:.3}", ips / serve_ips))
        .collect();
    let utilisation: Vec<String> = stats
        .utilisation
        .iter()
        .map(|u| {
            format!(
                "\"{:?}\": {{\"units\": {}, \"busy_cycles\": {}, \"total_cycles\": {}, \
                 \"utilisation\": {:.4}}}",
                u.kind,
                u.units,
                u.busy_cycles,
                u.total_cycles,
                u.utilisation()
            )
        })
        .collect();
    format!(
        "\"workload\": \"lenet5_T4_batch{BATCH}\",\n\
         \"batch\": {BATCH},\n\
         \"micro_batch\": {MICRO_BATCH},\n\
         \"thread_budget\": {},\n\
         \"inferences_per_sec\": {{\"naive_run_fast\": {naive_ips:.2}, \
         \"stream_server\": {serve_ips:.2}}},\n\
         \"speedup_server_vs_naive\": {speedup:.3},\n\
         \"replica_throughput_ips\": {{{}}},\n\
         \"replica_speedup\": {{{}}},\n\
         \"trace_phase_latency\": {phase_latency},\n\
         \"unit_utilisation\": {{{}}}",
        stats.thread_budget,
        throughput.join(", "),
        replica_speedup.join(", "),
        utilisation.join(", ")
    )
}
