//! Benchmark trend checking: compares a freshly generated `BENCH_*.json`
//! summary against the committed previous values and reports regressions.
//!
//! The summaries are written by the bench harnesses themselves
//! (`BENCH_conv.json` by `conv_unit`, `BENCH_serve.json` by `end_to_end`),
//! so the format is ours; a tiny flattening JSON reader keeps this free of
//! external dependencies (the container has no registry access).  Metrics
//! are classified by their key path:
//!
//! * `*_ns`, `*_us`, `*_ms` — durations (and latency percentiles like the
//!   `p50_us`/`p99_us` of `BENCH_net.json`), **lower** is better;
//! * `*speedup*`, `*per_sec*` paths, path segments ending in `_ips`
//!   (inferences per second, e.g. the `replica_throughput_ips` sweep of
//!   `BENCH_serve.json`) and `utilisation` leaf keys — ratios/rates,
//!   **higher** is better;
//! * everything else (sample counts, batch sizes, cycle counts — including
//!   the `busy_cycles`/`total_cycles` siblings of a utilisation entry) is
//!   informational and not compared.  So are the open-loop generator's
//!   own scheduling-noise keys (`jitter`, `send_lag`): they describe the
//!   load machine, not the server, and exist precisely so a latency
//!   regression can be cross-checked against them by a human.
//!
//! The check is **two-tier**, with the failure tier set per metric by
//! [`fail_threshold_for`]:
//!
//! * **Stable duration keys** (`_ns`/`_us`/`_ms`, e.g. latency p50/p99)
//!   **fail** past [`DEFAULT_THRESHOLD`] (20 %) — three PRs of baselines
//!   have shown them reproducible on the hosted runner, so a 20 % growth
//!   is a real regression, not noise.  Two escape hatches keep this
//!   strict tier honest: the extreme-tail `p999*` keys warn but never
//!   fail (a single descheduled request moves them an order of
//!   magnitude), and regressions where both sides sit under the
//!   [`MATERIALITY_FLOOR_US`] absolute floor are skipped outright (a
//!   relative threshold on a 3 µs phase measures scheduler jitter).
//! * **Throughput keys** (`_ips`, `per_sec`, `speedup`, `utilisation`)
//!   warn past 20 % and only fail past [`FAIL_THRESHOLD`] (50 %): the
//!   1-core hosted runner's available parallelism varies enough that a
//!   few tens of percent of throughput is genuinely ambient.

use std::fmt;

/// Fraction of change treated as a regression (20 %).
pub const DEFAULT_THRESHOLD: f64 = 0.20;

/// Fraction of change past which a regression **fails** the trend check
/// instead of warning (50 %): hosted-runner noise explains a few tens of
/// percent on micro-benchmarks, not a halving of throughput.  Duration
/// metrics use the stricter per-metric tier from [`fail_threshold_for`].
pub const FAIL_THRESHOLD: f64 = 0.50;

/// The failure tier of one metric key: stable duration keys
/// (`_ns`/`_us`/`_ms`) fail at [`DEFAULT_THRESHOLD`]; the extreme-tail
/// `p999*` duration percentiles never fail (on a 1-core hosted runner the
/// p999 of a few hundred samples *is* the max sample, and one deschedule
/// moves it an order of magnitude — they still warn); everything else
/// fails at [`FAIL_THRESHOLD`].  See the module docs for the rationale.
pub fn fail_threshold_for(id: &str) -> f64 {
    let duration = id.split('/').any(|segment| {
        segment.ends_with("_ns") || segment.ends_with("_us") || segment.ends_with("_ms")
    });
    let extreme_tail = id.split('/').any(|segment| segment.starts_with("p999"));
    match (duration, extreme_tail) {
        (true, true) => f64::INFINITY,
        (true, false) => DEFAULT_THRESHOLD,
        _ => FAIL_THRESHOLD,
    }
}

/// Absolute materiality floor for duration comparisons (500 µs).
///
/// Relative thresholds need an absolute floor: micro-phases like
/// connection `admission` or replica `route` sit at single-digit
/// microseconds, where a "150 % regression" (0.2 µs -> 0.5 µs) measures
/// scheduler jitter, not the server.  [`compare`] skips a lower-is-better
/// duration regression when **both** values are below the floor; a real
/// cost hiding under it still surfaces in the end-to-end `duration`
/// totals, which sit well above.  Growth *crossing* the floor is still
/// reported.
pub const MATERIALITY_FLOOR_US: f64 = 500.0;

/// [`MATERIALITY_FLOOR_US`] expressed in `id`'s own unit, for duration
/// keys (`None` for everything else).
fn materiality_floor(id: &str) -> Option<f64> {
    id.split('/').find_map(|segment| {
        if segment.ends_with("_ns") {
            Some(MATERIALITY_FLOOR_US * 1_000.0)
        } else if segment.ends_with("_us") {
            Some(MATERIALITY_FLOOR_US)
        } else if segment.ends_with("_ms") {
            Some(MATERIALITY_FLOOR_US / 1_000.0)
        } else {
            None
        }
    })
}

/// One comparable benchmark metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Flattened key path, e.g. `results/conv_unit/bitplane_sparse/3/median_ns`.
    pub id: String,
    /// The numeric value.
    pub value: f64,
    /// Whether larger values are improvements.
    pub higher_is_better: bool,
}

/// A metric that moved past the regression threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The metric's key path.
    pub id: String,
    /// Committed previous value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// `current / baseline`.
    pub ratio: f64,
    /// Whether larger values are improvements for this metric.
    pub higher_is_better: bool,
}

impl Regression {
    /// Whether this regression also crosses a harsher `threshold` (e.g.
    /// [`FAIL_THRESHOLD`]) in its own worse-direction.
    pub fn exceeds(&self, threshold: f64) -> bool {
        if self.higher_is_better {
            self.ratio < 1.0 - threshold
        } else {
            self.ratio > 1.0 + threshold
        }
    }
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let direction = if self.higher_is_better {
            "dropped"
        } else {
            "grew"
        };
        write!(
            f,
            "{}: {} {:.1}% ({} -> {})",
            self.id,
            direction,
            100.0 * (self.ratio - 1.0).abs(),
            self.baseline,
            self.current
        )
    }
}

// ---------------------------------------------------------------------------
// Minimal flattening JSON reader
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Reader {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&b) = self.bytes.get(self.pos) {
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    // The harness-written summaries only escape quotes and
                    // backslashes; pass anything else through verbatim.
                    if let Some(&esc) = self.bytes.get(self.pos) {
                        self.pos += 1;
                        out.push(esc as char);
                    }
                }
                _ => out.push(b as char),
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_scalar(&mut self) -> Result<Option<f64>, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b',' || b == b'}' || b == b']' || b.is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 scalar".to_string())?;
        if token.is_empty() {
            return Err(format!("empty scalar at byte {start}"));
        }
        // Numbers become metrics; true/false/null are informational.
        Ok(token.parse::<f64>().ok())
    }

    /// Parses one value, appending `(path, number)` pairs to `out`.
    fn parse_value(&mut self, path: &str, out: &mut Vec<(String, f64)>) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => {
                self.expect(b'{')?;
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let child = if path.is_empty() {
                        key.clone()
                    } else {
                        format!("{path}/{key}")
                    };
                    self.parse_value(&child, out)?;
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        other => return Err(format!("bad object separator {other:?}")),
                    }
                }
            }
            Some(b'[') => {
                self.expect(b'[')?;
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(());
                }
                let mut index = 0usize;
                loop {
                    // Array elements keep their index as a provisional path
                    // component; `parse_metrics` rewrites criterion result
                    // rows to their stable `"id"` afterwards.
                    self.parse_value(&format!("{path}/{index}"), out)?;
                    index += 1;
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        other => return Err(format!("bad array separator {other:?}")),
                    }
                }
            }
            Some(b'"') => {
                self.parse_string()?;
                Ok(())
            }
            Some(_) => {
                if let Some(number) = self.parse_scalar()? {
                    out.push((path.to_string(), number));
                }
                Ok(())
            }
            None => Err("unexpected end of input".to_string()),
        }
    }
}

/// Extracts the comparable metrics of one `BENCH_*.json` summary.
///
/// # Errors
///
/// Returns a description of the first malformed construct.
pub fn parse_metrics(text: &str) -> Result<Vec<Metric>, String> {
    parse_metrics_with_skipped(text).map(|(metrics, _)| metrics)
}

/// Like [`parse_metrics`], but also returns the key paths of numeric
/// fields that were **not** classified as comparable (informational
/// counts, cycle totals, unknown keys).  `bench_trend` prints these so a
/// metric silently dropped from the comparison is visible in the log
/// rather than disappearing.
///
/// # Errors
///
/// Returns a description of the first malformed construct.
pub fn parse_metrics_with_skipped(text: &str) -> Result<(Vec<Metric>, Vec<String>), String> {
    // First pass: flatten every numeric field.
    let mut raw = Vec::new();
    let mut reader = Reader::new(text);
    reader.parse_value("", &mut raw)?;
    reader.skip_ws();

    // Second pass: criterion result rows carry their stable key in an
    // `"id"` string field; rewrite `results/<index>/...` to
    // `results/<id>/...` so reordering rows does not break comparisons.
    let ids = result_ids(text);
    let mut metrics = Vec::new();
    let mut skipped = Vec::new();
    for (mut id, value) in raw {
        if let Some(rest) = id.strip_prefix("results/") {
            if let Some((index, field)) = rest.split_once('/') {
                if let Ok(index) = index.parse::<usize>() {
                    if let Some(stable) = ids.get(index) {
                        id = format!("results/{stable}/{field}");
                    }
                }
            }
        }
        // Only the `utilisation` leaf is a rate; its cycle-count siblings
        // (`.../busy_cycles`, `.../total_cycles`) are informational.  An
        // `_ips` suffix on any path segment marks a throughput rate — the
        // segment may be a parent (`replica_throughput_ips/replicas_2`),
        // so the whole path is checked, not just the leaf.
        let leaf = id.rsplit('/').next().unwrap_or(id.as_str()).to_string();
        let higher = id.contains("speedup")
            || id.contains("per_sec")
            || id.split('/').any(|segment| segment.ends_with("_ips"))
            || leaf == "utilisation";
        // Durations are lower-is-better; like `_ips`, the unit suffix may
        // sit on a parent segment (`phase_p99_us/compute`) rather than the
        // leaf, so every segment is checked.
        let lower = id.split('/').any(|segment| {
            segment.ends_with("_ns") || segment.ends_with("_us") || segment.ends_with("_ms")
        });
        // The open-loop generator's scheduling-noise keys are measurements
        // of the load machine, not the server — informational by design,
        // whatever their unit suffix says.
        let generator_noise = id
            .split('/')
            .any(|segment| segment.contains("jitter") || segment.contains("send_lag"));
        if (higher || lower) && !generator_noise {
            metrics.push(Metric {
                id,
                value,
                higher_is_better: higher,
            });
        } else {
            skipped.push(id);
        }
    }
    Ok((metrics, skipped))
}

/// The `"id"` strings of the `results` array, in order.
fn result_ids(text: &str) -> Vec<String> {
    let mut ids = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find("\"id\"") {
        rest = &rest[at + 4..];
        if let Some(colon) = rest.find(':') {
            rest = &rest[colon + 1..];
            if let Some(open) = rest.find('"') {
                rest = &rest[open + 1..];
                if let Some(close) = rest.find('"') {
                    ids.push(rest[..close].to_string());
                    rest = &rest[close + 1..];
                    continue;
                }
            }
        }
        break;
    }
    ids
}

/// Compares current metrics against the committed baseline and returns the
/// ones that regressed by more than `threshold` (e.g. `0.2` for 20 %).
///
/// Metrics present on only one side are ignored — new benchmarks appear
/// and old ones retire without tripping the check.
pub fn compare(baseline: &[Metric], current: &[Metric], threshold: f64) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for now in current {
        let Some(then) = baseline.iter().find(|m| m.id == now.id) else {
            continue;
        };
        if then.value <= 0.0 {
            continue;
        }
        let ratio = now.value / then.value;
        let regressed = if now.higher_is_better {
            ratio < 1.0 - threshold
        } else {
            ratio > 1.0 + threshold
        };
        if regressed {
            // Sub-floor durations are scheduler jitter, not regressions.
            if !now.higher_is_better {
                if let Some(floor) = materiality_floor(&now.id) {
                    if then.value < floor && now.value < floor {
                        continue;
                    }
                }
            }
            regressions.push(Regression {
                id: now.id.clone(),
                baseline: then.value,
                current: now.value,
                ratio,
                higher_is_better: now.higher_is_better,
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
"workload": "lenet",
"batch": 32,
"inferences_per_sec": {"naive_run_fast": 900.0, "stream_server": 2200.0},
"speedup_server_vs_naive": 2.4,
"unit_utilisation": {"Convolution": {"units": 4, "busy_cycles": 73160, "total_cycles": 125568, "utilisation": 0.58}},
"results": [
  {"id": "conv_unit/bitplane_sparse/3", "median_ns": 450000.0, "mean_ns": 451000.0, "samples": 12},
  {"id": "pool_unit/avg", "median_ns": 22000.0, "mean_ns": 22500.0, "samples": 12}
]
}"#;

    #[test]
    fn parses_rates_speedups_utilisation_and_durations() {
        let metrics = parse_metrics(SAMPLE).unwrap();
        let find = |id: &str| {
            metrics
                .iter()
                .find(|m| m.id == id)
                .unwrap_or_else(|| panic!("missing metric {id}: {metrics:?}"))
        };
        let naive = find("inferences_per_sec/naive_run_fast");
        assert!(naive.higher_is_better);
        assert!((naive.value - 900.0).abs() < 1e-9);
        assert!(find("speedup_server_vs_naive").higher_is_better);
        assert!(find("unit_utilisation/Convolution/utilisation").higher_is_better);
        // Cycle-count siblings of a utilisation entry are informational,
        // not comparable metrics.
        assert!(metrics.iter().all(|m| !m.id.ends_with("busy_cycles")));
        assert!(metrics.iter().all(|m| !m.id.ends_with("total_cycles")));
        assert!(metrics.iter().all(|m| !m.id.ends_with("/units")));
        let sparse = find("results/conv_unit/bitplane_sparse/3/median_ns");
        assert!(!sparse.higher_is_better);
        assert!((sparse.value - 450000.0).abs() < 1e-9);
        // Sample counts and batch sizes are not comparable metrics.
        assert!(metrics.iter().all(|m| !m.id.ends_with("samples")));
        assert!(metrics.iter().all(|m| m.id != "batch"));
    }

    #[test]
    fn regressions_respect_direction_and_threshold() {
        let baseline = parse_metrics(SAMPLE).unwrap();
        let current = SAMPLE
            .replace("\"stream_server\": 2200.0", "\"stream_server\": 1500.0")
            .replace("\"median_ns\": 450000.0", "\"median_ns\": 600000.0");
        let current = parse_metrics(&current).unwrap();
        let regressions = compare(&baseline, &current, DEFAULT_THRESHOLD);
        let ids: Vec<&str> = regressions.iter().map(|r| r.id.as_str()).collect();
        assert!(ids.contains(&"inferences_per_sec/stream_server"));
        assert!(ids.contains(&"results/conv_unit/bitplane_sparse/3/median_ns"));
        // The unchanged pool metric does not trip.
        assert!(!ids.iter().any(|id| id.contains("pool_unit")));
        // Every regression renders a human-readable line.
        for regression in &regressions {
            assert!(regression.to_string().contains(&regression.id));
        }
    }

    #[test]
    fn fail_threshold_separates_warnings_from_hard_failures() {
        let baseline = parse_metrics(SAMPLE).unwrap();
        // -30% throughput: a warning-tier regression, not a failure.
        // +120% latency: past the fail tier in the lower-is-better sense.
        let current = SAMPLE
            .replace("\"stream_server\": 2200.0", "\"stream_server\": 1540.0")
            .replace("\"median_ns\": 450000.0", "\"median_ns\": 990000.0");
        let current = parse_metrics(&current).unwrap();
        let regressions = compare(&baseline, &current, DEFAULT_THRESHOLD);
        assert_eq!(regressions.len(), 2);
        let soft = regressions
            .iter()
            .find(|r| r.id.contains("stream_server"))
            .unwrap();
        assert!(!soft.exceeds(FAIL_THRESHOLD), "-30% stays a warning");
        let hard = regressions
            .iter()
            .find(|r| r.id.contains("median_ns"))
            .unwrap();
        assert!(hard.exceeds(FAIL_THRESHOLD), "+120% must fail");
    }

    #[test]
    fn improvements_and_small_noise_do_not_trip() {
        let baseline = parse_metrics(SAMPLE).unwrap();
        let current = SAMPLE
            .replace("\"stream_server\": 2200.0", "\"stream_server\": 2600.0")
            .replace("\"median_ns\": 450000.0", "\"median_ns\": 495000.0"); // +10%
        let current = parse_metrics(&current).unwrap();
        assert!(compare(&baseline, &current, DEFAULT_THRESHOLD).is_empty());
    }

    #[test]
    fn new_and_retired_metrics_are_ignored() {
        let baseline = parse_metrics(SAMPLE).unwrap();
        let trimmed = parse_metrics(
            r#"{"inferences_per_sec": {"naive_run_fast": 900.0}, "brand_new_per_sec": 1.0}"#,
        )
        .unwrap();
        assert!(compare(&baseline, &trimmed, DEFAULT_THRESHOLD).is_empty());
    }

    #[test]
    fn ips_segments_are_higher_is_better_throughput_rates() {
        let metrics = parse_metrics(
            r#"{"replica_throughput_ips": {"replicas_1": 2000.0, "replicas_2": 2600.0},
                "replica_speedup": {"replicas_2_vs_1": 1.3},
                "drain_rate_ips": 512.0}"#,
        )
        .unwrap();
        for id in [
            "replica_throughput_ips/replicas_1",
            "replica_throughput_ips/replicas_2",
            "replica_speedup/replicas_2_vs_1",
            "drain_rate_ips",
        ] {
            let metric = metrics
                .iter()
                .find(|m| m.id == id)
                .unwrap_or_else(|| panic!("missing {id}: {metrics:?}"));
            assert!(metric.higher_is_better, "{id} must be higher-is-better");
        }
        // A halved replica throughput regresses; a gained one does not.
        let baseline = metrics;
        let current = parse_metrics(
            r#"{"replica_throughput_ips": {"replicas_1": 2100.0, "replicas_2": 1200.0},
                "replica_speedup": {"replicas_2_vs_1": 0.57},
                "drain_rate_ips": 600.0}"#,
        )
        .unwrap();
        let regressions = compare(&baseline, &current, DEFAULT_THRESHOLD);
        let ids: Vec<&str> = regressions.iter().map(|r| r.id.as_str()).collect();
        assert!(ids.contains(&"replica_throughput_ips/replicas_2"));
        assert!(ids.contains(&"replica_speedup/replicas_2_vs_1"));
        assert!(!ids.contains(&"replica_throughput_ips/replicas_1"));
        assert!(!ids.contains(&"drain_rate_ips"));
    }

    #[test]
    fn latency_percentiles_are_lower_is_better() {
        let metrics = parse_metrics(
            r#"{"latency": {"p50_us": 900.0, "p99_us": 2100.0, "mean_us": 1000.0},
                "warmup_ms": 12.0, "samples": 64}"#,
        )
        .unwrap();
        for id in [
            "latency/p50_us",
            "latency/p99_us",
            "latency/mean_us",
            "warmup_ms",
        ] {
            let metric = metrics
                .iter()
                .find(|m| m.id == id)
                .unwrap_or_else(|| panic!("missing {id}: {metrics:?}"));
            assert!(!metric.higher_is_better, "{id} must be lower-is-better");
        }
        assert!(metrics.iter().all(|m| m.id != "samples"));
    }

    #[test]
    fn duration_suffixes_on_parent_segments_are_lower_is_better() {
        // The unit suffix may name a parent group rather than the leaf —
        // `phase_p99_us/compute` must classify exactly like `p99_us`.
        let metrics = parse_metrics(
            r#"{"phase_p99_us": {"queue_wait": 120.0, "compute": 900.0},
                "trace_phase_latency": {"compute": {"p999_us": 1800.0}}}"#,
        )
        .unwrap();
        for id in [
            "phase_p99_us/queue_wait",
            "phase_p99_us/compute",
            "trace_phase_latency/compute/p999_us",
        ] {
            let metric = metrics
                .iter()
                .find(|m| m.id == id)
                .unwrap_or_else(|| panic!("missing {id}: {metrics:?}"));
            assert!(!metric.higher_is_better, "{id} must be lower-is-better");
        }
    }

    #[test]
    fn unclassified_numeric_keys_are_reported_not_dropped() {
        let (metrics, skipped) = parse_metrics_with_skipped(
            r#"{"latency": {"p50_us": 900.0}, "batch": 32, "samples": 64,
                "mystery_metric": 7.0}"#,
        )
        .unwrap();
        assert_eq!(metrics.len(), 1);
        assert!(skipped.contains(&"batch".to_string()));
        assert!(skipped.contains(&"samples".to_string()));
        assert!(skipped.contains(&"mystery_metric".to_string()));
        assert!(!skipped.contains(&"latency/p50_us".to_string()));
    }

    #[test]
    fn failure_tier_is_strict_for_durations_and_lenient_for_throughput() {
        // Stable duration keys fail at the warn threshold.
        assert!((fail_threshold_for("latency/p50_us") - DEFAULT_THRESHOLD).abs() < 1e-12);
        assert!(
            (fail_threshold_for("trace_phase_latency/compute/p99_us") - DEFAULT_THRESHOLD).abs()
                < 1e-12
        );
        assert!(
            (fail_threshold_for("results/conv_unit/median_ns") - DEFAULT_THRESHOLD).abs() < 1e-12
        );
        assert!((fail_threshold_for("warmup_ms") - DEFAULT_THRESHOLD).abs() < 1e-12);
        // Extreme duration tails warn but never fail — a single slow
        // sample moves them an order of magnitude on a shared runner.
        assert!(fail_threshold_for("latency/p999_us").is_infinite());
        assert!(fail_threshold_for("open_loop/u90/report/latency/p999_us").is_infinite());
        // Throughput keeps the noise-tolerant tier.
        assert!(
            (fail_threshold_for("inferences_per_sec/tcp_loopback") - FAIL_THRESHOLD).abs() < 1e-12
        );
        assert!(
            (fail_threshold_for("replica_throughput_ips/replicas_2") - FAIL_THRESHOLD).abs()
                < 1e-12
        );
        assert!((fail_threshold_for("speedup_server_vs_naive") - FAIL_THRESHOLD).abs() < 1e-12);
    }

    #[test]
    fn sub_floor_duration_regressions_are_scheduler_jitter_not_reported() {
        let baseline = parse_metrics(
            r#"{"trace_phase_latency": {
                  "route": {"p50_us": 0.2, "p99_us": 3.8},
                  "compute": {"p50_us": 6833.4}},
                "warmup_ms": 0.1}"#,
        )
        .unwrap();
        // Every micro-phase blows its relative threshold but stays under
        // the 500 us floor; the material compute phase regresses for real.
        let current = parse_metrics(
            r#"{"trace_phase_latency": {
                  "route": {"p50_us": 1.3, "p99_us": 19.3},
                  "compute": {"p50_us": 9000.0}},
                "warmup_ms": 0.4}"#,
        )
        .unwrap();
        let regressions = compare(&baseline, &current, DEFAULT_THRESHOLD);
        let ids: Vec<&str> = regressions.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["trace_phase_latency/compute/p50_us"]);
        // Growth that crosses the floor is still a regression: the floor
        // is a materiality test, not an exemption for small baselines.
        let crossed =
            parse_metrics(r#"{"trace_phase_latency": {"route": {"p99_us": 700.0}}}"#).unwrap();
        let regressions = compare(&baseline, &crossed, DEFAULT_THRESHOLD);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].id.ends_with("route/p99_us"));
    }

    #[test]
    fn generator_noise_keys_are_informational_not_compared() {
        let (metrics, skipped) = parse_metrics_with_skipped(
            r#"{"open_loop": {"report": {
                  "latency": {"p50_us": 900.0},
                  "send_lag": {"p50_us": 40.0, "p99_us": 200.0},
                  "interarrival_jitter": {"p99_us": 120.0}}}}"#,
        )
        .unwrap();
        // The served latency is compared; the harness's own scheduling
        // noise is reported but never gates.
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].id, "open_loop/report/latency/p50_us");
        assert!(skipped.contains(&"open_loop/report/send_lag/p50_us".to_string()));
        assert!(skipped.contains(&"open_loop/report/send_lag/p99_us".to_string()));
        assert!(skipped.contains(&"open_loop/report/interarrival_jitter/p99_us".to_string()));
    }

    #[test]
    fn committed_summaries_parse() {
        for path in [
            "../../BENCH_conv.json",
            "../../BENCH_serve.json",
            "../../BENCH_net.json",
        ] {
            let full = format!("{}/{}", env!("CARGO_MANIFEST_DIR"), path);
            if let Ok(text) = std::fs::read_to_string(&full) {
                let metrics = parse_metrics(&text).unwrap();
                assert!(!metrics.is_empty(), "{path} produced no metrics");
            }
        }
    }
}
