//! Per-phase latency summaries for the bench harnesses: turns a drained
//! batch of [`RequestTrace`]s into the `"trace_phase_latency"` JSON
//! object embedded in `BENCH_net.json` / `BENCH_serve.json`, so the
//! PR-over-PR trend tracks p50/p99/p999 of queue wait, compute and
//! end-to-end duration (and, at the TCP boundary, reactor write stall)
//! alongside raw throughput.
//!
//! Keys end in `_us`, which [`crate::trend`] classifies as
//! lower-is-better durations.

use snn_telemetry::{Phase, RequestTrace, PHASES};

/// Nearest-rank percentile over an **ascending** sample slice, as
/// `numerator/denominator` (e.g. `999/1000` for p99.9).  Empty input
/// yields `0.0`.
pub fn percentile(sorted: &[f64], numerator: usize, denominator: usize) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let index = (sorted.len() - 1) * numerator / denominator;
    sorted[index]
}

fn summary_json(label: &str, mut samples_us: Vec<f64>) -> String {
    samples_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    format!(
        "\"{label}\": {{\"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}}}",
        percentile(&samples_us, 50, 100),
        percentile(&samples_us, 99, 100),
        percentile(&samples_us, 999, 1000)
    )
}

/// Renders the `"trace_phase_latency"` object body (the `{...}` value)
/// from drained traces: one `p50_us`/`p99_us`/`p999_us` summary per
/// phase that recorded at least one sample, plus the end-to-end
/// `duration` summary over every trace.
pub fn phase_latency_json(traces: &[RequestTrace]) -> String {
    let mut entries = Vec::new();
    for phase in PHASES {
        let samples: Vec<f64> = traces
            .iter()
            .filter_map(|t| t.phase_seconds(phase))
            .map(|s| s * 1e6)
            .collect();
        if !samples.is_empty() {
            entries.push(summary_json(phase.name(), samples));
        }
    }
    let durations: Vec<f64> = traces.iter().map(|t| t.total_seconds * 1e6).collect();
    if !durations.is_empty() {
        entries.push(summary_json("duration", durations));
    }
    format!("{{{}}}", entries.join(", "))
}

/// `true` when at least one trace recorded the phase — used by harnesses
/// to assert the pipeline actually produced what they are summarising.
pub fn any_phase(traces: &[RequestTrace], phase: Phase) -> bool {
    traces.iter().any(|t| t.phase_seconds(phase).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_telemetry::{Outcome, PhaseSpan};

    fn trace(id: u64, compute_s: f64) -> RequestTrace {
        RequestTrace {
            request_id: id,
            unix_ms: 0,
            replica: Some(0),
            queue_depth_at_route: Some(0),
            phases: vec![PhaseSpan {
                phase: Phase::Compute,
                seconds: compute_s,
            }],
            outcome: Outcome::Scores { total_cycles: 1 },
            total_seconds: compute_s * 2.0,
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 50, 100), 50.0);
        assert_eq!(percentile(&sorted, 99, 100), 99.0);
        assert_eq!(percentile(&sorted, 999, 1000), 99.0);
        assert_eq!(percentile(&[], 50, 100), 0.0);
    }

    #[test]
    fn json_carries_only_recorded_phases_plus_duration() {
        let traces: Vec<RequestTrace> = (0..10).map(|i| trace(i, 0.001 * (i + 1) as f64)).collect();
        let json = phase_latency_json(&traces);
        assert!(json.contains("\"compute\": {\"p50_us\":"), "{json}");
        assert!(json.contains("\"duration\": {"), "{json}");
        assert!(!json.contains("queue_wait"), "{json}");
        // The fragment is a complete JSON object the trend reader accepts.
        let wrapped = format!("{{\"trace_phase_latency\": {json}}}");
        let metrics = crate::trend::parse_metrics(&wrapped).unwrap();
        assert!(metrics
            .iter()
            .any(|m| m.id == "trace_phase_latency/compute/p99_us" && !m.higher_is_better));
    }
}
