//! # snn-bench
//!
//! Experiment harnesses that regenerate every table of the paper's
//! evaluation section, plus Criterion micro-benchmarks for the simulator
//! itself.
//!
//! Each table has a binary that prints the regenerated rows:
//!
//! * `cargo run -p snn-bench --release --bin table1` — accuracy and latency
//!   versus spike-train length (Table I).
//! * `cargo run -p snn-bench --release --bin table2` — latency, power and
//!   resources versus the number of convolution units (Table II).
//! * `cargo run -p snn-bench --release --bin table3` — the cross-accelerator
//!   comparison including LeNet-5, the CNN of Fang et al. and VGG-11
//!   (Table III).
//!
//! The building blocks live in [`experiments`] so integration tests can
//! assert the trends without shelling out to the binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod openloop;
pub mod phases;
pub mod serve_sweep;
pub mod trend;
pub mod workloads;
