//! Criterion micro-benchmarks for the processing-unit simulators.
//!
//! These benches measure the *simulator's* throughput (host-side), which is
//! what matters when sweeping design points: the bit-plane sparse
//! convolution engine versus the retained counter-stepped scalar reference
//! and the functional integer reference, plus the pooling and linear units
//! on LeNet-5-shaped layers.
//!
//! Besides the usual console output, the harness writes a machine-readable
//! `BENCH_conv.json` summary to the workspace root with the
//! sparse-vs-scalar speedup on the LeNet conv2 workload and the row-band
//! tiling overhead on a VGG-11-shaped layer (the cost of running a layer
//! under the 8 KiB tiled activation-buffer budget instead of untiled), so
//! the perf trajectory of the hot path is tracked PR over PR.

use criterion::{criterion_group, BenchmarkId, Criterion};
use snn_accel::config::{AcceleratorConfig, ArrayGeometry, DEFAULT_DENSE_GATHER_THRESHOLD};
use snn_accel::conv::ConvolutionUnit;
use snn_accel::linear::LinearUnit;
use snn_accel::memory::RowBand;
use snn_accel::pool::PoolingUnit;
use snn_accel::reference::ReferenceConvolutionUnit;
use snn_model::layer::PoolKind;
use snn_tensor::simd::{self, scalar};
use snn_tensor::{bitplane, ops, Tensor};
use std::hint::black_box;

fn lenet_conv2_inputs() -> (Tensor<i64>, Tensor<i64>, Tensor<i64>) {
    // LeNet-5 second convolution: 6 -> 16 channels, 5x5 kernel, 14x14 input.
    let input = Tensor::from_vec(
        vec![6, 14, 14],
        (0..6 * 14 * 14).map(|v| (v % 8) as i64).collect(),
    )
    .expect("input tensor");
    let kernel = Tensor::from_vec(
        vec![16, 6, 5, 5],
        (0..16 * 6 * 25).map(|v| ((v % 7) as i64) - 3).collect(),
    )
    .expect("kernel tensor");
    let bias = Tensor::filled(vec![16], 0i64);
    (input, kernel, bias)
}

const LENET_GEOMETRY: ArrayGeometry = ArrayGeometry {
    columns: 30,
    rows: 5,
};

fn bench_conv_unit(c: &mut Criterion) {
    let (input, kernel, bias) = lenet_conv2_inputs();
    let mut group = c.benchmark_group("conv_unit");
    for &time_steps in &[3usize, 6] {
        group.bench_with_input(
            BenchmarkId::new("bitplane_sparse", time_steps),
            &time_steps,
            |b, &t| {
                let unit = ConvolutionUnit::new(LENET_GEOMETRY);
                b.iter(|| {
                    unit.run_layer(
                        black_box(&input),
                        black_box(&kernel),
                        black_box(&bias),
                        t,
                        1,
                        0,
                    )
                    .expect("conv unit run")
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bitplane_sparse_ps", time_steps),
            &time_steps,
            |b, &t| {
                let unit = ConvolutionUnit::with_options(
                    LENET_GEOMETRY,
                    DEFAULT_DENSE_GATHER_THRESHOLD,
                    true,
                );
                b.iter(|| {
                    unit.run_layer(
                        black_box(&input),
                        black_box(&kernel),
                        black_box(&bias),
                        t,
                        1,
                        0,
                    )
                    .expect("product-sparsity conv unit run")
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("scalar_reference", time_steps),
            &time_steps,
            |b, &t| {
                let unit = ReferenceConvolutionUnit::new(LENET_GEOMETRY);
                b.iter(|| {
                    unit.run_layer(
                        black_box(&input),
                        black_box(&kernel),
                        black_box(&bias),
                        t,
                        1,
                        0,
                    )
                    .expect("reference conv unit run")
                });
            },
        );
    }
    group.bench_function("functional_reference", |b| {
        b.iter(|| {
            ops::conv2d(black_box(&input), black_box(&kernel), Some(&bias), 1, 0)
                .expect("reference conv")
        });
    });
    group.finish();
}

/// VGG-11 conv2 (64 -> 128 channels, 16x16 maps, 3x3 kernel, padding 1):
/// the whole layer versus the 4-row bands the tiling planner produces for
/// it under the paper-scale 8 KiB activation-buffer budget.  The banded
/// run includes the per-band input gather, i.e. it measures exactly the
/// work the tiled executor performs.
fn bench_tiled_conv(c: &mut Criterion) {
    let (ci, h, w, co, k, t) = (64usize, 16usize, 16usize, 128usize, 3usize, 4usize);
    let input = Tensor::from_vec(
        vec![ci, h, w],
        (0..ci * h * w).map(|v| ((v * 5) % 16) as i64).collect(),
    )
    .expect("input tensor");
    let kernel = Tensor::from_vec(
        vec![co, ci, k, k],
        (0..co * ci * k * k).map(|v| ((v % 7) as i64) - 3).collect(),
    )
    .expect("kernel tensor");
    let bias = Tensor::filled(vec![co], 0i64);
    let unit = ConvolutionUnit::new(ArrayGeometry {
        columns: 32,
        rows: 3,
    });
    let mut group = c.benchmark_group("conv_unit_tiled");
    group.bench_function("vgg_conv2_untiled", |b| {
        b.iter(|| {
            unit.run_layer(black_box(&input), black_box(&kernel), &bias, t, 1, 1)
                .expect("untiled run")
        });
    });
    group.bench_function("vgg_conv2_banded_4rows", |b| {
        b.iter(|| {
            let mut adder_ops = 0u64;
            for lo in (0..h).step_by(4) {
                let hi = (lo + 4).min(h);
                let band = RowBand {
                    out_lo: lo,
                    out_hi: hi,
                    in_lo: lo.saturating_sub(1),
                    in_hi: (hi + 1).min(h),
                };
                let mut data = Vec::with_capacity(ci * band.in_rows() * w);
                for ch in 0..ci {
                    data.extend_from_slice(
                        &input.as_slice()[ch * h * w + band.in_lo * w..ch * h * w + band.in_hi * w],
                    );
                }
                let band_input =
                    Tensor::from_vec(vec![ci, band.in_rows(), w], data).expect("band tensor");
                let result = unit
                    .run_layer_band(black_box(&band_input), &kernel, &bias, t, 1, 1, &band)
                    .expect("banded run");
                adder_ops += result.stats.adder_ops;
            }
            adder_ops
        });
    });
    group.finish();
}

/// The four word-level kernels the bit-plane engine dispatches through
/// `snn_tensor::simd`, each measured on its dispatched path (AVX2/SSE2 on
/// this host unless `SNN_SIMD` lowers it) and on the always-compiled
/// scalar oracle — so `BENCH_conv.json` records the simd-on vs simd-off
/// ratio per kernel, not just the end-to-end layer effect.
fn bench_simd_kernels(c: &mut Criterion) {
    const WORDS: usize = 1024; // one 65 536-pixel plane row
    let planes: Vec<Vec<u64>> = (0..4)
        .map(|p| {
            (0..WORDS as u64)
                .map(|i| {
                    let x = i
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(p * 0x5851_f42d_4c95_7f2d);
                    x & x >> 5 // ~25% density, typical post-conversion
                })
                .collect()
        })
        .collect();
    let levels: Vec<i64> = (0..WORDS * 64)
        .map(|i| ((i as u64).wrapping_mul(2654435761) % 16) as i64)
        .collect();
    let row: Vec<i64> = (0..4096).map(|i| ((i * 37) % 256) as i64 - 128).collect();
    let mask = bitplane::level_mask(4);

    let mut group = c.benchmark_group("simd_kernels");
    group.bench_function(
        &format!("occupancy_or/{}", simd::active_level().name()),
        |b| {
            let mut acc = vec![0u64; WORDS];
            b.iter(|| {
                acc.fill(0);
                for plane in &planes {
                    simd::or_accumulate(&mut acc, black_box(plane));
                }
                acc[0]
            });
        },
    );
    group.bench_function("occupancy_or/scalar", |b| {
        let mut acc = vec![0u64; WORDS];
        b.iter(|| {
            acc.fill(0);
            for plane in &planes {
                scalar::or_accumulate(&mut acc, black_box(plane));
            }
            acc[0]
        });
    });
    group.bench_function(&format!("popcount/{}", simd::active_level().name()), |b| {
        b.iter(|| simd::popcount(black_box(&planes[0])));
    });
    group.bench_function("popcount/scalar", |b| {
        b.iter(|| scalar::popcount(black_box(&planes[0])));
    });
    // The sparse gather has two scalar expansions rather than a vector
    // path: the dispatched per-bit walk and the byte-LUT batched variant
    // it is pinned against.  Benching both documents why the walk wins in
    // the sparse regime this path serves.
    group.bench_function("sparse_gather/bit_walk", |b| {
        let mut out = Vec::with_capacity(WORDS * 64);
        b.iter(|| {
            out.clear();
            simd::collect_set_bits(black_box(&planes[0]), 0, &mut out);
            out.len()
        });
    });
    group.bench_function("sparse_gather/byte_lut", |b| {
        let mut out = Vec::with_capacity(WORDS * 64);
        b.iter(|| {
            out.clear();
            scalar::collect_set_bits_batched(black_box(&planes[0]), 0, &mut out);
            out.len()
        });
    });
    group.bench_function(
        &format!("dense_gather/{}", simd::active_level().name()),
        |b| {
            let mut out = vec![0i64; row.len()];
            b.iter(|| {
                simd::axpy_i64(&mut out, black_box(&row), black_box(3));
                out[0]
            });
        },
    );
    group.bench_function("dense_gather/scalar", |b| {
        let mut out = vec![0i64; row.len()];
        b.iter(|| {
            scalar::axpy_i64(&mut out, black_box(&row), black_box(3));
            out[0]
        });
    });
    group.bench_function(
        &format!("pack_occupancy/{}", simd::active_level().name()),
        |b| {
            let mut out = vec![0u64; WORDS];
            b.iter(|| {
                out.fill(0);
                simd::pack_occupancy_row(black_box(&levels), black_box(mask), &mut out);
                out[0]
            });
        },
    );
    group.bench_function("pack_occupancy/scalar", |b| {
        let mut out = vec![0u64; WORDS];
        b.iter(|| {
            out.fill(0);
            scalar::pack_occupancy_row(black_box(&levels), black_box(mask), &mut out);
            out[0]
        });
    });
    group.finish();
}

fn bench_pool_unit(c: &mut Criterion) {
    let input = Tensor::from_vec(
        vec![6, 28, 28],
        (0..6 * 28 * 28).map(|v| (v % 16) as i64).collect(),
    )
    .expect("input tensor");
    let unit = PoolingUnit::new(ArrayGeometry {
        columns: 14,
        rows: 2,
    });
    c.bench_function("pool_unit/avg_2x2_6x28x28", |b| {
        b.iter(|| {
            unit.run_layer(black_box(&input), PoolKind::Average, 2, 4)
                .expect("pool unit run")
        });
    });
}

fn bench_linear_unit(c: &mut Criterion) {
    // LeNet-5 first fully-connected layer: 120 -> 120.
    let input = Tensor::from_vec(vec![120], (0..120).map(|v| (v % 16) as i64).collect())
        .expect("input tensor");
    let weight = Tensor::from_vec(
        vec![120, 120],
        (0..120 * 120).map(|v| ((v % 7) as i64) - 3).collect(),
    )
    .expect("weight tensor");
    let bias = Tensor::filled(vec![120], 0i64);
    let config = AcceleratorConfig::default();
    let unit = LinearUnit::new(config.linear_lanes);
    c.bench_function("linear_unit/120x120_T4", |b| {
        b.iter(|| {
            unit.run_layer(black_box(&input), black_box(&weight), black_box(&bias), 4)
                .expect("linear unit run")
        });
    });
}

criterion_group!(
    benches,
    bench_conv_unit,
    bench_tiled_conv,
    bench_simd_kernels,
    bench_pool_unit,
    bench_linear_unit
);

/// Runs the groups, then writes the `BENCH_conv.json` summary with the
/// sparse-vs-scalar speedup per spike-train length, the product-sparsity
/// ratio, and the per-kernel simd-vs-scalar speedups.
fn main() {
    let mut criterion = Criterion::default();
    benches(&mut criterion);
    criterion.final_summary();

    let mut speedups = String::new();
    let mut ps_ratios = String::new();
    let (ps_input, ps_kernel, ps_bias) = lenet_conv2_inputs();
    for t in [3usize, 6] {
        let sparse = criterion
            .result(&format!("conv_unit/bitplane_sparse/{t}"))
            .expect("sparse result");
        let scalar_ref = criterion
            .result(&format!("conv_unit/scalar_reference/{t}"))
            .expect("scalar result");
        let speedup = scalar_ref.median_ns / sparse.median_ns;
        // Product sparsity optimises the *modelled* adder activations (the
        // paper-facing quantity), not host wall-clock — record the adder-op
        // reduction it achieves on the same workload.  The wall-clock cost
        // of the prepass is visible in the `bitplane_sparse_ps` entries.
        let ps_ops =
            ConvolutionUnit::with_options(LENET_GEOMETRY, DEFAULT_DENSE_GATHER_THRESHOLD, true)
                .run_layer(&ps_input, &ps_kernel, &ps_bias, t, 1, 0)
                .expect("ps stats run")
                .stats
                .adder_ops;
        let plain_ops = ConvolutionUnit::new(LENET_GEOMETRY)
            .run_layer(&ps_input, &ps_kernel, &ps_bias, t, 1, 0)
            .expect("plain stats run")
            .stats
            .adder_ops;
        let ps_ratio = plain_ops as f64 / ps_ops as f64;
        println!("conv_unit T={t}: bitplane_sparse is {speedup:.2}x faster than scalar_reference");
        println!("conv_unit T={t}: product sparsity cuts modelled adder ops {ps_ratio:.2}x");
        if !speedups.is_empty() {
            speedups.push_str(", ");
            ps_ratios.push_str(", ");
        }
        speedups.push_str(&format!("\"T{t}\": {speedup:.3}"));
        ps_ratios.push_str(&format!("\"T{t}\": {ps_ratio:.3}"));
    }
    let untiled = criterion
        .result("conv_unit_tiled/vgg_conv2_untiled")
        .expect("untiled result");
    let banded = criterion
        .result("conv_unit_tiled/vgg_conv2_banded_4rows")
        .expect("banded result");
    let overhead = banded.median_ns / untiled.median_ns;
    println!("conv_unit_tiled: 8 KiB row-band execution costs {overhead:.3}x the untiled layer");

    // Per-kernel simd-on vs simd-off ratios: dispatched path over the
    // always-compiled fallback it is pinned against.
    let level = simd::active_level().name();
    let mut kernel_speedups = String::new();
    for (kernel, fast_id, slow_id) in [
        ("occupancy_or", level.to_string(), "scalar".to_string()),
        ("popcount", level.to_string(), "scalar".to_string()),
        (
            "sparse_gather",
            "bit_walk".to_string(),
            "byte_lut".to_string(),
        ),
        ("dense_gather", level.to_string(), "scalar".to_string()),
        ("pack_occupancy", level.to_string(), "scalar".to_string()),
    ] {
        let fast = criterion
            .result(&format!("simd_kernels/{kernel}/{fast_id}"))
            .expect("dispatched kernel result");
        let slow = criterion
            .result(&format!("simd_kernels/{kernel}/{slow_id}"))
            .expect("fallback kernel result");
        let ratio = slow.median_ns / fast.median_ns;
        println!("simd_kernels/{kernel}: {fast_id} is {ratio:.2}x the {slow_id} fallback");
        if !kernel_speedups.is_empty() {
            kernel_speedups.push_str(", ");
        }
        kernel_speedups.push_str(&format!("\"{kernel}\": {ratio:.3}"));
    }

    let json = format!(
        "{{\n\"workload\": \"lenet_conv2_6x14x14_to_16ch_5x5\",\n\
         \"simd_level\": \"{level}\",\n\
         \"speedup_sparse_vs_scalar\": {{{speedups}}},\n\
         \"product_sparsity_speedup_vs_plain\": {{{ps_ratios}}},\n\
         \"simd_kernel_speedup_vs_scalar\": {{{kernel_speedups}}},\n\
         \"tiling_overhead_vgg_conv2_8KiB\": {overhead:.3},\n\
         \"results\": {}\n}}\n",
        criterion.summary_json()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_conv.json");
    std::fs::write(path, &json).expect("write BENCH_conv.json");
    println!("wrote {path}");
}
