//! Criterion micro-benchmarks for the processing-unit simulators.
//!
//! These benches measure the *simulator's* throughput (host-side), which is
//! what matters when sweeping design points: the bit-plane sparse
//! convolution engine versus the retained counter-stepped scalar reference
//! and the functional integer reference, plus the pooling and linear units
//! on LeNet-5-shaped layers.
//!
//! Besides the usual console output, the harness writes a machine-readable
//! `BENCH_conv.json` summary to the workspace root with the
//! sparse-vs-scalar speedup on the LeNet conv2 workload and the row-band
//! tiling overhead on a VGG-11-shaped layer (the cost of running a layer
//! under the 8 KiB tiled activation-buffer budget instead of untiled), so
//! the perf trajectory of the hot path is tracked PR over PR.

use criterion::{criterion_group, BenchmarkId, Criterion};
use snn_accel::config::{AcceleratorConfig, ArrayGeometry};
use snn_accel::conv::ConvolutionUnit;
use snn_accel::linear::LinearUnit;
use snn_accel::memory::RowBand;
use snn_accel::pool::PoolingUnit;
use snn_accel::reference::ReferenceConvolutionUnit;
use snn_model::layer::PoolKind;
use snn_tensor::{ops, Tensor};
use std::hint::black_box;

fn lenet_conv2_inputs() -> (Tensor<i64>, Tensor<i64>, Tensor<i64>) {
    // LeNet-5 second convolution: 6 -> 16 channels, 5x5 kernel, 14x14 input.
    let input = Tensor::from_vec(
        vec![6, 14, 14],
        (0..6 * 14 * 14).map(|v| (v % 8) as i64).collect(),
    )
    .expect("input tensor");
    let kernel = Tensor::from_vec(
        vec![16, 6, 5, 5],
        (0..16 * 6 * 25).map(|v| ((v % 7) as i64) - 3).collect(),
    )
    .expect("kernel tensor");
    let bias = Tensor::filled(vec![16], 0i64);
    (input, kernel, bias)
}

const LENET_GEOMETRY: ArrayGeometry = ArrayGeometry {
    columns: 30,
    rows: 5,
};

fn bench_conv_unit(c: &mut Criterion) {
    let (input, kernel, bias) = lenet_conv2_inputs();
    let mut group = c.benchmark_group("conv_unit");
    for &time_steps in &[3usize, 6] {
        group.bench_with_input(
            BenchmarkId::new("bitplane_sparse", time_steps),
            &time_steps,
            |b, &t| {
                let unit = ConvolutionUnit::new(LENET_GEOMETRY);
                b.iter(|| {
                    unit.run_layer(
                        black_box(&input),
                        black_box(&kernel),
                        black_box(&bias),
                        t,
                        1,
                        0,
                    )
                    .expect("conv unit run")
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("scalar_reference", time_steps),
            &time_steps,
            |b, &t| {
                let unit = ReferenceConvolutionUnit::new(LENET_GEOMETRY);
                b.iter(|| {
                    unit.run_layer(
                        black_box(&input),
                        black_box(&kernel),
                        black_box(&bias),
                        t,
                        1,
                        0,
                    )
                    .expect("reference conv unit run")
                });
            },
        );
    }
    group.bench_function("functional_reference", |b| {
        b.iter(|| {
            ops::conv2d(black_box(&input), black_box(&kernel), Some(&bias), 1, 0)
                .expect("reference conv")
        });
    });
    group.finish();
}

/// VGG-11 conv2 (64 -> 128 channels, 16x16 maps, 3x3 kernel, padding 1):
/// the whole layer versus the 4-row bands the tiling planner produces for
/// it under the paper-scale 8 KiB activation-buffer budget.  The banded
/// run includes the per-band input gather, i.e. it measures exactly the
/// work the tiled executor performs.
fn bench_tiled_conv(c: &mut Criterion) {
    let (ci, h, w, co, k, t) = (64usize, 16usize, 16usize, 128usize, 3usize, 4usize);
    let input = Tensor::from_vec(
        vec![ci, h, w],
        (0..ci * h * w).map(|v| ((v * 5) % 16) as i64).collect(),
    )
    .expect("input tensor");
    let kernel = Tensor::from_vec(
        vec![co, ci, k, k],
        (0..co * ci * k * k).map(|v| ((v % 7) as i64) - 3).collect(),
    )
    .expect("kernel tensor");
    let bias = Tensor::filled(vec![co], 0i64);
    let unit = ConvolutionUnit::new(ArrayGeometry {
        columns: 32,
        rows: 3,
    });
    let mut group = c.benchmark_group("conv_unit_tiled");
    group.bench_function("vgg_conv2_untiled", |b| {
        b.iter(|| {
            unit.run_layer(black_box(&input), black_box(&kernel), &bias, t, 1, 1)
                .expect("untiled run")
        });
    });
    group.bench_function("vgg_conv2_banded_4rows", |b| {
        b.iter(|| {
            let mut adder_ops = 0u64;
            for lo in (0..h).step_by(4) {
                let hi = (lo + 4).min(h);
                let band = RowBand {
                    out_lo: lo,
                    out_hi: hi,
                    in_lo: lo.saturating_sub(1),
                    in_hi: (hi + 1).min(h),
                };
                let mut data = Vec::with_capacity(ci * band.in_rows() * w);
                for ch in 0..ci {
                    data.extend_from_slice(
                        &input.as_slice()[ch * h * w + band.in_lo * w..ch * h * w + band.in_hi * w],
                    );
                }
                let band_input =
                    Tensor::from_vec(vec![ci, band.in_rows(), w], data).expect("band tensor");
                let result = unit
                    .run_layer_band(black_box(&band_input), &kernel, &bias, t, 1, 1, &band)
                    .expect("banded run");
                adder_ops += result.stats.adder_ops;
            }
            adder_ops
        });
    });
    group.finish();
}

fn bench_pool_unit(c: &mut Criterion) {
    let input = Tensor::from_vec(
        vec![6, 28, 28],
        (0..6 * 28 * 28).map(|v| (v % 16) as i64).collect(),
    )
    .expect("input tensor");
    let unit = PoolingUnit::new(ArrayGeometry {
        columns: 14,
        rows: 2,
    });
    c.bench_function("pool_unit/avg_2x2_6x28x28", |b| {
        b.iter(|| {
            unit.run_layer(black_box(&input), PoolKind::Average, 2, 4)
                .expect("pool unit run")
        });
    });
}

fn bench_linear_unit(c: &mut Criterion) {
    // LeNet-5 first fully-connected layer: 120 -> 120.
    let input = Tensor::from_vec(vec![120], (0..120).map(|v| (v % 16) as i64).collect())
        .expect("input tensor");
    let weight = Tensor::from_vec(
        vec![120, 120],
        (0..120 * 120).map(|v| ((v % 7) as i64) - 3).collect(),
    )
    .expect("weight tensor");
    let bias = Tensor::filled(vec![120], 0i64);
    let config = AcceleratorConfig::default();
    let unit = LinearUnit::new(config.linear_lanes);
    c.bench_function("linear_unit/120x120_T4", |b| {
        b.iter(|| {
            unit.run_layer(black_box(&input), black_box(&weight), black_box(&bias), 4)
                .expect("linear unit run")
        });
    });
}

criterion_group!(
    benches,
    bench_conv_unit,
    bench_tiled_conv,
    bench_pool_unit,
    bench_linear_unit
);

/// Runs the groups, then writes the `BENCH_conv.json` summary with the
/// sparse-vs-scalar speedup per spike-train length.
fn main() {
    let mut criterion = Criterion::default();
    benches(&mut criterion);
    criterion.final_summary();

    let mut speedups = String::new();
    for t in [3usize, 6] {
        let sparse = criterion
            .result(&format!("conv_unit/bitplane_sparse/{t}"))
            .expect("sparse result");
        let scalar = criterion
            .result(&format!("conv_unit/scalar_reference/{t}"))
            .expect("scalar result");
        let speedup = scalar.median_ns / sparse.median_ns;
        println!("conv_unit T={t}: bitplane_sparse is {speedup:.2}x faster than scalar_reference");
        if !speedups.is_empty() {
            speedups.push_str(", ");
        }
        speedups.push_str(&format!("\"T{t}\": {speedup:.3}"));
    }
    let untiled = criterion
        .result("conv_unit_tiled/vgg_conv2_untiled")
        .expect("untiled result");
    let banded = criterion
        .result("conv_unit_tiled/vgg_conv2_banded_4rows")
        .expect("banded result");
    let overhead = banded.median_ns / untiled.median_ns;
    println!("conv_unit_tiled: 8 KiB row-band execution costs {overhead:.3}x the untiled layer");
    let json = format!(
        "{{\n\"workload\": \"lenet_conv2_6x14x14_to_16ch_5x5\",\n\
         \"speedup_sparse_vs_scalar\": {{{speedups}}},\n\
         \"tiling_overhead_vgg_conv2_8KiB\": {overhead:.3},\n\
         \"results\": {}\n}}\n",
        criterion.summary_json()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_conv.json");
    std::fs::write(path, &json).expect("write BENCH_conv.json");
    println!("wrote {path}");
}
