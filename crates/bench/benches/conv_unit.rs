//! Criterion micro-benchmarks for the processing-unit simulators.
//!
//! These benches measure the *simulator's* throughput (host-side), which is
//! what matters when sweeping design points: the cycle-accurate convolution
//! unit versus the functional integer reference, the pooling unit and the
//! linear unit on LeNet-5-shaped layers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snn_accel::config::{AcceleratorConfig, ArrayGeometry};
use snn_accel::conv::ConvolutionUnit;
use snn_accel::linear::LinearUnit;
use snn_accel::pool::PoolingUnit;
use snn_model::layer::PoolKind;
use snn_tensor::{ops, Tensor};
use std::hint::black_box;

fn lenet_conv2_inputs() -> (Tensor<i64>, Tensor<i64>, Tensor<i64>) {
    // LeNet-5 second convolution: 6 -> 16 channels, 5x5 kernel, 14x14 input.
    let input = Tensor::from_vec(
        vec![6, 14, 14],
        (0..6 * 14 * 14).map(|v| (v % 8) as i64).collect(),
    )
    .expect("input tensor");
    let kernel = Tensor::from_vec(
        vec![16, 6, 5, 5],
        (0..16 * 6 * 25).map(|v| ((v % 7) as i64) - 3).collect(),
    )
    .expect("kernel tensor");
    let bias = Tensor::filled(vec![16], 0i64);
    (input, kernel, bias)
}

fn bench_conv_unit(c: &mut Criterion) {
    let (input, kernel, bias) = lenet_conv2_inputs();
    let mut group = c.benchmark_group("conv_unit");
    for &time_steps in &[3usize, 6] {
        group.bench_with_input(
            BenchmarkId::new("cycle_accurate", time_steps),
            &time_steps,
            |b, &t| {
                let unit = ConvolutionUnit::new(ArrayGeometry {
                    columns: 30,
                    rows: 5,
                });
                b.iter(|| {
                    unit.run_layer(
                        black_box(&input),
                        black_box(&kernel),
                        black_box(&bias),
                        t,
                        1,
                        0,
                    )
                    .expect("conv unit run")
                });
            },
        );
    }
    group.bench_function("functional_reference", |b| {
        b.iter(|| {
            ops::conv2d(black_box(&input), black_box(&kernel), Some(&bias), 1, 0)
                .expect("reference conv")
        });
    });
    group.finish();
}

fn bench_pool_unit(c: &mut Criterion) {
    let input = Tensor::from_vec(
        vec![6, 28, 28],
        (0..6 * 28 * 28).map(|v| (v % 16) as i64).collect(),
    )
    .expect("input tensor");
    let unit = PoolingUnit::new(ArrayGeometry {
        columns: 14,
        rows: 2,
    });
    c.bench_function("pool_unit/avg_2x2_6x28x28", |b| {
        b.iter(|| {
            unit.run_layer(black_box(&input), PoolKind::Average, 2, 4)
                .expect("pool unit run")
        });
    });
}

fn bench_linear_unit(c: &mut Criterion) {
    // LeNet-5 first fully-connected layer: 120 -> 120.
    let input = Tensor::from_vec(vec![120], (0..120).map(|v| (v % 16) as i64).collect())
        .expect("input tensor");
    let weight = Tensor::from_vec(
        vec![120, 120],
        (0..120 * 120).map(|v| ((v % 7) as i64) - 3).collect(),
    )
    .expect("weight tensor");
    let bias = Tensor::filled(vec![120], 0i64);
    let config = AcceleratorConfig::default();
    let unit = LinearUnit::new(config.linear_lanes);
    c.bench_function("linear_unit/120x120_T4", |b| {
        b.iter(|| {
            unit.run_layer(black_box(&input), black_box(&weight), black_box(&bias), 4)
                .expect("linear unit run")
        });
    });
}

criterion_group!(benches, bench_conv_unit, bench_pool_unit, bench_linear_unit);
criterion_main!(benches);
