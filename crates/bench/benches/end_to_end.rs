//! End-to-end Criterion benchmarks: full inference of converted SNN models
//! on the accelerator simulator, in both cycle-accurate and
//! transaction-level modes, plus the analytical design-space evaluation
//! used for Tables II and III.
//!
//! Besides the criterion groups, the harness runs a **serving scenario**:
//! a batch of LeNet-5 inferences served through the streaming
//! micro-batching server versus naive sequential `run_fast` per-input
//! calls (compile + functional execution per call — what a client without
//! the server would do).  The measured inferences/sec, speedup, thread
//! budget and modelled per-unit utilisation are written to
//! `BENCH_serve.json` at the workspace root so the serving-throughput
//! trajectory is tracked PR over PR alongside `BENCH_conv.json`.

use criterion::{criterion_group, Criterion};
use snn_accel::config::AcceleratorConfig;
use snn_accel::cost;
use snn_accel::serve::{ServerOptions, StreamServer};
use snn_accel::sim::Accelerator;
use snn_accel::timing::network_timing;
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::snn::SnnModel;
use snn_model::zoo;
use snn_tensor::Tensor;
use std::hint::black_box;
use std::time::Instant;

fn tiny_model() -> (SnnModel, Tensor<f32>) {
    let net = zoo::tiny_cnn();
    let params = Parameters::he_init(&net, 7).expect("parameters");
    let input = Tensor::from_vec(
        vec![1, 12, 12],
        (0..144).map(|i| (i % 97) as f32 / 96.0).collect(),
    )
    .expect("input");
    let stats = CalibrationStats::collect(&net, &params, [&input]).expect("calibration");
    let model = convert(&net, &params, &stats, ConversionConfig::default()).expect("conversion");
    (model, input)
}

fn lenet_model() -> (SnnModel, Tensor<f32>) {
    let net = zoo::lenet5();
    let params = Parameters::he_init(&net, 7).expect("parameters");
    let input = Tensor::from_vec(
        vec![1, 32, 32],
        (0..1024).map(|i| (i % 97) as f32 / 96.0).collect(),
    )
    .expect("input");
    let stats = CalibrationStats::collect(&net, &params, [&input]).expect("calibration");
    let model = convert(
        &net,
        &params,
        &stats,
        ConversionConfig {
            weight_bits: 3,
            time_steps: 4,
        },
    )
    .expect("conversion");
    (model, input)
}

fn bench_inference(c: &mut Criterion) {
    let (tiny, tiny_input) = tiny_model();
    let (lenet, lenet_input) = lenet_model();
    let accel = Accelerator::new(AcceleratorConfig::lenet_table3());

    c.bench_function("inference/tiny_cnn_cycle_accurate", |b| {
        b.iter(|| {
            accel
                .run(black_box(&tiny), black_box(&tiny_input))
                .expect("run")
        });
    });
    c.bench_function("inference/tiny_cnn_transaction", |b| {
        b.iter(|| {
            accel
                .run_fast(black_box(&tiny), black_box(&tiny_input))
                .expect("run_fast")
        });
    });
    c.bench_function("inference/lenet5_transaction", |b| {
        b.iter(|| {
            accel
                .run_fast(black_box(&lenet), black_box(&lenet_input))
                .expect("run_fast")
        });
    });
}

fn bench_design_space(c: &mut Criterion) {
    // The Table II / Table III style evaluation: analytical timing and cost
    // models over the paper's networks.
    c.bench_function("design_space/lenet5_unit_sweep", |b| {
        let net = zoo::lenet5();
        b.iter(|| {
            for units in [1usize, 2, 4, 8] {
                let cfg = AcceleratorConfig::lenet_experiment(units);
                let timing = network_timing(&cfg, &net, 3).expect("timing");
                let res = cost::estimate_resources(&cfg, &net, 3);
                black_box((timing.total_cycles(), res.luts));
            }
        });
    });
    c.bench_function("design_space/vgg11_timing", |b| {
        let net = zoo::vgg11(100);
        let cfg = AcceleratorConfig::vgg11_table3();
        b.iter(|| network_timing(black_box(&cfg), black_box(&net), 6).expect("timing"));
    });
}

/// Measures the serving scenario and returns the `BENCH_serve.json` body.
///
/// Baseline: naive sequential `run_fast` per-input calls (per-call compile,
/// functional transaction-level execution).  Contender: the streaming
/// server, which compiles once and micro-batches submissions onto the
/// pipelined bit-plane sparse engine — bit-identical logits (pinned by the
/// `exec_properties` suite), exact unit work counts, and higher throughput.
fn serving_scenario() -> String {
    const BATCH: usize = 32;
    const MICRO_BATCH: usize = 8;
    const ROUNDS: usize = 3;

    let (model, base_input) = lenet_model();
    let config = AcceleratorConfig::lenet_table3();
    let volume = base_input.len();
    let inputs: Vec<Tensor<f32>> = (0..BATCH)
        .map(|b| {
            let values: Vec<f32> = (0..volume)
                .map(|j| (((j * 13 + b * 101) % 97) as f32) / 96.0)
                .collect();
            Tensor::from_vec(vec![1, 32, 32], values).expect("serve input")
        })
        .collect();

    // Naive baseline: one `run_fast` call per input, best of ROUNDS.
    let accel = Accelerator::new(config);
    accel.run_fast(&model, &inputs[0]).expect("warmup");
    let mut naive_best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        for input in &inputs {
            black_box(accel.run_fast(&model, input).expect("naive run_fast"));
        }
        naive_best = naive_best.min(start.elapsed().as_secs_f64());
    }
    let naive_ips = BATCH as f64 / naive_best;

    // Streaming server: compile once, micro-batch onto the sparse engine.
    let server = StreamServer::start_with(
        config,
        model,
        ServerOptions {
            max_batch: MICRO_BATCH,
            ..ServerOptions::default()
        },
    )
    .expect("start server");
    server.run_all(&inputs[..2]).expect("server warmup");
    let mut serve_best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        black_box(server.run_all(&inputs).expect("served batch"));
        serve_best = serve_best.min(start.elapsed().as_secs_f64());
    }
    let serve_ips = BATCH as f64 / serve_best;
    let stats = server.shutdown();
    let speedup = serve_ips / naive_ips;
    println!(
        "serve: naive {naive_ips:.1} inf/s, stream server {serve_ips:.1} inf/s ({speedup:.2}x, \
         thread budget {})",
        stats.thread_budget
    );

    let utilisation: Vec<String> = stats
        .utilisation
        .iter()
        .map(|u| {
            format!(
                "\"{:?}\": {{\"units\": {}, \"busy_cycles\": {}, \"total_cycles\": {}, \
                 \"utilisation\": {:.4}}}",
                u.kind,
                u.units,
                u.busy_cycles,
                u.total_cycles,
                u.utilisation()
            )
        })
        .collect();
    format!(
        "\"workload\": \"lenet5_T4_batch{BATCH}\",\n\
         \"batch\": {BATCH},\n\
         \"micro_batch\": {MICRO_BATCH},\n\
         \"thread_budget\": {},\n\
         \"inferences_per_sec\": {{\"naive_run_fast\": {naive_ips:.2}, \
         \"stream_server\": {serve_ips:.2}}},\n\
         \"speedup_server_vs_naive\": {speedup:.3},\n\
         \"unit_utilisation\": {{{}}}",
        stats.thread_budget,
        utilisation.join(", ")
    )
}

criterion_group!(benches, bench_inference, bench_design_space);

/// Runs the criterion groups, then the serving scenario, and writes the
/// `BENCH_serve.json` summary.
fn main() {
    let mut criterion = Criterion::default();
    benches(&mut criterion);
    criterion.final_summary();

    let serve = serving_scenario();
    let json = format!(
        "{{\n{serve},\n\"results\": {}\n}}\n",
        criterion.summary_json()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
