//! End-to-end Criterion benchmarks: full inference of converted SNN models
//! on the accelerator simulator, in both cycle-accurate and
//! transaction-level modes, plus the analytical design-space evaluation
//! used for Tables II and III.
//!
//! Besides the criterion groups, the harness runs the **serving sweep**
//! from [`snn_bench::serve_sweep`]: a batch of LeNet-5 inferences served
//! through the streaming micro-batching server at 1, 2 and 4 replica
//! engines versus naive sequential `run_fast` per-input calls (compile +
//! functional execution per call — what a client without the server would
//! do).  The measured inferences/sec, replica scaling, speedup, thread
//! budget and modelled per-unit utilisation are written to
//! `BENCH_serve.json` at the workspace root so the serving-throughput
//! trajectory is tracked PR over PR alongside `BENCH_conv.json`.

use criterion::{criterion_group, Criterion};
use snn_accel::config::AcceleratorConfig;
use snn_accel::cost;
use snn_accel::sim::Accelerator;
use snn_accel::timing::network_timing;
use snn_bench::serve_sweep;
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::snn::SnnModel;
use snn_model::zoo;
use snn_tensor::Tensor;
use std::hint::black_box;

fn tiny_model() -> (SnnModel, Tensor<f32>) {
    let net = zoo::tiny_cnn();
    let params = Parameters::he_init(&net, 7).expect("parameters");
    let input = Tensor::from_vec(
        vec![1, 12, 12],
        (0..144).map(|i| (i % 97) as f32 / 96.0).collect(),
    )
    .expect("input");
    let stats = CalibrationStats::collect(&net, &params, [&input]).expect("calibration");
    let model = convert(&net, &params, &stats, ConversionConfig::default()).expect("conversion");
    (model, input)
}

fn lenet_model() -> (SnnModel, Tensor<f32>) {
    let net = zoo::lenet5();
    let params = Parameters::he_init(&net, 7).expect("parameters");
    let input = Tensor::from_vec(
        vec![1, 32, 32],
        (0..1024).map(|i| (i % 97) as f32 / 96.0).collect(),
    )
    .expect("input");
    let stats = CalibrationStats::collect(&net, &params, [&input]).expect("calibration");
    let model = convert(
        &net,
        &params,
        &stats,
        ConversionConfig {
            weight_bits: 3,
            time_steps: 4,
        },
    )
    .expect("conversion");
    (model, input)
}

fn bench_inference(c: &mut Criterion) {
    let (tiny, tiny_input) = tiny_model();
    let (lenet, lenet_input) = lenet_model();
    let accel = Accelerator::new(AcceleratorConfig::lenet_table3());

    c.bench_function("inference/tiny_cnn_cycle_accurate", |b| {
        b.iter(|| {
            accel
                .run(black_box(&tiny), black_box(&tiny_input))
                .expect("run")
        });
    });
    c.bench_function("inference/tiny_cnn_transaction", |b| {
        b.iter(|| {
            accel
                .run_fast(black_box(&tiny), black_box(&tiny_input))
                .expect("run_fast")
        });
    });
    c.bench_function("inference/lenet5_transaction", |b| {
        b.iter(|| {
            accel
                .run_fast(black_box(&lenet), black_box(&lenet_input))
                .expect("run_fast")
        });
    });
}

fn bench_design_space(c: &mut Criterion) {
    // The Table II / Table III style evaluation: analytical timing and cost
    // models over the paper's networks.
    c.bench_function("design_space/lenet5_unit_sweep", |b| {
        let net = zoo::lenet5();
        b.iter(|| {
            for units in [1usize, 2, 4, 8] {
                let cfg = AcceleratorConfig::lenet_experiment(units);
                let timing = network_timing(&cfg, &net, 3).expect("timing");
                let res = cost::estimate_resources(&cfg, &net, 3);
                black_box((timing.total_cycles(), res.luts));
            }
        });
    });
    c.bench_function("design_space/vgg11_timing", |b| {
        let net = zoo::vgg11(100);
        let cfg = AcceleratorConfig::vgg11_table3();
        b.iter(|| network_timing(black_box(&cfg), black_box(&net), 6).expect("timing"));
    });
}

criterion_group!(benches, bench_inference, bench_design_space);

/// Runs the criterion groups, then the replica-sweep serving scenario,
/// and writes the `BENCH_serve.json` summary.
fn main() {
    let mut criterion = Criterion::default();
    benches(&mut criterion);
    criterion.final_summary();

    let serve = serve_sweep::sweep_body();
    let json = format!(
        "{{\n{serve},\n\"results\": {}\n}}\n",
        criterion.summary_json()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
