//! Criterion benchmarks of the neural-encoding schemes: radix versus rate
//! encoding of a full feature map, and the level-domain round trip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snn_encoding::{radix::RadixEncoder, rate::RateEncoder, Encoder};
use snn_tensor::Tensor;
use std::hint::black_box;

fn feature_map() -> Tensor<f32> {
    // A 6x28x28 feature map with a smooth ramp of activations.
    let n = 6 * 28 * 28;
    Tensor::from_vec(
        vec![6, 28, 28],
        (0..n).map(|i| (i % 101) as f32 / 100.0).collect(),
    )
    .expect("feature map")
}

fn bench_encode_tensor(c: &mut Criterion) {
    let fm = feature_map();
    let mut group = c.benchmark_group("encode_feature_map");
    for &t in &[3usize, 6] {
        group.bench_with_input(BenchmarkId::new("radix", t), &t, |b, &t| {
            let enc = RadixEncoder::new(t).expect("radix encoder");
            b.iter(|| enc.encode_tensor(black_box(&fm)));
        });
        // Rate encoding at the *same resolution* needs 2^t - 1 steps.
        let rate_steps = (1usize << t) - 1;
        group.bench_with_input(
            BenchmarkId::new("rate_equivalent_resolution", rate_steps),
            &rate_steps,
            |b, &steps| {
                let enc = RateEncoder::new(steps).expect("rate encoder");
                b.iter(|| enc.encode_tensor(black_box(&fm)));
            },
        );
    }
    group.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let fm = feature_map();
    let enc = RadixEncoder::new(6).expect("radix encoder");
    c.bench_function("radix_encode_decode_roundtrip_T6", |b| {
        b.iter(|| {
            let raster = enc.encode_tensor(black_box(&fm));
            enc.decode_tensor(&raster)
        });
    });
}

criterion_group!(benches, bench_encode_tensor, bench_roundtrip);
criterion_main!(benches);
