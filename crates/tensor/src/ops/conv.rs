use super::Numeric;
use crate::{Result, Tensor, TensorError};

/// Computes the spatial output dimensions of a 2-D convolution.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] when `stride` is zero or the
/// kernel (plus padding) does not fit into the input.
pub fn conv2d_output_dims(
    input_hw: (usize, usize),
    kernel_hw: (usize, usize),
    stride: usize,
    padding: usize,
) -> Result<(usize, usize)> {
    if stride == 0 {
        return Err(TensorError::InvalidParameter {
            context: "stride must be non-zero".to_string(),
        });
    }
    let (h, w) = input_hw;
    let (kh, kw) = kernel_hw;
    let padded_h = h + 2 * padding;
    let padded_w = w + 2 * padding;
    if kh == 0 || kw == 0 || kh > padded_h || kw > padded_w {
        return Err(TensorError::InvalidParameter {
            context: format!(
                "kernel {kh}x{kw} does not fit into padded input {padded_h}x{padded_w}"
            ),
        });
    }
    Ok(((padded_h - kh) / stride + 1, (padded_w - kw) / stride + 1))
}

/// Reference 2-D convolution (actually cross-correlation, as in all deep
/// learning frameworks).
///
/// * `input`: `[C, H, W]`
/// * `kernel`: `[O, C, Kh, Kw]`
/// * `bias`: optional `[O]`
///
/// Returns a `[O, H_out, W_out]` tensor.
///
/// # Errors
///
/// Returns an error when the ranks or channel counts do not match, or when
/// the convolution hyper-parameters are invalid.
///
/// # Example
///
/// ```
/// use snn_tensor::{Tensor, ops::conv2d};
///
/// let input = Tensor::filled(vec![1, 3, 3], 1.0f32);
/// let kernel = Tensor::filled(vec![2, 1, 2, 2], 1.0f32);
/// let out = conv2d(&input, &kernel, None, 1, 0)?;
/// assert_eq!(out.shape().dims(), &[2, 2, 2]);
/// assert!(out.iter().all(|&v| (v - 4.0).abs() < 1e-6));
/// # Ok::<(), snn_tensor::TensorError>(())
/// ```
pub fn conv2d<T: Numeric>(
    input: &Tensor<T>,
    kernel: &Tensor<T>,
    bias: Option<&Tensor<T>>,
    stride: usize,
    padding: usize,
) -> Result<Tensor<T>> {
    if input.shape().rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input.shape().rank(),
        });
    }
    if kernel.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: kernel.shape().rank(),
        });
    }
    let in_dims = input.shape().dims();
    let k_dims = kernel.shape().dims();
    let (c_in, h, w) = (in_dims[0], in_dims[1], in_dims[2]);
    let (c_out, kc, kh, kw) = (k_dims[0], k_dims[1], k_dims[2], k_dims[3]);
    if kc != c_in {
        return Err(TensorError::ShapeMismatch {
            context: format!("kernel expects {kc} input channels, feature map has {c_in}"),
        });
    }
    if let Some(b) = bias {
        if b.shape().dims() != [c_out] {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "bias shape {:?} does not match {c_out} output channels",
                    b.shape().dims()
                ),
            });
        }
    }
    let (h_out, w_out) = conv2d_output_dims((h, w), (kh, kw), stride, padding)?;

    let mut output = Tensor::filled(vec![c_out, h_out, w_out], T::zero());
    let in_data = input.as_slice();
    let k_data = kernel.as_slice();
    let out_data = output.as_mut_slice();

    for oc in 0..c_out {
        let bias_val = bias.map(|b| b.as_slice()[oc]).unwrap_or_else(T::zero);
        for oy in 0..h_out {
            for ox in 0..w_out {
                let mut acc = bias_val;
                for ic in 0..c_in {
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let in_v = in_data[ic * h * w + iy as usize * w + ix as usize];
                            let k_v = k_data[oc * c_in * kh * kw + ic * kh * kw + ky * kw + kx];
                            acc = acc + in_v * k_v;
                        }
                    }
                }
                out_data[oc * h_out * w_out + oy * w_out + ox] = acc;
            }
        }
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dims_basic() {
        assert_eq!(
            conv2d_output_dims((32, 32), (5, 5), 1, 0).unwrap(),
            (28, 28)
        );
        assert_eq!(
            conv2d_output_dims((28, 28), (3, 3), 1, 1).unwrap(),
            (28, 28)
        );
        assert_eq!(conv2d_output_dims((8, 8), (2, 2), 2, 0).unwrap(), (4, 4));
    }

    #[test]
    fn output_dims_rejects_zero_stride() {
        assert!(conv2d_output_dims((8, 8), (3, 3), 0, 0).is_err());
    }

    #[test]
    fn output_dims_rejects_oversized_kernel() {
        assert!(conv2d_output_dims((2, 2), (3, 3), 1, 0).is_err());
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // A single 1x1 kernel with weight 1 is the identity map.
        let input = Tensor::from_vec(vec![1, 2, 2], vec![1.0f32, 2.0, 3.0, 4.0]).unwrap();
        let kernel = Tensor::from_vec(vec![1, 1, 1, 1], vec![1.0f32]).unwrap();
        let out = conv2d(&input, &kernel, None, 1, 0).unwrap();
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn known_3x3_convolution() {
        // Input 1x3x3 with values 1..9, kernel of ones, valid conv -> sum = 45.
        let input = Tensor::from_vec(vec![1, 3, 3], (1..=9).collect::<Vec<i32>>()).unwrap();
        let kernel = Tensor::filled(vec![1, 1, 3, 3], 1i32);
        let out = conv2d(&input, &kernel, None, 1, 0).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 1]);
        assert_eq!(out.as_slice(), &[45]);
    }

    #[test]
    fn stride_two_subsamples() {
        let input = Tensor::from_vec(vec![1, 4, 4], (0..16).collect::<Vec<i32>>()).unwrap();
        let kernel = Tensor::from_vec(vec![1, 1, 1, 1], vec![1i32]).unwrap();
        let out = conv2d(&input, &kernel, None, 2, 0).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 2]);
        assert_eq!(out.as_slice(), &[0, 2, 8, 10]);
    }

    #[test]
    fn padding_adds_zero_border() {
        let input = Tensor::filled(vec![1, 2, 2], 1i32);
        let kernel = Tensor::filled(vec![1, 1, 3, 3], 1i32);
        let out = conv2d(&input, &kernel, None, 1, 1).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 2]);
        // Each output sees exactly the four ones of the input.
        assert_eq!(out.as_slice(), &[4, 4, 4, 4]);
    }

    #[test]
    fn bias_is_added_per_output_channel() {
        let input = Tensor::filled(vec![1, 2, 2], 1i32);
        let kernel = Tensor::filled(vec![2, 1, 2, 2], 1i32);
        let bias = Tensor::from_vec(vec![2], vec![10i32, -10]).unwrap();
        let out = conv2d(&input, &kernel, Some(&bias), 1, 0).unwrap();
        assert_eq!(out.as_slice(), &[14, -6]);
    }

    #[test]
    fn multi_channel_accumulates_over_input_channels() {
        let input = Tensor::from_vec(vec![2, 2, 2], vec![1i32, 1, 1, 1, 2, 2, 2, 2]).unwrap();
        let kernel = Tensor::filled(vec![1, 2, 2, 2], 1i32);
        let out = conv2d(&input, &kernel, None, 1, 0).unwrap();
        assert_eq!(out.as_slice(), &[4 + 8]);
    }

    #[test]
    fn channel_mismatch_is_error() {
        let input = Tensor::filled(vec![2, 4, 4], 1.0f32);
        let kernel = Tensor::filled(vec![1, 3, 3, 3], 1.0f32);
        assert!(matches!(
            conv2d(&input, &kernel, None, 1, 0),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn wrong_rank_is_error() {
        let input = Tensor::filled(vec![4, 4], 1.0f32);
        let kernel = Tensor::filled(vec![1, 1, 3, 3], 1.0f32);
        assert!(matches!(
            conv2d(&input, &kernel, None, 1, 0),
            Err(TensorError::RankMismatch { .. })
        ));
    }
}
