use super::Numeric;
use crate::{Result, Tensor, TensorError};

/// Fully-connected layer: `output[o] = bias[o] + Σ_n weight[o, n] * input[n]`.
///
/// * `input`: `[N]`
/// * `weight`: `[O, N]`
/// * `bias`: optional `[O]`
///
/// # Errors
///
/// Returns an error when ranks or dimensions do not match.
///
/// # Example
///
/// ```
/// use snn_tensor::{Tensor, ops::linear};
///
/// let input = Tensor::from_vec(vec![3], vec![1.0f32, 2.0, 3.0])?;
/// let weight = Tensor::from_vec(vec![2, 3], vec![1.0f32, 0.0, 0.0, 0.0, 0.0, 1.0])?;
/// let out = linear(&input, &weight, None)?;
/// assert_eq!(out.as_slice(), &[1.0, 3.0]);
/// # Ok::<(), snn_tensor::TensorError>(())
/// ```
pub fn linear<T: Numeric>(
    input: &Tensor<T>,
    weight: &Tensor<T>,
    bias: Option<&Tensor<T>>,
) -> Result<Tensor<T>> {
    if input.shape().rank() != 1 {
        return Err(TensorError::RankMismatch {
            expected: 1,
            actual: input.shape().rank(),
        });
    }
    if weight.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: weight.shape().rank(),
        });
    }
    let n = input.shape().dims()[0];
    let (o, wn) = (weight.shape().dims()[0], weight.shape().dims()[1]);
    if wn != n {
        return Err(TensorError::ShapeMismatch {
            context: format!("weight expects {wn} inputs, got {n}"),
        });
    }
    if let Some(b) = bias {
        if b.shape().dims() != [o] {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "bias shape {:?} does not match {o} outputs",
                    b.shape().dims()
                ),
            });
        }
    }

    let in_data = input.as_slice();
    let w_data = weight.as_slice();
    let mut out = Vec::with_capacity(o);
    for oi in 0..o {
        let mut acc = bias.map(|b| b.as_slice()[oi]).unwrap_or_else(T::zero);
        let row = &w_data[oi * n..(oi + 1) * n];
        for (w, x) in row.iter().zip(in_data.iter()) {
            acc = acc + *w * *x;
        }
        out.push(acc);
    }
    Tensor::from_vec(vec![o], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_weight_matrix() {
        let input = Tensor::from_vec(vec![3], vec![5i32, -2, 7]).unwrap();
        let weight = Tensor::from_vec(vec![3, 3], vec![1, 0, 0, 0, 1, 0, 0, 0, 1]).unwrap();
        let out = linear(&input, &weight, None).unwrap();
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn bias_offsets_each_output() {
        let input = Tensor::from_vec(vec![2], vec![1i32, 1]).unwrap();
        let weight = Tensor::from_vec(vec![2, 2], vec![1, 1, 2, 2]).unwrap();
        let bias = Tensor::from_vec(vec![2], vec![100, -100]).unwrap();
        let out = linear(&input, &weight, Some(&bias)).unwrap();
        assert_eq!(out.as_slice(), &[102, -96]);
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let input = Tensor::from_vec(vec![3], vec![1.0f32, 2.0, 3.0]).unwrap();
        let weight = Tensor::filled(vec![2, 4], 1.0f32);
        assert!(matches!(
            linear(&input, &weight, None),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rank_mismatch_is_error() {
        let input = Tensor::filled(vec![2, 2], 1.0f32);
        let weight = Tensor::filled(vec![2, 4], 1.0f32);
        assert!(matches!(
            linear(&input, &weight, None),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn float_matches_manual_dot_product() {
        let input = Tensor::from_vec(vec![4], vec![0.5f32, -1.0, 2.0, 0.0]).unwrap();
        let weight = Tensor::from_vec(vec![1, 4], vec![2.0f32, 3.0, -1.0, 10.0]).unwrap();
        let out = linear(&input, &weight, None).unwrap();
        assert!((out.as_slice()[0] - (1.0 - 3.0 - 2.0)).abs() < 1e-6);
    }
}
