use super::Numeric;
use crate::Tensor;

/// Rectified linear unit: `max(0, x)` element-wise, returning a new tensor.
///
/// # Example
///
/// ```
/// use snn_tensor::{Tensor, ops::relu};
///
/// let t = Tensor::from_vec(vec![3], vec![-1.0f32, 0.0, 2.0])?;
/// assert_eq!(relu(&t).as_slice(), &[0.0, 0.0, 2.0]);
/// # Ok::<(), snn_tensor::TensorError>(())
/// ```
pub fn relu<T: Numeric>(input: &Tensor<T>) -> Tensor<T> {
    input.map(|&v| if v > T::zero() { v } else { T::zero() })
}

/// Rectified linear unit applied in place.
pub fn relu_in_place<T: Numeric>(input: &mut Tensor<T>) {
    for v in input.iter_mut() {
        if *v < T::zero() {
            *v = T::zero();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec(vec![4], vec![-5i32, -1, 0, 3]).unwrap();
        assert_eq!(relu(&t).as_slice(), &[0, 0, 0, 3]);
    }

    #[test]
    fn relu_in_place_matches_relu() {
        let mut t = Tensor::from_vec(vec![4], vec![-2.5f32, 1.5, 0.0, -0.1]).unwrap();
        let expected = relu(&t);
        relu_in_place(&mut t);
        assert_eq!(t.as_slice(), expected.as_slice());
    }
}
