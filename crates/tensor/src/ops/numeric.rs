/// Element types the reference operators can work with.
///
/// The trait is intentionally tiny: addition, multiplication, comparison and
/// the constants zero/one are all the operators need.  It is implemented for
/// `f32` (ANN reference path), `i32` (quantized / hardware golden path) and
/// `i64` (wide accumulators).
pub trait Numeric:
    Copy
    + PartialOrd
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::fmt::Debug
{
    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Division by a positive element count, used by average pooling.
    fn div_count(self, count: usize) -> Self;
}

impl Numeric for f32 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn div_count(self, count: usize) -> Self {
        self / count as f32
    }
}

impl Numeric for i32 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn div_count(self, count: usize) -> Self {
        // Integer average pooling truncates toward zero, matching the
        // hardware's shift-based division for power-of-two windows.
        self / count as i32
    }
}

impl Numeric for i64 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn div_count(self, count: usize) -> Self {
        self / count as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(f32::zero(), 0.0);
        assert_eq!(i32::one(), 1);
        assert_eq!(i64::zero(), 0);
    }

    #[test]
    fn div_count_truncates_for_integers() {
        assert_eq!(7i32.div_count(4), 1);
        assert_eq!((-7i32).div_count(4), -1);
        assert!((7.0f32.div_count(4) - 1.75).abs() < f32::EPSILON);
    }
}
