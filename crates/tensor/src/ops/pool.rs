use super::Numeric;
use crate::{Result, Tensor, TensorError};

/// Computes the spatial output dimensions of a pooling layer with a square
/// `window` and stride equal to the window size (non-overlapping pooling, as
/// used by LeNet-5 and VGG).
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] when the window is zero or
/// larger than the input.
pub fn pool_output_dims(input_hw: (usize, usize), window: usize) -> Result<(usize, usize)> {
    if window == 0 {
        return Err(TensorError::InvalidParameter {
            context: "pooling window must be non-zero".to_string(),
        });
    }
    let (h, w) = input_hw;
    if window > h || window > w {
        return Err(TensorError::InvalidParameter {
            context: format!("pooling window {window} larger than input {h}x{w}"),
        });
    }
    Ok((h / window, w / window))
}

fn pool2d<T: Numeric>(
    input: &Tensor<T>,
    window: usize,
    mut reduce: impl FnMut(&[T]) -> T,
) -> Result<Tensor<T>> {
    if input.shape().rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input.shape().rank(),
        });
    }
    let dims = input.shape().dims();
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let (h_out, w_out) = pool_output_dims((h, w), window)?;
    let mut output = Tensor::filled(vec![c, h_out, w_out], T::zero());
    let in_data = input.as_slice();
    let out_data = output.as_mut_slice();
    let mut patch = Vec::with_capacity(window * window);
    for ch in 0..c {
        for oy in 0..h_out {
            for ox in 0..w_out {
                patch.clear();
                for ky in 0..window {
                    for kx in 0..window {
                        let iy = oy * window + ky;
                        let ix = ox * window + kx;
                        patch.push(in_data[ch * h * w + iy * w + ix]);
                    }
                }
                out_data[ch * h_out * w_out + oy * w_out + ox] = reduce(&patch);
            }
        }
    }
    Ok(output)
}

/// Non-overlapping average pooling over a `[C, H, W]` feature map.
///
/// Integer element types truncate toward zero, matching the hardware's
/// shift-based division for power-of-two windows.
///
/// # Errors
///
/// Returns an error for non-rank-3 inputs or invalid windows.
///
/// # Example
///
/// ```
/// use snn_tensor::{Tensor, ops::avg_pool2d};
///
/// let input = Tensor::from_vec(vec![1, 2, 2], vec![1.0f32, 3.0, 5.0, 7.0])?;
/// let out = avg_pool2d(&input, 2)?;
/// assert_eq!(out.as_slice(), &[4.0]);
/// # Ok::<(), snn_tensor::TensorError>(())
/// ```
pub fn avg_pool2d<T: Numeric>(input: &Tensor<T>, window: usize) -> Result<Tensor<T>> {
    let count = window * window;
    pool2d(input, window, |patch| {
        let sum = patch.iter().fold(T::zero(), |acc, &v| acc + v);
        sum.div_count(count)
    })
}

/// Non-overlapping *sum* pooling over a `[C, H, W]` feature map.
///
/// The paper's pooling unit is adder-based: it accumulates the window and
/// lets the subsequent requantization step absorb the division.  Sum pooling
/// is therefore the exact hardware behaviour; [`avg_pool2d`] is the ANN-side
/// reference.
///
/// # Errors
///
/// Returns an error for non-rank-3 inputs or invalid windows.
pub fn sum_pool2d<T: Numeric>(input: &Tensor<T>, window: usize) -> Result<Tensor<T>> {
    pool2d(input, window, |patch| {
        patch.iter().fold(T::zero(), |acc, &v| acc + v)
    })
}

/// Non-overlapping max pooling over a `[C, H, W]` feature map.
///
/// # Errors
///
/// Returns an error for non-rank-3 inputs or invalid windows.
pub fn max_pool2d<T: Numeric>(input: &Tensor<T>, window: usize) -> Result<Tensor<T>> {
    pool2d(input, window, |patch| {
        patch
            .iter()
            .copied()
            .fold(patch[0], |acc, v| if v > acc { v } else { acc })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dims() {
        assert_eq!(pool_output_dims((28, 28), 2).unwrap(), (14, 14));
        assert_eq!(pool_output_dims((10, 10), 5).unwrap(), (2, 2));
        assert!(pool_output_dims((4, 4), 0).is_err());
        assert!(pool_output_dims((2, 2), 3).is_err());
    }

    #[test]
    fn average_pooling_float() {
        let input = Tensor::from_vec(
            vec![1, 2, 4],
            vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        )
        .unwrap();
        let out = avg_pool2d(&input, 2).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 2]);
        assert_eq!(out.as_slice(), &[3.5, 5.5]);
    }

    #[test]
    fn average_pooling_integer_truncates() {
        let input = Tensor::from_vec(vec![1, 2, 2], vec![1i32, 2, 3, 5]).unwrap();
        let out = avg_pool2d(&input, 2).unwrap();
        assert_eq!(out.as_slice(), &[2]); // 11 / 4 truncated
    }

    #[test]
    fn sum_pooling_accumulates_window() {
        let input = Tensor::from_vec(vec![1, 2, 2], vec![1i32, 2, 3, 5]).unwrap();
        let out = sum_pool2d(&input, 2).unwrap();
        assert_eq!(out.as_slice(), &[11]);
    }

    #[test]
    fn max_pooling_picks_largest() {
        let input = Tensor::from_vec(vec![1, 2, 2], vec![-1i32, -2, -3, -5]).unwrap();
        let out = max_pool2d(&input, 2).unwrap();
        assert_eq!(out.as_slice(), &[-1]);
    }

    #[test]
    fn pooling_is_per_channel() {
        let input = Tensor::from_vec(vec![2, 2, 2], vec![1i32, 1, 1, 1, 4, 4, 4, 4]).unwrap();
        let out = avg_pool2d(&input, 2).unwrap();
        assert_eq!(out.shape().dims(), &[2, 1, 1]);
        assert_eq!(out.as_slice(), &[1, 4]);
    }

    #[test]
    fn rank_mismatch_is_error() {
        let input = Tensor::filled(vec![4, 4], 1i32);
        assert!(matches!(
            max_pool2d(&input, 2),
            Err(TensorError::RankMismatch { .. })
        ));
    }
}
