//! Reference implementations of the neural-network operators used by the
//! accelerator.
//!
//! These operators are *functional golden models*: they compute exactly what
//! the hardware is supposed to compute, with no notion of cycles, buffers or
//! parallelism.  The cycle-level processing-unit simulators in `snn-accel`
//! are verified against them bit-exactly (for the integer variants).
//!
//! All operators work on `[C, H, W]` feature maps, `[O, C, Kh, Kw]` kernels
//! and `[O, N]` weight matrices in row-major order, and are generic over the
//! element type through the [`Numeric`] trait (implemented for `f32`, `i32`
//! and `i64`).

mod activation;
mod conv;
mod linear;
mod numeric;
mod pool;

pub use activation::{relu, relu_in_place};
pub use conv::{conv2d, conv2d_output_dims};
pub use linear::linear;
pub use numeric::Numeric;
pub use pool::{avg_pool2d, max_pool2d, pool_output_dims, sum_pool2d};
