use std::fmt;

/// Errors produced by tensor construction and the reference operators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The provided data length does not match the number of elements
    /// implied by the shape.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        dims: Vec<usize>,
    },
    /// The operation expected a tensor of a different rank.
    RankMismatch {
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// Two tensors participating in an operation have incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the incompatibility.
        context: String,
    },
    /// An operator was invoked with an invalid hyper-parameter
    /// (e.g. a stride of zero).
    InvalidParameter {
        /// Human-readable description of the invalid parameter.
        context: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape volume {expected}"
            ),
            TensorError::IndexOutOfBounds { index, dims } => {
                write!(f, "index {index:?} out of bounds for shape {dims:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected tensor of rank {expected}, got rank {actual}")
            }
            TensorError::ShapeMismatch { context } => {
                write!(f, "incompatible shapes: {context}")
            }
            TensorError::InvalidParameter { context } => {
                write!(f, "invalid parameter: {context}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let err = TensorError::LengthMismatch {
            expected: 4,
            actual: 3,
        };
        assert_eq!(
            err.to_string(),
            "data length 3 does not match shape volume 4"
        );
    }

    #[test]
    fn display_index_out_of_bounds() {
        let err = TensorError::IndexOutOfBounds {
            index: vec![2, 2],
            dims: vec![2, 2],
        };
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
