//! # snn-tensor
//!
//! Dense tensor substrate used throughout the SNN accelerator reproduction.
//!
//! The accelerator in the paper operates on small, statically-shaped feature
//! maps (e.g. 32×32 LeNet inputs, 3-bit quantized kernels).  This crate
//! provides exactly the pieces the rest of the workspace needs:
//!
//! * [`Shape`] and [`Tensor`] — a minimal row-major dense tensor over any
//!   element type.
//! * [`ops`] — reference implementations of the neural-network operators
//!   (2-D convolution, average/max pooling, fully-connected layers, ReLU)
//!   in both floating point and integer arithmetic.  The integer variants
//!   are the golden model the cycle-level hardware simulator is checked
//!   against bit-exactly.
//! * [`quant`] — symmetric fixed-point quantization used for the 3-bit
//!   network parameters of the paper.
//! * [`bitplane`] — radix activations packed into per-time-step binary
//!   planes of `u64` row words, the substrate of the sparse execution
//!   engine in `snn-accel` (word-level skipping of silent regions and
//!   one-pass popcounts for the data-dependent operation counters).
//! * [`simd`] — runtime-dispatched word-level kernels (AVX2/SSE2 with an
//!   always-compiled scalar oracle) behind the bit-plane engine's inner
//!   loops: occupancy OR-reduction, plane popcount, bitmask expansion and
//!   the dense gather/accumulate.  `SNN_SIMD=0` forces the scalar path.
//!
//! # Example
//!
//! ```
//! use snn_tensor::{Tensor, ops};
//!
//! // A 1×4×4 input feature map and a single 1×1×3×3 kernel.
//! let input = Tensor::from_vec(vec![1, 4, 4], (0..16).map(|v| v as f32).collect())?;
//! let kernel = Tensor::filled(vec![1, 1, 3, 3], 1.0f32);
//! let out = ops::conv2d(&input, &kernel, None, 1, 0)?;
//! assert_eq!(out.shape().dims(), &[1, 2, 2]);
//! # Ok::<(), snn_tensor::TensorError>(())
//! ```

// `deny` rather than `forbid`: the `simd` module carries the only
// `#[allow(unsafe_code)]` overrides in the workspace, scoped to the
// feature-gated intrinsic wrappers that runtime dispatch proves sound.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod shape;
mod tensor;

pub mod bitplane;
pub mod ops;
pub mod quant;
pub mod simd;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
