use crate::{Result, Shape, TensorError};
use serde::{Deserialize, Serialize};

/// A dense, row-major tensor over an arbitrary element type.
///
/// The tensor owns its data in a flat `Vec<T>`; multi-dimensional indices
/// are mapped to linear offsets through [`Shape::linear_index`].  The type
/// is deliberately small: the accelerator simulator mostly needs 3-D
/// feature maps (`[channels, height, width]`), 4-D kernels
/// (`[out_ch, in_ch, kh, kw]`) and 1-D/2-D weights.
///
/// # Example
///
/// ```
/// use snn_tensor::Tensor;
///
/// let mut t = Tensor::filled(vec![2, 3], 0.0f32);
/// t.set(&[1, 2], 5.0)?;
/// assert_eq!(t.get(&[1, 2]), Some(&5.0));
/// assert_eq!(t.iter().copied().sum::<f32>(), 5.0);
/// # Ok::<(), snn_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor<T> {
    shape: Shape,
    data: Vec<T>,
}

impl<T> Tensor<T> {
    /// Creates a tensor from a shape and a flat row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the shape volume.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<T>) -> Result<Self> {
        let shape = shape.into();
        if shape.volume() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Returns the tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a reference to the element at `index`, or `None` if the index
    /// is out of bounds.
    pub fn get(&self, index: &[usize]) -> Option<&T> {
        self.shape.linear_index(index).map(|i| &self.data[i])
    }

    /// Returns a mutable reference to the element at `index`.
    pub fn get_mut(&mut self, index: &[usize]) -> Option<&mut T> {
        self.shape
            .linear_index(index)
            .map(move |i| &mut self.data[i])
    }

    /// Stores `value` at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn set(&mut self, index: &[usize], value: T) -> Result<()> {
        match self.shape.linear_index(index) {
            Some(i) => {
                self.data[i] = value;
                Ok(())
            }
            None => Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                dims: self.shape.dims().to_vec(),
            }),
        }
    }

    /// Returns the flat, row-major element slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Returns the flat, row-major element slice mutably.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Iterates over the elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Iterates mutably over the elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// Reinterprets the tensor with a new shape of identical volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the volumes differ.
    pub fn reshape(self, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data,
        })
    }

    /// Applies `f` element-wise, producing a tensor of a possibly different
    /// element type with the same shape.
    pub fn map<U, F: FnMut(&T) -> U>(&self, f: F) -> Tensor<U> {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(f).collect(),
        }
    }
}

impl<T: Clone> Tensor<T> {
    /// Creates a tensor with every element set to `value`.
    pub fn filled(shape: impl Into<Shape>, value: T) -> Self {
        let shape = shape.into();
        let volume = shape.volume();
        Tensor {
            shape,
            data: vec![value; volume],
        }
    }
}

impl<T: Default + Clone> Tensor<T> {
    /// Creates a tensor filled with `T::default()` (zeros for numeric types).
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        Tensor::filled(shape, T::default())
    }
}

impl Tensor<f32> {
    /// Converts a floating-point tensor to `i32` by rounding to the nearest
    /// integer (ties away from zero, like `f32::round`).
    pub fn to_i32_rounded(&self) -> Tensor<i32> {
        self.map(|v| v.round() as i32)
    }

    /// Returns the maximum absolute value, or 0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |acc, v| acc.max(v.abs()))
    }
}

impl Tensor<i32> {
    /// Converts an integer tensor to `f32`.
    pub fn to_f32(&self) -> Tensor<f32> {
        self.map(|v| *v as f32)
    }
}

impl<'a, T> IntoIterator for &'a Tensor<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl<T> IntoIterator for Tensor<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0f32; 4]).is_ok());
        let err = Tensor::from_vec(vec![2, 2], vec![1.0f32; 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(vec![3, 4]);
        t.set(&[2, 3], 7i32).unwrap();
        assert_eq!(t.get(&[2, 3]), Some(&7));
        assert_eq!(t.get(&[0, 0]), Some(&0));
        assert_eq!(t.get(&[3, 0]), None);
    }

    #[test]
    fn set_out_of_bounds_is_error() {
        let mut t: Tensor<i32> = Tensor::zeros(vec![2, 2]);
        assert!(matches!(
            t.set(&[0, 2], 1),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).collect::<Vec<i32>>()).unwrap();
        let r = t.reshape(vec![3, 2]).unwrap();
        assert_eq!(r.shape().dims(), &[3, 2]);
        assert_eq!(r.as_slice(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn reshape_rejects_volume_change() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).collect::<Vec<i32>>()).unwrap();
        assert!(t.reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn map_changes_element_type() {
        let t = Tensor::from_vec(vec![2], vec![1.4f32, -2.6]).unwrap();
        let i = t.to_i32_rounded();
        assert_eq!(i.as_slice(), &[1, -3]);
        assert_eq!(i.to_f32().as_slice(), &[1.0, -3.0]);
    }

    #[test]
    fn max_abs_handles_negatives() {
        let t = Tensor::from_vec(vec![3], vec![0.5f32, -2.0, 1.5]).unwrap();
        assert!((t.max_abs() - 2.0).abs() < f32::EPSILON);
    }

    #[test]
    fn iteration_is_row_major() {
        let t = Tensor::from_vec(vec![2, 2], vec![1, 2, 3, 4]).unwrap();
        let collected: Vec<i32> = t.iter().copied().collect();
        assert_eq!(collected, vec![1, 2, 3, 4]);
    }

    #[test]
    fn tensor_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor<f32>>();
        assert_send_sync::<Tensor<i32>>();
    }
}
