//! Runtime-dispatched SIMD kernels for the bit-plane engine's word loops.
//!
//! The sparse execution engine spends its inner loops on a handful of
//! word-level primitives: OR-reducing packed plane rows into the occupancy
//! mask, popcounting planes for the analytical `adder_ops`, expanding
//! occupancy bitmasks into spike indices, and the dense-row
//! gather/accumulate (`out += c * row`) of saturated rows.  This module
//! provides those primitives once, with three implementations behind one
//! dispatch point:
//!
//! * **Scalar** — portable Rust, always compiled, the *oracle* every other
//!   path is property-pinned against ([`scalar`]).
//! * **SSE2** — 128-bit paths, present on every `x86_64` host.
//! * **AVX2** — 256-bit paths, selected when `is_x86_feature_detected!`
//!   reports support.
//!
//! Dispatch is resolved **once** per process ([`active_level`]) and cached;
//! the `SNN_SIMD` environment variable is the escape hatch (`SNN_SIMD=0`
//! or `SNN_SIMD=scalar` forces the scalar oracle, `SNN_SIMD=sse2` caps the
//! level below AVX2) so CI can prove the fallback stays green and hosts
//! can rule SIMD in or out when bisecting a numerical question.
//!
//! **Exactness contract:** every kernel computes bit-identical results on
//! every level — the integer operations are exact (`u64` bit ops, wrapping
//! `i64` multiply-accumulate is associative and commutative), so the
//! choice of path can never change an accumulator or a derived statistic.
//! `tests/simd_properties.rs` pins all levels against [`scalar`] on
//! arbitrary densities, widths crossing word boundaries and all-silent
//! rows.

use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "x86_64")]
mod sse2;

pub mod scalar;

/// Which kernel implementation the process dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar loops — the always-compiled oracle.
    Scalar,
    /// 128-bit SSE2 paths (baseline on every `x86_64`).
    Sse2,
    /// 256-bit AVX2 paths (runtime-detected).
    Avx2,
}

impl SimdLevel {
    /// Human-readable name, as accepted by `SNN_SIMD`.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// Detects the best level the host supports, before applying `SNN_SIMD`.
fn detect_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            // SSE2 is part of the x86_64 baseline.
            SimdLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    SimdLevel::Scalar
}

/// Applies the `SNN_SIMD` escape hatch to the detected level: the variable
/// can only *lower* the level, never enable an unsupported path.
fn resolve_level() -> SimdLevel {
    let detected = detect_level();
    match std::env::var("SNN_SIMD") {
        Ok(value) => {
            let requested = match value.trim().to_ascii_lowercase().as_str() {
                "0" | "off" | "scalar" => SimdLevel::Scalar,
                "sse2" | "1" => SimdLevel::Sse2,
                _ => detected,
            };
            requested.min(detected)
        }
        Err(_) => detected,
    }
}

/// The kernel level every dispatching function in this module uses,
/// resolved once per process (feature detection + `SNN_SIMD`).
pub fn active_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(resolve_level)
}

/// `acc[i] |= src[i]` over packed words — the occupancy OR-reduction of
/// one plane row into the accumulator row.
///
/// # Panics
///
/// Panics when the slices differ in length.
pub fn or_accumulate(acc: &mut [u64], src: &[u64]) {
    assert_eq!(acc.len(), src.len(), "word rows differ in length");
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => avx2::or_accumulate(acc, src),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => sse2::or_accumulate(acc, src),
        _ => scalar::or_accumulate(acc, src),
    }
}

/// Total number of set bits across `words` — the plane popcount behind the
/// data-dependent `adder_ops` counters.
pub fn popcount(words: &[u64]) -> u64 {
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => avx2::popcount(words),
        // SSE2 has no shuffle-based nibble popcount (that needs SSSE3);
        // the scalar loop compiles to hardware POPCNT wherever available.
        _ => scalar::popcount(words),
    }
}

/// Packs one occupancy row: bit `x` of `out` is set iff
/// `levels[x] & mask != 0`.  `out` must hold `words_per_row(levels.len())`
/// words and is fully overwritten.
///
/// # Panics
///
/// Panics when `out` is shorter than the packed row needs.
pub fn pack_occupancy_row(levels: &[i64], mask: i64, out: &mut [u64]) {
    let needed = levels.len().div_ceil(64).max(1);
    assert!(out.len() >= needed, "occupancy row buffer too short");
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => avx2::pack_occupancy_row(levels, mask, out),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => sse2::pack_occupancy_row(levels, mask, out),
        _ => scalar::pack_occupancy_row(levels, mask, out),
    }
}

/// `out[i] += c * x[i]` with wrapping `i64` arithmetic — the dense-row
/// gather/accumulate of the convolution and linear engines, expressed per
/// kernel tap so the inner loop runs over contiguous output positions.
///
/// # Panics
///
/// Panics when the slices differ in length.
pub fn axpy_i64(out: &mut [i64], x: &[i64], c: i64) {
    assert_eq!(out.len(), x.len(), "axpy rows differ in length");
    if c == 0 {
        return;
    }
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => avx2::axpy_i64(out, x, c),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => sse2::axpy_i64(out, x, c),
        _ => scalar::axpy_i64(out, x, c),
    }
}

/// Wrapping `i64` dot product — the dense gather of the linear unit
/// (masked level vector × weight row).
///
/// # Panics
///
/// Panics when the slices differ in length.
pub fn dot_i64(a: &[i64], b: &[i64]) -> i64 {
    assert_eq!(a.len(), b.len(), "dot vectors differ in length");
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => avx2::dot_i64(a, b),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => sse2::dot_i64(a, b),
        _ => scalar::dot_i64(a, b),
    }
}

/// Expands the set bits of a packed row into ascending positions
/// (`base + bit_index`), appended to `out` — the bitmask-expansion side of
/// the sparse gather.
pub fn collect_set_bits(words: &[u64], base: usize, out: &mut Vec<u32>) {
    // This path only ever sees rows below the dense-gather threshold
    // (saturated rows are routed to the dense kernels), and in that sparse
    // regime the per-bit `trailing_zeros`/`clear-lowest` walk — whose work
    // is proportional to the set bits, not the row width — measures ~4x
    // faster than the byte-table batched expansion on x86
    // (`simd_kernels/sparse_gather` in the conv_unit bench).  The batched
    // expansion stays in [`scalar`] as the alternate implementation both
    // are pinned against.
    scalar::collect_set_bits(words, base, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words_from_bits(bits: &[usize], len: usize) -> Vec<u64> {
        let mut words = vec![0u64; len];
        for &b in bits {
            words[b / 64] |= 1u64 << (b % 64);
        }
        words
    }

    #[test]
    fn active_level_is_cached_and_valid() {
        let level = active_level();
        assert_eq!(level, active_level());
        assert!(level <= detect_level());
    }

    #[test]
    fn or_accumulate_matches_scalar() {
        let src: Vec<u64> = (0..9)
            .map(|i| (i as u64).wrapping_mul(0x9e3779b97f4a7c15))
            .collect();
        let mut acc = vec![0xf0f0_f0f0u64; 9];
        let mut oracle = acc.clone();
        or_accumulate(&mut acc, &src);
        scalar::or_accumulate(&mut oracle, &src);
        assert_eq!(acc, oracle);
    }

    #[test]
    fn popcount_matches_scalar() {
        let words: Vec<u64> = (0..33)
            .map(|i| (i as u64).wrapping_mul(0xdeadbeefcafebabe) ^ (i as u64) << 7)
            .collect();
        assert_eq!(popcount(&words), scalar::popcount(&words));
        assert_eq!(popcount(&[]), 0);
    }

    #[test]
    fn pack_occupancy_row_matches_scalar() {
        let levels: Vec<i64> = (0..131).map(|v| ((v * 37) % 9) as i64 - 2).collect();
        for mask in [0i64, 1, 7, i64::MAX] {
            let mut fast = vec![0u64; 3];
            let mut slow = vec![u64::MAX; 3];
            pack_occupancy_row(&levels, mask, &mut fast);
            scalar::pack_occupancy_row(&levels, mask, &mut slow);
            assert_eq!(fast, slow, "mask={mask}");
        }
    }

    #[test]
    fn axpy_matches_scalar() {
        let x: Vec<i64> = (0..37).map(|v| (v * 13 % 29) as i64 - 14).collect();
        for c in [-3i64, 0, 1, 7, 1 << 40] {
            let mut fast: Vec<i64> = (0..37).map(|v| v as i64 * 3 - 50).collect();
            let mut slow = fast.clone();
            axpy_i64(&mut fast, &x, c);
            scalar::axpy_i64(&mut slow, &x, c);
            assert_eq!(fast, slow, "c={c}");
        }
    }

    #[test]
    fn dot_matches_scalar() {
        let a: Vec<i64> = (0..41).map(|v| (v * 17 % 23) as i64 - 11).collect();
        let b: Vec<i64> = (0..41).map(|v| (v * 5 % 13) as i64 - 6).collect();
        assert_eq!(dot_i64(&a, &b), scalar::dot_i64(&a, &b));
        assert_eq!(dot_i64(&[], &[]), 0);
    }

    #[test]
    fn collect_set_bits_matches_plain_walk() {
        let words = words_from_bits(&[0, 3, 63, 64, 67, 130, 191], 3);
        let mut batched = vec![99u32]; // pre-existing content is kept
        collect_set_bits(&words, 10, &mut batched);
        let mut plain = vec![99u32];
        scalar::collect_set_bits(&words, 10, &mut plain);
        assert_eq!(batched, plain);
        assert_eq!(batched[1..].to_vec(), vec![10, 13, 73, 74, 77, 140, 201]);
    }
}
