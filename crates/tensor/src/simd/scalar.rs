//! Portable scalar kernels — the always-compiled oracle every SIMD path
//! is property-pinned against, and the dispatch target on hosts (or under
//! `SNN_SIMD=0`) where no vector path applies.

/// `acc[i] |= src[i]` over packed words.
pub fn or_accumulate(acc: &mut [u64], src: &[u64]) {
    for (a, &s) in acc.iter_mut().zip(src) {
        *a |= s;
    }
}

/// Total number of set bits across `words`.
pub fn popcount(words: &[u64]) -> u64 {
    words.iter().map(|w| u64::from(w.count_ones())).sum()
}

/// Packs one occupancy row: bit `x` of `out` set iff `levels[x] & mask != 0`.
pub fn pack_occupancy_row(levels: &[i64], mask: i64, out: &mut [u64]) {
    let needed = levels.len().div_ceil(64).max(1);
    for w in out.iter_mut().take(needed) {
        *w = 0;
    }
    for (x, &level) in levels.iter().enumerate() {
        if level & mask != 0 {
            out[x / 64] |= 1u64 << (x % 64);
        }
    }
}

/// `out[i] += c * x[i]` with the workspace's plain `i64` arithmetic.
pub fn axpy_i64(out: &mut [i64], x: &[i64], c: i64) {
    for (o, &v) in out.iter_mut().zip(x) {
        *o += c * v;
    }
}

/// Plain `i64` dot product.
pub fn dot_i64(a: &[i64], b: &[i64]) -> i64 {
    let mut sum = 0i64;
    for (&x, &y) in a.iter().zip(b) {
        sum += x * y;
    }
    sum
}

/// Per-bit expansion of set bits into ascending positions via the
/// `trailing_zeros`/`clear-lowest` walk: work proportional to the set
/// bits, which makes it the dispatched path for the sparse rows the
/// gather threshold routes here (and the oracle for
/// [`collect_set_bits_batched`]).
pub fn collect_set_bits(words: &[u64], base: usize, out: &mut Vec<u32>) {
    for (word_index, &word) in words.iter().enumerate() {
        let mut remaining = word;
        while remaining != 0 {
            let bit = remaining.trailing_zeros() as usize;
            out.push((base + word_index * 64 + bit) as u32);
            remaining &= remaining - 1;
        }
    }
}

/// Byte-position table: entry `b` holds the bit positions set in the byte
/// `b`, packed one per nibble-free `u8`, plus the count.  Built once.
struct ByteTable {
    positions: [[u8; 8]; 256],
    counts: [u8; 256],
}

static BYTE_TABLE: ByteTable = {
    let mut positions = [[0u8; 8]; 256];
    let mut counts = [0u8; 256];
    let mut byte = 0usize;
    while byte < 256 {
        let mut count = 0u8;
        let mut bit = 0u8;
        while bit < 8 {
            if byte & (1usize << bit) != 0 {
                positions[byte][count as usize] = bit;
                count += 1;
            }
            bit += 1;
        }
        counts[byte] = count;
        byte += 1;
    }
    ByteTable { positions, counts }
};

/// Word-batched bitmask expansion: each non-zero byte of each word is
/// expanded through `BYTE_TABLE` (no per-bit branches), appending
/// ascending positions `base + bit_index` to `out`.  Its fixed
/// 8-bytes-per-word walk only pays off on near-saturated rows — which the
/// engine gathers densely instead — so [`collect_set_bits`] dispatches
/// the per-bit walk; this stays as the pinned alternate (see the
/// `simd_kernels/sparse_gather` bench).
pub fn collect_set_bits_batched(words: &[u64], base: usize, out: &mut Vec<u32>) {
    for (word_index, &word) in words.iter().enumerate() {
        if word == 0 {
            continue;
        }
        let word_base = (base + word_index * 64) as u32;
        let mut bytes = word;
        let mut byte_index = 0u32;
        while bytes != 0 {
            let byte = (bytes & 0xff) as usize;
            if byte != 0 {
                let count = BYTE_TABLE.counts[byte] as usize;
                let table = &BYTE_TABLE.positions[byte];
                let offset = word_base + byte_index * 8;
                out.reserve(count);
                for &p in table.iter().take(count) {
                    out.push(offset + u32::from(p));
                }
            }
            bytes >>= 8;
            byte_index += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_expansion_equals_plain_walk_on_dense_words() {
        let words = vec![u64::MAX, 0, 0x8000_0000_0000_0001];
        let mut plain = Vec::new();
        collect_set_bits(&words, 5, &mut plain);
        let mut batched = Vec::new();
        collect_set_bits_batched(&words, 5, &mut batched);
        assert_eq!(plain, batched);
        assert_eq!(plain.len(), 66);
    }

    #[test]
    fn byte_table_is_consistent() {
        for byte in 0usize..256 {
            let count = BYTE_TABLE.counts[byte] as u32;
            assert_eq!(count, byte.count_ones());
            for i in 0..count as usize {
                let bit = BYTE_TABLE.positions[byte][i];
                assert!(byte & (1 << bit) != 0);
            }
        }
    }
}
