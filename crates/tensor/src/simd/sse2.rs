//! 128-bit SSE2 kernel implementations — the baseline vector path on
//! every `x86_64` host (SSE2 is part of the architecture baseline, so no
//! runtime check is needed for availability, only for the `SNN_SIMD` cap).
//!
//! SSE2 has no 64-bit lane compare (`pcmpeqq` is SSE4.1) and no shuffle
//! popcount (SSSE3), so the zero test is built from paired 32-bit
//! compares and popcount stays on the scalar path.  The 64-bit multiply
//! uses the same exact `vpmuludq` decomposition as the AVX2 path.

#![allow(unsafe_code)]

use super::scalar;
use std::arch::x86_64::*;

/// `acc[i] |= src[i]`, 2 words per iteration.
pub fn or_accumulate(acc: &mut [u64], src: &[u64]) {
    // SAFETY: SSE2 is the x86_64 baseline; all loads/stores stay within
    // the equal-length slices.
    unsafe { or_accumulate_impl(acc, src) }
}

#[target_feature(enable = "sse2")]
unsafe fn or_accumulate_impl(acc: &mut [u64], src: &[u64]) {
    let chunks = acc.len() / 2;
    unsafe {
        for i in 0..chunks {
            let a = _mm_loadu_si128(acc.as_ptr().add(i * 2).cast());
            let s = _mm_loadu_si128(src.as_ptr().add(i * 2).cast());
            _mm_storeu_si128(acc.as_mut_ptr().add(i * 2).cast(), _mm_or_si128(a, s));
        }
    }
    scalar::or_accumulate(&mut acc[chunks * 2..], &src[chunks * 2..]);
}

/// Packs one occupancy row 2 levels at a time.  The per-lane zero test
/// ANDs the two 32-bit `pcmpeqd` halves of each lane.
pub fn pack_occupancy_row(levels: &[i64], mask: i64, out: &mut [u64]) {
    // SAFETY: SSE2 is the x86_64 baseline; loads stay inside `levels`,
    // and the caller-checked `out` length covers every word written.
    unsafe { pack_occupancy_row_impl(levels, mask, out) }
}

#[target_feature(enable = "sse2")]
unsafe fn pack_occupancy_row_impl(levels: &[i64], mask: i64, out: &mut [u64]) {
    let needed = levels.len().div_ceil(64).max(1);
    for w in out.iter_mut().take(needed) {
        *w = 0;
    }
    let pairs = levels.len() / 2;
    unsafe {
        let vmask = _mm_set1_epi64x(mask);
        let zero = _mm_setzero_si128();
        for p in 0..pairs {
            let v = _mm_loadu_si128(levels.as_ptr().add(p * 2).cast());
            let masked = _mm_and_si128(v, vmask);
            // 64-bit lane is zero iff both 32-bit halves are zero.
            let eq32 = _mm_cmpeq_epi32(masked, zero);
            let swapped = _mm_shuffle_epi32(eq32, 0b1011_0001);
            let is_zero = _mm_and_si128(eq32, swapped);
            let bits = (!_mm_movemask_pd(_mm_castsi128_pd(is_zero)) & 0x3) as u64;
            let base = p * 2;
            out[base / 64] |= bits << (base % 64);
        }
    }
    for (x, &level) in levels.iter().enumerate().skip(pairs * 2) {
        if level & mask != 0 {
            out[x / 64] |= 1u64 << (x % 64);
        }
    }
}

/// Wrapping 64-bit product of two `i64` vectors via 32-bit partials
/// (`lo·lo + ((hi·lo + lo·hi) << 32)`), exact mod 2^64.
#[inline]
#[target_feature(enable = "sse2")]
fn mul_epi64(a: __m128i, b: __m128i) -> __m128i {
    let a_hi = _mm_srli_epi64(a, 32);
    let b_hi = _mm_srli_epi64(b, 32);
    let lo = _mm_mul_epu32(a, b);
    let cross = _mm_add_epi64(_mm_mul_epu32(a_hi, b), _mm_mul_epu32(a, b_hi));
    _mm_add_epi64(lo, _mm_slli_epi64(cross, 32))
}

/// `out[i] += c * x[i]`, 2 lanes per iteration.
pub fn axpy_i64(out: &mut [i64], x: &[i64], c: i64) {
    // SAFETY: SSE2 is the x86_64 baseline; loads/stores stay within the
    // equal-length slices.
    unsafe { axpy_impl(out, x, c) }
}

#[target_feature(enable = "sse2")]
unsafe fn axpy_impl(out: &mut [i64], x: &[i64], c: i64) {
    let chunks = out.len() / 2;
    unsafe {
        let vc = _mm_set1_epi64x(c);
        for i in 0..chunks {
            let xv = _mm_loadu_si128(x.as_ptr().add(i * 2).cast());
            let ov = _mm_loadu_si128(out.as_ptr().add(i * 2).cast());
            let sum = _mm_add_epi64(ov, mul_epi64(xv, vc));
            _mm_storeu_si128(out.as_mut_ptr().add(i * 2).cast(), sum);
        }
    }
    scalar::axpy_i64(&mut out[chunks * 2..], &x[chunks * 2..], c);
}

/// Wrapping `i64` dot product, 2 lanes per iteration.
pub fn dot_i64(a: &[i64], b: &[i64]) -> i64 {
    // SAFETY: SSE2 is the x86_64 baseline; loads stay within the
    // equal-length slices.
    unsafe { dot_impl(a, b) }
}

#[target_feature(enable = "sse2")]
unsafe fn dot_impl(a: &[i64], b: &[i64]) -> i64 {
    let chunks = a.len() / 2;
    let mut total;
    unsafe {
        let mut acc = _mm_setzero_si128();
        for i in 0..chunks {
            let av = _mm_loadu_si128(a.as_ptr().add(i * 2).cast());
            let bv = _mm_loadu_si128(b.as_ptr().add(i * 2).cast());
            acc = _mm_add_epi64(acc, mul_epi64(av, bv));
        }
        let mut lanes = [0i64; 2];
        _mm_storeu_si128(lanes.as_mut_ptr().cast(), acc);
        total = lanes[0].wrapping_add(lanes[1]);
    }
    total = total.wrapping_add(scalar::dot_i64(&a[chunks * 2..], &b[chunks * 2..]));
    total
}
