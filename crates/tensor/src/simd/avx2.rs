//! 256-bit AVX2 kernel implementations.
//!
//! Every function here is dispatched to only after
//! `is_x86_feature_detected!("avx2")` succeeded (see
//! [`super::active_level`]), which is what makes the `unsafe` blocks
//! sound: the intrinsics are available on the running CPU, and every
//! pointer stays inside the bounds of the borrowed slices.
//!
//! The integer arithmetic is exact: bitwise ops and popcounts are
//! lane-width-independent, and the 64-bit multiply is composed from
//! `vpmuludq` 32×32→64 partial products (`lo·lo + ((hi·lo + lo·hi) << 32)`),
//! which is precisely the wrapping 64-bit product — so accumulators are
//! bit-identical to the scalar oracle.

#![allow(unsafe_code)]

use super::scalar;
use std::arch::x86_64::*;

/// `acc[i] |= src[i]`, 4 words per iteration.
pub fn or_accumulate(acc: &mut [u64], src: &[u64]) {
    // SAFETY: dispatch guarantees AVX2; all loads/stores are within the
    // equal-length slices.
    unsafe { or_accumulate_impl(acc, src) }
}

#[target_feature(enable = "avx2")]
unsafe fn or_accumulate_impl(acc: &mut [u64], src: &[u64]) {
    let chunks = acc.len() / 4;
    unsafe {
        for i in 0..chunks {
            let a = _mm256_loadu_si256(acc.as_ptr().add(i * 4).cast());
            let s = _mm256_loadu_si256(src.as_ptr().add(i * 4).cast());
            _mm256_storeu_si256(acc.as_mut_ptr().add(i * 4).cast(), _mm256_or_si256(a, s));
        }
    }
    scalar::or_accumulate(&mut acc[chunks * 4..], &src[chunks * 4..]);
}

/// Harley-Seal-free nibble-LUT popcount: `vpshufb` counts each nibble,
/// `vpsadbw` folds bytes into per-lane `u64` sums.
pub fn popcount(words: &[u64]) -> u64 {
    // SAFETY: dispatch guarantees AVX2; loads stay inside `words`.
    unsafe { popcount_impl(words) }
}

#[target_feature(enable = "avx2")]
unsafe fn popcount_impl(words: &[u64]) -> u64 {
    let chunks = words.len() / 4;
    let mut total;
    unsafe {
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, // lane 0
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, // lane 1
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let zero = _mm256_setzero_si256();
        let mut acc = zero;
        for i in 0..chunks {
            let v = _mm256_loadu_si256(words.as_ptr().add(i * 4).cast());
            let lo = _mm256_and_si256(v, low_mask);
            let hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
            let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, zero));
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
        total = lanes.iter().sum::<u64>();
    }
    total += scalar::popcount(&words[chunks * 4..]);
    total
}

/// Packs one occupancy row 4 levels at a time: mask, compare against
/// zero, and fold the 4-lane movemask into the packed word.
pub fn pack_occupancy_row(levels: &[i64], mask: i64, out: &mut [u64]) {
    // SAFETY: dispatch guarantees AVX2; loads stay inside `levels`, and
    // the caller-checked `out` length covers every packed word written.
    unsafe { pack_occupancy_row_impl(levels, mask, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn pack_occupancy_row_impl(levels: &[i64], mask: i64, out: &mut [u64]) {
    let needed = levels.len().div_ceil(64).max(1);
    for w in out.iter_mut().take(needed) {
        *w = 0;
    }
    let quads = levels.len() / 4;
    unsafe {
        let vmask = _mm256_set1_epi64x(mask);
        let zero = _mm256_setzero_si256();
        for q in 0..quads {
            let v = _mm256_loadu_si256(levels.as_ptr().add(q * 4).cast());
            let masked = _mm256_and_si256(v, vmask);
            // Lane is all-ones where the masked level equals zero; invert
            // the movemask to get "spikes somewhere" per lane.
            let is_zero = _mm256_cmpeq_epi64(masked, zero);
            let bits = (!_mm256_movemask_pd(_mm256_castsi256_pd(is_zero)) & 0xf) as u64;
            let base = q * 4;
            out[base / 64] |= bits << (base % 64);
        }
    }
    for (x, &level) in levels.iter().enumerate().skip(quads * 4) {
        if level & mask != 0 {
            out[x / 64] |= 1u64 << (x % 64);
        }
    }
}

/// Wrapping 64-bit product of two `i64` vectors:
/// `lo·lo + ((hi·lo + lo·hi) << 32)` over unsigned 32-bit partials.
#[inline]
#[target_feature(enable = "avx2")]
fn mul_epi64(a: __m256i, b: __m256i) -> __m256i {
    let a_hi = _mm256_srli_epi64(a, 32);
    let b_hi = _mm256_srli_epi64(b, 32);
    let lo = _mm256_mul_epu32(a, b);
    let cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
    _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32))
}

/// `out[i] += c * x[i]`, 4 lanes per iteration.
pub fn axpy_i64(out: &mut [i64], x: &[i64], c: i64) {
    // SAFETY: dispatch guarantees AVX2; loads/stores stay inside the
    // equal-length slices.
    unsafe { axpy_impl(out, x, c) }
}

#[target_feature(enable = "avx2")]
unsafe fn axpy_impl(out: &mut [i64], x: &[i64], c: i64) {
    let chunks = out.len() / 4;
    unsafe {
        let vc = _mm256_set1_epi64x(c);
        for i in 0..chunks {
            let xv = _mm256_loadu_si256(x.as_ptr().add(i * 4).cast());
            let ov = _mm256_loadu_si256(out.as_ptr().add(i * 4).cast());
            let sum = _mm256_add_epi64(ov, mul_epi64(xv, vc));
            _mm256_storeu_si256(out.as_mut_ptr().add(i * 4).cast(), sum);
        }
    }
    scalar::axpy_i64(&mut out[chunks * 4..], &x[chunks * 4..], c);
}

/// Wrapping `i64` dot product, 4 lanes per iteration.
pub fn dot_i64(a: &[i64], b: &[i64]) -> i64 {
    // SAFETY: dispatch guarantees AVX2; loads stay inside the
    // equal-length slices.
    unsafe { dot_impl(a, b) }
}

#[target_feature(enable = "avx2")]
unsafe fn dot_impl(a: &[i64], b: &[i64]) -> i64 {
    let chunks = a.len() / 4;
    let mut total;
    unsafe {
        let mut acc = _mm256_setzero_si256();
        for i in 0..chunks {
            let av = _mm256_loadu_si256(a.as_ptr().add(i * 4).cast());
            let bv = _mm256_loadu_si256(b.as_ptr().add(i * 4).cast());
            acc = _mm256_add_epi64(acc, mul_epi64(av, bv));
        }
        let mut lanes = [0i64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
        total = lanes.iter().fold(0i64, |s, &v| s.wrapping_add(v));
    }
    total = total.wrapping_add(scalar::dot_i64(&a[chunks * 4..], &b[chunks * 4..]));
    total
}
