use serde::{Deserialize, Serialize};
use std::fmt;

/// The extents of a dense, row-major tensor.
///
/// A shape is an ordered list of dimension sizes.  The last dimension is
/// the fastest-varying one, matching the memory layout of [`crate::Tensor`].
///
/// # Example
///
/// ```
/// use snn_tensor::Shape;
///
/// let shape = Shape::new(vec![6, 28, 28]);
/// assert_eq!(shape.rank(), 3);
/// assert_eq!(shape.volume(), 6 * 28 * 28);
/// assert_eq!(shape.linear_index(&[1, 2, 3]), Some(1 * 28 * 28 + 2 * 28 + 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from the given dimension sizes.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Returns the dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Returns the number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Returns the total number of elements described by the shape.
    ///
    /// An empty shape (rank 0) has a volume of 1, matching the convention
    /// for scalars.
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns the size of dimension `axis`, or `None` if the axis does not
    /// exist.
    pub fn dim(&self, axis: usize) -> Option<usize> {
        self.dims.get(axis).copied()
    }

    /// Converts a multi-dimensional index into a row-major linear offset.
    ///
    /// Returns `None` when the index rank does not match or any component is
    /// out of bounds.
    pub fn linear_index(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.dims.len() {
            return None;
        }
        let mut offset = 0usize;
        for (i, (&idx, &dim)) in index.iter().zip(self.dims.iter()).enumerate() {
            if idx >= dim {
                return None;
            }
            let stride: usize = self.dims[i + 1..].iter().product();
            offset += idx * stride;
        }
        Some(offset)
    }

    /// Returns the row-major strides of the shape.
    ///
    /// ```
    /// use snn_tensor::Shape;
    /// assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_of_empty_shape_is_one() {
        assert_eq!(Shape::new(vec![]).volume(), 1);
    }

    #[test]
    fn volume_multiplies_dims() {
        assert_eq!(Shape::new(vec![2, 3, 4]).volume(), 24);
    }

    #[test]
    fn linear_index_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.linear_index(&[0, 0, 0]), Some(0));
        assert_eq!(s.linear_index(&[0, 0, 3]), Some(3));
        assert_eq!(s.linear_index(&[0, 1, 0]), Some(4));
        assert_eq!(s.linear_index(&[1, 0, 0]), Some(12));
        assert_eq!(s.linear_index(&[1, 2, 3]), Some(23));
    }

    #[test]
    fn linear_index_rejects_out_of_bounds() {
        let s = Shape::new(vec![2, 3]);
        assert_eq!(s.linear_index(&[2, 0]), None);
        assert_eq!(s.linear_index(&[0, 3]), None);
        assert_eq!(s.linear_index(&[0]), None);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(vec![6, 28, 28]).strides(), vec![784, 28, 1]);
        assert_eq!(Shape::new(vec![5]).strides(), vec![1]);
        assert_eq!(Shape::new(vec![]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Shape::new(vec![1, 32, 32]).to_string(), "[1x32x32]");
    }

    #[test]
    fn conversions_from_slices_and_vecs() {
        let a: Shape = vec![2, 2].into();
        let b: Shape = (&[2usize, 2][..]).into();
        assert_eq!(a, b);
    }
}
