//! Symmetric fixed-point quantization.
//!
//! The paper sets the resolution of the network parameters to **3 bits**
//! (Section IV-A).  Weights are quantized symmetrically around zero: a
//! per-tensor scale maps the real-valued weights onto a small signed integer
//! grid, and the integer codes are what the accelerator's adders consume.
//! Activations in the radix-encoded SNN are binary spikes, so only weights
//! and the requantization step after each layer need this module.

use crate::{Result, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// A tensor quantized to `bits`-bit signed integers with a single
/// per-tensor scale: `real ≈ code * scale`.
///
/// # Example
///
/// ```
/// use snn_tensor::{Tensor, quant::QuantizedTensor};
///
/// let weights = Tensor::from_vec(vec![4], vec![-1.0f32, -0.5, 0.25, 1.0])?;
/// let q = QuantizedTensor::quantize(&weights, 3)?;
/// let back = q.dequantize();
/// // 3 bits -> codes in [-3, 3]; the round trip stays within half a step.
/// for (orig, deq) in weights.iter().zip(back.iter()) {
///     assert!((orig - deq).abs() <= q.scale() / 2.0 + 1e-6);
/// }
/// # Ok::<(), snn_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    codes: Tensor<i32>,
    scale: f32,
    bits: u8,
}

impl QuantizedTensor {
    /// Quantizes `real` to signed `bits`-bit codes with a symmetric range.
    ///
    /// The code range is `[-(2^(bits-1) - 1), 2^(bits-1) - 1]`, i.e. the
    /// most negative code is not used so the grid is symmetric (for 3 bits:
    /// codes −3..=3).  The scale is chosen so the largest-magnitude element
    /// maps to the largest code.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] if `bits` is not in `2..=16`.
    pub fn quantize(real: &Tensor<f32>, bits: u8) -> Result<Self> {
        if !(2..=16).contains(&bits) {
            return Err(TensorError::InvalidParameter {
                context: format!("quantization bits must be in 2..=16, got {bits}"),
            });
        }
        let max_code = Self::max_code_for(bits);
        let max_abs = real.max_abs();
        let scale = if max_abs == 0.0 {
            1.0
        } else {
            max_abs / max_code as f32
        };
        let codes = real.map(|&v| {
            let code = (v / scale).round() as i32;
            code.clamp(-max_code, max_code)
        });
        Ok(QuantizedTensor { codes, scale, bits })
    }

    /// Builds a quantized tensor directly from integer codes and a scale.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] if `bits` is out of range or
    /// any code exceeds the representable range.
    pub fn from_codes(codes: Tensor<i32>, scale: f32, bits: u8) -> Result<Self> {
        if !(2..=16).contains(&bits) {
            return Err(TensorError::InvalidParameter {
                context: format!("quantization bits must be in 2..=16, got {bits}"),
            });
        }
        let max_code = Self::max_code_for(bits);
        if codes.iter().any(|&c| c < -max_code || c > max_code) {
            return Err(TensorError::InvalidParameter {
                context: format!("code exceeds {bits}-bit symmetric range ±{max_code}"),
            });
        }
        Ok(QuantizedTensor { codes, scale, bits })
    }

    /// Largest representable code magnitude for `bits`-bit symmetric
    /// quantization.
    pub fn max_code_for(bits: u8) -> i32 {
        (1i32 << (bits - 1)) - 1
    }

    /// The integer codes.
    pub fn codes(&self) -> &Tensor<i32> {
        &self.codes
    }

    /// The per-tensor scale factor (`real ≈ code * scale`).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The bit width used during quantization.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Reconstructs the real-valued tensor from the codes.
    pub fn dequantize(&self) -> Tensor<f32> {
        self.codes.map(|&c| c as f32 * self.scale)
    }

    /// Root-mean-square quantization error against a reference tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn rms_error(&self, reference: &Tensor<f32>) -> Result<f32> {
        if reference.shape() != self.codes.shape() {
            return Err(TensorError::ShapeMismatch {
                context: "reference shape differs from quantized shape".to_string(),
            });
        }
        let deq = self.dequantize();
        let sum_sq: f32 = deq
            .iter()
            .zip(reference.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        Ok((sum_sq / reference.len().max(1) as f32).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_code_matches_bit_width() {
        assert_eq!(QuantizedTensor::max_code_for(3), 3);
        assert_eq!(QuantizedTensor::max_code_for(4), 7);
        assert_eq!(QuantizedTensor::max_code_for(8), 127);
    }

    #[test]
    fn quantize_roundtrip_error_bounded_by_half_step() {
        let real =
            Tensor::from_vec(vec![7], vec![-0.9f32, -0.33, -0.1, 0.0, 0.2, 0.55, 0.9]).unwrap();
        let q = QuantizedTensor::quantize(&real, 3).unwrap();
        let deq = q.dequantize();
        for (orig, back) in real.iter().zip(deq.iter()) {
            assert!((orig - back).abs() <= q.scale() / 2.0 + 1e-6);
        }
    }

    #[test]
    fn largest_magnitude_maps_to_largest_code() {
        let real = Tensor::from_vec(vec![3], vec![0.1f32, -0.8, 0.4]).unwrap();
        let q = QuantizedTensor::quantize(&real, 3).unwrap();
        assert_eq!(q.codes().as_slice()[1], -3);
    }

    #[test]
    fn zero_tensor_quantizes_to_zero_codes() {
        let real = Tensor::filled(vec![5], 0.0f32);
        let q = QuantizedTensor::quantize(&real, 3).unwrap();
        assert!(q.codes().iter().all(|&c| c == 0));
        assert_eq!(q.scale(), 1.0);
    }

    #[test]
    fn invalid_bit_width_rejected() {
        let real = Tensor::filled(vec![2], 1.0f32);
        assert!(QuantizedTensor::quantize(&real, 1).is_err());
        assert!(QuantizedTensor::quantize(&real, 17).is_err());
    }

    #[test]
    fn from_codes_validates_range() {
        let codes = Tensor::from_vec(vec![2], vec![3, -3]).unwrap();
        assert!(QuantizedTensor::from_codes(codes.clone(), 0.5, 3).is_ok());
        let too_big = Tensor::from_vec(vec![1], vec![4]).unwrap();
        assert!(QuantizedTensor::from_codes(too_big, 0.5, 3).is_err());
    }

    #[test]
    fn rms_error_zero_for_exactly_representable_values() {
        let real = Tensor::from_vec(vec![3], vec![-0.5f32, 0.0, 0.5]).unwrap();
        // With 3 bits and max 0.5 the grid step is 0.5/3; -0.5, 0, 0.5 are on-grid.
        let q = QuantizedTensor::quantize(&real, 3).unwrap();
        let err = q.rms_error(&real).unwrap();
        assert!(err < 1e-6, "rms error was {err}");
    }

    #[test]
    fn rms_error_shape_mismatch() {
        let real = Tensor::filled(vec![3], 0.5f32);
        let q = QuantizedTensor::quantize(&real, 3).unwrap();
        let other = Tensor::filled(vec![4], 0.5f32);
        assert!(q.rms_error(&other).is_err());
    }
}
