//! Packed binary spike planes for word-level sparse traversal.
//!
//! The accelerator processes radix-encoded activations one binary plane per
//! time step: at step `t` the hardware sees bit `T - 1 - t` of every
//! activation level (MSB first).  This module packs those planes into `u64`
//! row words so software models can skip silent regions 64 positions at a
//! time instead of testing one `(pixel, bit)` pair per cycle:
//!
//! * [`BitPlanes`] — all `T` planes of a row-major `[rows, width]` level
//!   array, one packed bit row per `(plane, row)` pair.
//! * [`Occupancy`] — the OR-reduction of the planes: bit `x` of row `r` is
//!   set iff the level at `(r, x)` spikes in *any* time step.  Iterating
//!   the occupancy's set bits visits exactly the pixels that contribute to
//!   an output, which (by the radix shift-and-add identity) is all a
//!   bit-exact sparse execution engine needs.
//! * [`for_each_set_bit`] — word-at-a-time set-bit traversal.
//! * Popcount helpers — the data-dependent operation counts (`adder_ops`)
//!   of the processing units are plane popcounts, computed here in one
//!   pass instead of being stepped in the innermost simulation loop.

/// Bits per packed word.
pub const WORD_BITS: usize = 64;

/// Number of `u64` words needed to hold one packed row of `width` bits.
pub fn words_per_row(width: usize) -> usize {
    width.div_ceil(WORD_BITS).max(1)
}

/// Mask selecting the `time_steps` low bits of a level — the bits a
/// spike train of length `time_steps` can represent.  Levels are masked
/// with this before packing, so levels outside the representable range
/// contribute exactly the bits the cycle-accurate schedule would see.
pub fn level_mask(time_steps: usize) -> i64 {
    if time_steps >= 63 {
        i64::MAX
    } else {
        (1i64 << time_steps) - 1
    }
}

/// Sum of the set bits of `levels` over the full 64-bit words (no plane
/// masking) — the total number of spikes a unit streaming every bit of
/// every level would see.
pub fn popcount_levels(levels: &[i64]) -> u64 {
    levels.iter().map(|&v| v.count_ones() as u64).sum()
}

/// Calls `f(base + position)` for every set bit in the packed row
/// `words`, in ascending position order.  `base` is the absolute index of
/// bit 0 of `words[0]`, so band paths can traverse a sub-row slice
/// without re-deriving `word_index * WORD_BITS` offsets at every call
/// site — the same traversal contract the SIMD bitmask expansion
/// ([`crate::simd::collect_set_bits`]) uses.
pub fn for_each_set_bit(words: &[u64], base: usize, mut f: impl FnMut(usize)) {
    for (word_index, &word) in words.iter().enumerate() {
        let mut remaining = word;
        while remaining != 0 {
            let bit = remaining.trailing_zeros() as usize;
            f(base + word_index * WORD_BITS + bit);
            remaining &= remaining - 1;
        }
    }
}

/// All `T` binary planes of a `[rows, width]` level array, packed into
/// `u64` row words, MSB-first: plane `t` holds bit `T - 1 - t` of each
/// level, matching the accelerator's time-step order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPlanes {
    time_steps: usize,
    rows: usize,
    width: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitPlanes {
    /// Packs a row-major `[rows, width]` level slice into `time_steps`
    /// binary planes.  Levels are masked with [`level_mask`] first.
    ///
    /// # Panics
    ///
    /// Panics when `levels.len() != rows * width`.
    pub fn pack(levels: &[i64], rows: usize, width: usize, time_steps: usize) -> Self {
        assert_eq!(
            levels.len(),
            rows * width,
            "level slice does not match rows x width"
        );
        let wpr = words_per_row(width);
        let mask = level_mask(time_steps);
        let mut data = vec![0u64; time_steps * rows * wpr];
        for t in 0..time_steps {
            let bit = time_steps - 1 - t;
            if bit >= 63 {
                continue; // beyond the i64 payload: never set after masking
            }
            let plane = &mut data[t * rows * wpr..(t + 1) * rows * wpr];
            for row in 0..rows {
                let row_levels = &levels[row * width..(row + 1) * width];
                let row_words = &mut plane[row * wpr..(row + 1) * wpr];
                for (x, &level) in row_levels.iter().enumerate() {
                    if ((level & mask) >> bit) & 1 == 1 {
                        row_words[x / WORD_BITS] |= 1u64 << (x % WORD_BITS);
                    }
                }
            }
        }
        BitPlanes {
            time_steps,
            rows,
            width,
            words_per_row: wpr,
            data,
        }
    }

    /// Number of planes (time steps).
    pub fn time_steps(&self) -> usize {
        self.time_steps
    }

    /// Number of packed rows per plane.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bits per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Packed words per row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The packed words of `row` in plane `t` (time step `t`, MSB first).
    pub fn row(&self, t: usize, row: usize) -> &[u64] {
        let start = (t * self.rows + row) * self.words_per_row;
        &self.data[start..start + self.words_per_row]
    }

    /// Number of spikes in plane `t`.
    pub fn plane_popcount(&self, t: usize) -> u64 {
        let start = t * self.rows * self.words_per_row;
        let end = start + self.rows * self.words_per_row;
        crate::simd::popcount(&self.data[start..end])
    }

    /// Total number of spikes across all planes — equivalently, the sum of
    /// `popcount(level & level_mask(T))` over all levels.
    pub fn popcount(&self) -> u64 {
        crate::simd::popcount(&self.data)
    }

    /// The OR-reduction of all planes: which positions spike at least once.
    pub fn occupancy(&self) -> Occupancy {
        let per_plane = self.rows * self.words_per_row;
        let mut data = vec![0u64; per_plane];
        for t in 0..self.time_steps {
            let plane = &self.data[t * per_plane..(t + 1) * per_plane];
            crate::simd::or_accumulate(&mut data, plane);
        }
        Occupancy {
            rows: self.rows,
            words_per_row: self.words_per_row,
            data,
        }
    }
}

/// Per-position spike occupancy: bit `x` of row `r` is set iff the level
/// at `(r, x)` spikes in at least one time step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Occupancy {
    rows: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl Occupancy {
    /// Builds the occupancy directly from a row-major `[rows, width]` level
    /// slice in one pass: bit `x` of row `r` is set iff
    /// `levels[r * width + x] & level_mask(time_steps) != 0`.  Equivalent
    /// to `BitPlanes::pack(..).occupancy()` without materialising the
    /// planes — the form the hot execution paths use.
    ///
    /// # Panics
    ///
    /// Panics when `levels.len() != rows * width`.
    pub fn from_levels(levels: &[i64], rows: usize, width: usize, time_steps: usize) -> Self {
        assert_eq!(
            levels.len(),
            rows * width,
            "level slice does not match rows x width"
        );
        let wpr = words_per_row(width);
        let mask = level_mask(time_steps);
        let mut data = vec![0u64; rows * wpr];
        for row in 0..rows {
            let row_levels = &levels[row * width..(row + 1) * width];
            let row_words = &mut data[row * wpr..(row + 1) * wpr];
            crate::simd::pack_occupancy_row(row_levels, mask, row_words);
        }
        Occupancy {
            rows,
            words_per_row: wpr,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The packed occupancy words of `row`.
    pub fn row(&self, row: usize) -> &[u64] {
        let start = row * self.words_per_row;
        &self.data[start..start + self.words_per_row]
    }

    /// `true` when no position of `row` ever spikes — lets callers skip
    /// whole rows with one comparison per word.
    pub fn row_is_silent(&self, row: usize) -> bool {
        self.row(row).iter().all(|&w| w == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_mask_matches_representable_range() {
        assert_eq!(level_mask(0), 0);
        assert_eq!(level_mask(1), 1);
        assert_eq!(level_mask(3), 7);
        assert_eq!(level_mask(63), i64::MAX);
        assert_eq!(level_mask(80), i64::MAX);
    }

    #[test]
    fn planes_are_msb_first() {
        // Level 6 = 0b110 over T=3: spikes at t=0 (bit 2) and t=1 (bit 1).
        let planes = BitPlanes::pack(&[6], 1, 1, 3);
        assert_eq!(planes.row(0, 0), &[1]);
        assert_eq!(planes.row(1, 0), &[1]);
        assert_eq!(planes.row(2, 0), &[0]);
    }

    #[test]
    fn packing_matches_shift_and_test() {
        let levels: Vec<i64> = (0..150).map(|v| (v * 37) % 16).collect();
        let (rows, width, t_steps) = (2, 75, 4);
        let planes = BitPlanes::pack(&levels, rows, width, t_steps);
        for t in 0..t_steps {
            let bit = t_steps - 1 - t;
            for row in 0..rows {
                let words = planes.row(t, row);
                for x in 0..width {
                    let expected = (levels[row * width + x] >> bit) & 1 == 1;
                    let actual = words[x / WORD_BITS] >> (x % WORD_BITS) & 1 == 1;
                    assert_eq!(actual, expected, "t={t} row={row} x={x}");
                }
            }
        }
    }

    #[test]
    fn popcounts_match_masked_level_popcounts() {
        let levels: Vec<i64> = (0..40).map(|v| (v * 91) % 64).collect();
        let planes = BitPlanes::pack(&levels, 4, 10, 3);
        let expected: u64 = levels.iter().map(|&v| (v & 7).count_ones() as u64).sum();
        assert_eq!(planes.popcount(), expected);
        let per_plane: u64 = (0..3).map(|t| planes.plane_popcount(t)).sum();
        assert_eq!(per_plane, expected);
    }

    #[test]
    fn occupancy_is_or_of_planes() {
        let levels = vec![0i64, 1, 4, 0, 6, 0, 0, 7];
        let planes = BitPlanes::pack(&levels, 2, 4, 3);
        let occ = planes.occupancy();
        let mut set = Vec::new();
        for row in 0..2 {
            for_each_set_bit(occ.row(row), 0, |x| set.push((row, x)));
        }
        assert_eq!(set, vec![(0, 1), (0, 2), (1, 0), (1, 3)]);
        assert!(!occ.row_is_silent(0));
        let silent = BitPlanes::pack(&[0, 0, 0], 1, 3, 5).occupancy();
        assert!(silent.row_is_silent(0));
    }

    #[test]
    fn from_levels_matches_packed_plane_occupancy() {
        let levels: Vec<i64> = (0..90).map(|v| ((v * 53) % 9) as i64 - 1).collect();
        for t_steps in [0, 1, 3, 7] {
            let via_planes = BitPlanes::pack(&levels, 3, 30, t_steps).occupancy();
            let direct = Occupancy::from_levels(&levels, 3, 30, t_steps);
            assert_eq!(direct, via_planes, "T={t_steps}");
        }
    }

    #[test]
    fn set_bit_iteration_crosses_word_boundaries() {
        let levels: Vec<i64> = (0..130).map(|x| i64::from(x % 67 == 0)).collect();
        let planes = BitPlanes::pack(&levels, 1, 130, 1);
        let mut hits = Vec::new();
        for_each_set_bit(planes.row(0, 0), 0, |x| hits.push(x));
        assert_eq!(hits, vec![0, 67]);
        let mut offset_hits = Vec::new();
        for_each_set_bit(planes.row(0, 0), 1000, |x| offset_hits.push(x));
        assert_eq!(offset_hits, vec![1000, 1067]);
    }

    #[test]
    fn negative_levels_pack_only_the_masked_payload() {
        // -1 has every payload bit set; with T=2 only the two low bits
        // survive the mask, exactly what the cycle-by-cycle schedule sees.
        let planes = BitPlanes::pack(&[-1], 1, 1, 2);
        assert_eq!(planes.popcount(), 2);
    }

    #[test]
    fn zero_time_steps_produce_no_planes() {
        let planes = BitPlanes::pack(&[5, 3], 1, 2, 0);
        assert_eq!(planes.popcount(), 0);
        assert!(planes.occupancy().row_is_silent(0));
    }

    #[test]
    #[should_panic(expected = "rows x width")]
    fn mismatched_slice_is_rejected() {
        BitPlanes::pack(&[1, 2, 3], 2, 2, 1);
    }
}
