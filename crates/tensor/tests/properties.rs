//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use snn_tensor::{ops, quant::QuantizedTensor, Shape, Tensor};

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

proptest! {
    /// Every in-bounds multi-index maps to a unique linear offset below the
    /// volume, and the mapping agrees with the strides.
    #[test]
    fn linear_index_is_bijective(dims in small_dims()) {
        let shape = Shape::new(dims.clone());
        let volume = shape.volume();
        let mut seen = vec![false; volume];
        let mut index = vec![0usize; dims.len()];
        loop {
            let lin = shape.linear_index(&index).expect("in-bounds index");
            prop_assert!(lin < volume);
            prop_assert!(!seen[lin], "duplicate linear index {lin}");
            seen[lin] = true;
            // Odometer increment.
            let mut axis = dims.len();
            loop {
                if axis == 0 { break; }
                axis -= 1;
                index[axis] += 1;
                if index[axis] < dims[axis] { break; }
                index[axis] = 0;
                if axis == 0 {
                    prop_assert!(seen.iter().all(|&s| s));
                    return Ok(());
                }
            }
            if index.iter().all(|&i| i == 0) { break; }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Convolving with an all-ones 1x1 kernel is the identity.
    #[test]
    fn conv_with_unit_kernel_is_identity(
        h in 1usize..8,
        w in 1usize..8,
        values in prop::collection::vec(-8i32..8, 1..64),
    ) {
        let mut data = values;
        data.resize(h * w, 0);
        let input = Tensor::from_vec(vec![1, h, w], data).unwrap();
        let kernel = Tensor::from_vec(vec![1, 1, 1, 1], vec![1i32]).unwrap();
        let out = ops::conv2d(&input, &kernel, None, 1, 0).unwrap();
        prop_assert_eq!(out.as_slice(), input.as_slice());
    }

    /// Convolution is linear in the input: conv(a + b) == conv(a) + conv(b).
    #[test]
    fn conv_is_linear_in_input(
        a in prop::collection::vec(-4i32..4, 16),
        b in prop::collection::vec(-4i32..4, 16),
        k in prop::collection::vec(-2i32..3, 9),
    ) {
        let ta = Tensor::from_vec(vec![1, 4, 4], a.clone()).unwrap();
        let tb = Tensor::from_vec(vec![1, 4, 4], b.clone()).unwrap();
        let sum = Tensor::from_vec(
            vec![1, 4, 4],
            a.iter().zip(b.iter()).map(|(x, y)| x + y).collect(),
        ).unwrap();
        let kernel = Tensor::from_vec(vec![1, 1, 3, 3], k).unwrap();
        let ca = ops::conv2d(&ta, &kernel, None, 1, 0).unwrap();
        let cb = ops::conv2d(&tb, &kernel, None, 1, 0).unwrap();
        let csum = ops::conv2d(&sum, &kernel, None, 1, 0).unwrap();
        let expected: Vec<i32> = ca.iter().zip(cb.iter()).map(|(x, y)| x + y).collect();
        prop_assert_eq!(csum.as_slice(), &expected[..]);
    }

    /// Max pooling never produces a value absent from the input window and
    /// dominates average pooling.
    #[test]
    fn max_pool_dominates_avg_pool(values in prop::collection::vec(-50i32..50, 16)) {
        let input = Tensor::from_vec(vec![1, 4, 4], values).unwrap();
        let max = ops::max_pool2d(&input, 2).unwrap();
        let avg = ops::avg_pool2d(&input, 2).unwrap();
        for (m, a) in max.iter().zip(avg.iter()) {
            prop_assert!(m >= a, "max {m} < avg {a}");
        }
        for m in max.iter() {
            prop_assert!(input.iter().any(|v| v == m));
        }
    }

    /// Sum pooling equals window*window times average pooling for windows
    /// that divide evenly (floats, no truncation).
    #[test]
    fn sum_pool_matches_scaled_avg_pool(values in prop::collection::vec(-10.0f32..10.0, 16)) {
        let input = Tensor::from_vec(vec![1, 4, 4], values).unwrap();
        let sum = ops::sum_pool2d(&input, 2).unwrap();
        let avg = ops::avg_pool2d(&input, 2).unwrap();
        for (s, a) in sum.iter().zip(avg.iter()) {
            prop_assert!((s - a * 4.0).abs() < 1e-4);
        }
    }

    /// ReLU output is non-negative and fixed-point free: relu(relu(x)) == relu(x).
    #[test]
    fn relu_is_idempotent(values in prop::collection::vec(-100i32..100, 1..32)) {
        let len = values.len();
        let t = Tensor::from_vec(vec![len], values).unwrap();
        let once = ops::relu(&t);
        let twice = ops::relu(&once);
        prop_assert!(once.iter().all(|&v| v >= 0));
        prop_assert_eq!(once.as_slice(), twice.as_slice());
    }

    /// Linear layer distributes over input addition.
    #[test]
    fn linear_is_additive(
        a in prop::collection::vec(-5i32..5, 6),
        b in prop::collection::vec(-5i32..5, 6),
        w in prop::collection::vec(-3i32..3, 12),
    ) {
        let ta = Tensor::from_vec(vec![6], a.clone()).unwrap();
        let tb = Tensor::from_vec(vec![6], b.clone()).unwrap();
        let tsum = Tensor::from_vec(
            vec![6],
            a.iter().zip(b.iter()).map(|(x, y)| x + y).collect(),
        ).unwrap();
        let weight = Tensor::from_vec(vec![2, 6], w).unwrap();
        let la = ops::linear(&ta, &weight, None).unwrap();
        let lb = ops::linear(&tb, &weight, None).unwrap();
        let lsum = ops::linear(&tsum, &weight, None).unwrap();
        let expected: Vec<i32> = la.iter().zip(lb.iter()).map(|(x, y)| x + y).collect();
        prop_assert_eq!(lsum.as_slice(), &expected[..]);
    }

    /// Quantization round-trip error is bounded by half the quantization step.
    #[test]
    fn quantization_error_within_half_step(
        values in prop::collection::vec(-2.0f32..2.0, 1..64),
        bits in 2u8..9,
    ) {
        let len = values.len();
        let real = Tensor::from_vec(vec![len], values).unwrap();
        let q = QuantizedTensor::quantize(&real, bits).unwrap();
        let deq = q.dequantize();
        for (orig, back) in real.iter().zip(deq.iter()) {
            prop_assert!((orig - back).abs() <= q.scale() / 2.0 + 1e-5);
        }
    }

    /// Quantized codes never exceed the symmetric range for the bit width.
    #[test]
    fn quantized_codes_stay_in_range(
        values in prop::collection::vec(-100.0f32..100.0, 1..64),
        bits in 2u8..9,
    ) {
        let len = values.len();
        let real = Tensor::from_vec(vec![len], values).unwrap();
        let q = QuantizedTensor::quantize(&real, bits).unwrap();
        let max_code = QuantizedTensor::max_code_for(bits);
        prop_assert!(q.codes().iter().all(|&c| c.abs() <= max_code));
    }
}
