//! Property tests pinning the runtime-dispatched SIMD kernels **bit-exact**
//! against the always-compiled scalar oracle, and the bit-plane structures
//! (which now route through those kernels) against per-bit walks — over
//! arbitrary densities, widths crossing `u64` word boundaries, and
//! all-silent rows.
//!
//! The dispatched level is whatever the host (and `SNN_SIMD`) resolves to;
//! CI runs this suite both with the default dispatch and with `SNN_SIMD=0`,
//! so every compiled path is pinned against the same oracle.

use proptest::prelude::*;
use snn_tensor::bitplane::{self, BitPlanes, Occupancy, WORD_BITS};
use snn_tensor::simd::{self, scalar};

/// Level rows with controllable spike density: `density` scales how many
/// positions carry non-zero levels (0 = all silent).
/// `density` in `0..=8` scales how many positions carry non-zero levels
/// (0 = all silent); `seed` makes the contents arbitrary but reproducible.
fn level_row(len: usize, density: u64, seed: u64) -> Vec<i64> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(seed)
                .wrapping_mul(0x2545_f491_4f6c_dd1d);
            if x % 8 < density {
                (x >> 32) as i64 & 0xff
            } else {
                0
            }
        })
        .collect()
}

/// Packed word rows with controllable density (0 = all zero).
fn word_row(len: usize, density: u64, seed: u64) -> Vec<u64> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(0xdead_beef_cafe_babe)
                .wrapping_add(seed)
                .wrapping_mul(0x2545_f491_4f6c_dd1d);
            match density {
                0 => 0,
                1 => x & x >> 7 & x >> 13, // sparse
                2 => x,
                3 => x | x >> 3, // dense
                _ => u64::MAX,
            }
        })
        .collect()
}

/// Bounded pseudo-random `i64` in `(-bound, bound)` from an index/seed pair.
fn small_i64(i: usize, seed: u64, bound: u64) -> i64 {
    ((i as u64)
        .wrapping_mul(2654435761)
        .wrapping_add(seed)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        % (2 * bound)) as i64
        - bound as i64
}

proptest! {
    /// Occupancy OR-reduction: the dispatched kernel equals the scalar
    /// word loop for any accumulator/source contents.
    #[test]
    fn or_accumulate_matches_scalar_oracle(
        len in 0usize..9,
        density in 0u64..5,
        seed in 0u64..u64::MAX,
    ) {
        let src = word_row(len, density, seed);
        let mut acc: Vec<u64> = (0..len as u64)
            .map(|i| i.wrapping_mul(seed))
            .collect();
        let mut oracle = acc.clone();
        simd::or_accumulate(&mut acc, &src);
        scalar::or_accumulate(&mut oracle, &src);
        prop_assert_eq!(acc, oracle);
    }

    /// Plane popcount: dispatched kernel equals the scalar sum for any
    /// density, including the empty slice.
    #[test]
    fn popcount_matches_scalar_oracle(
        len in 0usize..17,
        density in 0u64..5,
        seed in 0u64..u64::MAX,
    ) {
        let words = word_row(len, density, seed);
        prop_assert_eq!(simd::popcount(&words), scalar::popcount(&words));
    }

    /// Occupancy row packing: bit `x` set iff `levels[x] & mask != 0`,
    /// for widths crossing word boundaries and any mask — dispatched and
    /// scalar paths agree, and both match the per-position definition.
    #[test]
    fn pack_occupancy_row_matches_definition(
        len in 1usize..200,
        density in 0u64..=8,
        seed in 0u64..u64::MAX,
        time_steps in 0usize..65,
    ) {
        let levels = level_row(len, density, seed);
        let mask = bitplane::level_mask(time_steps);
        let words = bitplane::words_per_row(levels.len());
        let mut fast = vec![u64::MAX; words];
        let mut slow = vec![0u64; words];
        simd::pack_occupancy_row(&levels, mask, &mut fast);
        scalar::pack_occupancy_row(&levels, mask, &mut slow);
        prop_assert_eq!(&fast, &slow);
        for (x, &level) in levels.iter().enumerate() {
            let bit = fast[x / WORD_BITS] >> (x % WORD_BITS) & 1 == 1;
            prop_assert_eq!(bit, level & mask != 0, "x={}", x);
        }
    }

    /// Dense gather/accumulate (`out += c * x`): dispatched kernel equals
    /// the scalar loop for any length and coefficient.
    #[test]
    fn axpy_matches_scalar_oracle(
        x in prop::collection::vec(-1000i64..1000, 0..130),
        c in -1000i64..1000,
        seed in 0u64..u64::MAX,
    ) {
        let mut fast: Vec<i64> = (0..x.len()).map(|i| small_i64(i, seed, 1024)).collect();
        let mut slow = fast.clone();
        simd::axpy_i64(&mut fast, &x, c);
        scalar::axpy_i64(&mut slow, &x, c);
        prop_assert_eq!(fast, slow);
    }

    /// Dense dot product: dispatched kernel equals the scalar loop.
    #[test]
    fn dot_matches_scalar_oracle(
        a in prop::collection::vec(-1000i64..1000, 0..130),
        seed in 0u64..u64::MAX,
    ) {
        let b: Vec<i64> = (0..a.len()).map(|i| small_i64(i, seed, 1000)).collect();
        prop_assert_eq!(simd::dot_i64(&a, &b), scalar::dot_i64(&a, &b));
    }

    /// Word-batched bitmask expansion: same positions, same (ascending)
    /// order as the per-bit oracle walk, for any base offset — and the
    /// closure-based `for_each_set_bit` agrees with both.
    #[test]
    fn set_bit_expansion_matches_plain_walk(
        len in 0usize..9,
        density in 0u64..5,
        seed in 0u64..u64::MAX,
        base in 0usize..100_000,
    ) {
        let words = word_row(len, density, seed);
        let mut dispatched = Vec::new();
        simd::collect_set_bits(&words, base, &mut dispatched);
        let mut plain = Vec::new();
        scalar::collect_set_bits(&words, base, &mut plain);
        prop_assert_eq!(&dispatched, &plain);
        let mut batched = Vec::new();
        scalar::collect_set_bits_batched(&words, base, &mut batched);
        prop_assert_eq!(&dispatched, &batched);
        let mut walked = Vec::new();
        bitplane::for_each_set_bit(&words, base, |p| walked.push(p as u32));
        prop_assert_eq!(&dispatched, &walked);
        let mut sorted = dispatched.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&dispatched, &sorted, "positions must ascend");
    }

    /// The bit-plane structures (routed through the SIMD kernels) keep
    /// their definitions: popcounts equal the masked-level popcounts and
    /// the one-pass occupancy equals the OR of the packed planes.
    #[test]
    fn bitplane_structures_keep_their_definitions(
        width in 1usize..150,
        density in 0u64..=8,
        seed in 0u64..u64::MAX,
        rows in 1usize..4,
        time_steps in 0usize..9,
    ) {
        let levels = level_row(width, density, seed);
        let mut all = Vec::with_capacity(rows * width);
        for r in 0..rows {
            all.extend(levels.iter().map(|&v| v.rotate_left(r as u32)));
        }
        let planes = BitPlanes::pack(&all, rows, width, time_steps);
        let mask = bitplane::level_mask(time_steps);
        let expected: u64 = all.iter().map(|&v| u64::from((v & mask).count_ones())).sum();
        prop_assert_eq!(planes.popcount(), expected);
        let per_plane: u64 = (0..time_steps).map(|t| planes.plane_popcount(t)).sum();
        prop_assert_eq!(per_plane, expected);
        let direct = Occupancy::from_levels(&all, rows, width, time_steps);
        prop_assert_eq!(&direct, &planes.occupancy());
        for r in 0..rows {
            let silent = (0..width).all(|x| all[r * width + x] & mask == 0);
            prop_assert_eq!(direct.row_is_silent(r), silent, "row {}", r);
        }
    }
}
