//! # snn-baselines
//!
//! Comparison models of the prior SNN FPGA accelerators the paper evaluates
//! against (Table III), plus a rate-encoded variant of our own accelerator
//! used to quantify the benefit of radix encoding.
//!
//! * [`published`] — the operating points published by Ju et al. \[12\] and
//!   Fang et al. \[11\] as they appear in Table III (latency, throughput,
//!   power, resources).  These are measured numbers from the respective
//!   papers, not simulations.
//! * [`rate_equivalent`] — a what-if model: the same hardware architecture
//!   driven by rate-encoded spike trains, which need `2^T - 1` time steps to
//!   reach the resolution a radix train achieves in `T` steps.  This
//!   isolates the contribution of the encoding scheme (the ~40% efficiency
//!   claim of Section IV-B and the long-spike-train problem of Section I).
//! * [`comparison`] — assembles Table III rows from published baselines and
//!   our own design reports, and computes the improvement factors the paper
//!   quotes (18× latency vs. Fang et al., 15× throughput vs. Ju et al.,
//!   25% power saving).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comparison;
pub mod published;
pub mod rate_equivalent;
