//! Published operating points of the prior accelerators compared against in
//! Table III.
//!
//! The values are taken verbatim from the paper's Table III (which in turn
//! cites Ju et al. \[12\] and Fang et al. \[11\]); they describe physical FPGA
//! implementations, so this crate treats them as measured constants rather
//! than trying to re-simulate third-party hardware.

use serde::{Deserialize, Serialize};

/// One accelerator operating point as reported in Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishedResult {
    /// Work / platform label, e.g. `"Ju et al. \[12\]"`.
    pub label: String,
    /// Dataset evaluated.
    pub dataset: String,
    /// Network description.
    pub network: String,
    /// Classification accuracy in percent.
    pub accuracy_pct: f64,
    /// Clock frequency in MHz.
    pub frequency_mhz: f64,
    /// Inference latency in microseconds.
    pub latency_us: f64,
    /// Throughput in frames per second.
    pub throughput_fps: f64,
    /// Power in watts.
    pub power_w: f64,
    /// Lookup tables used.
    pub luts: u64,
    /// Flip-flops used.
    pub flip_flops: u64,
}

impl PublishedResult {
    /// Energy per inference in millijoules.
    pub fn energy_per_inference_mj(&self) -> f64 {
        self.power_w * self.latency_us * 1e-3
    }
}

/// Ju et al. \[12\]: SNN engine in the programmable logic of a Xilinx Zynq,
/// MNIST CNN `28x28 – 64C5 – 2P – 64C5 – 2P – 128 – 10`.
pub fn ju_et_al() -> PublishedResult {
    PublishedResult {
        label: "Ju et al. [12]".to_string(),
        dataset: "MNIST".to_string(),
        network: "CNN-1 (64C5-2P-64C5-2P-128-10)".to_string(),
        accuracy_pct: 98.9,
        frequency_mhz: 150.0,
        latency_us: 6110.0,
        throughput_fps: 164.0,
        power_w: 4.6,
        luts: 107_000,
        flip_flops: 67_000,
    }
}

/// Fang et al. \[11\]: HLS-generated SNN accelerator, MNIST CNN
/// `28x28 – 32C3 – P2 – 32C3 – P2 – 256 – 10`.
pub fn fang_et_al() -> PublishedResult {
    PublishedResult {
        label: "Fang et al. [11]".to_string(),
        dataset: "MNIST".to_string(),
        network: "CNN-2 (32C3-P2-32C3-P2-256-10)".to_string(),
        accuracy_pct: 99.2,
        frequency_mhz: 125.0,
        latency_us: 7530.0,
        throughput_fps: 2124.0,
        power_w: 4.5,
        luts: 156_000,
        flip_flops: 233_000,
    }
}

/// This work's published operating points (Table III), used to validate the
/// simulator's own estimates against what the authors measured on the
/// XCVU13P.
pub mod this_work {
    use super::PublishedResult;

    /// This work running the CNN of Fang et al. (CNN-2) at 200 MHz.
    pub fn fang_cnn() -> PublishedResult {
        PublishedResult {
            label: "This work (CNN-2)".to_string(),
            dataset: "MNIST".to_string(),
            network: "CNN-2 (32C3-P2-32C3-P2-256-10)".to_string(),
            accuracy_pct: 99.3,
            frequency_mhz: 200.0,
            latency_us: 409.0,
            throughput_fps: 2445.0,
            power_w: 3.6,
            luts: 41_000,
            flip_flops: 36_000,
        }
    }

    /// This work running LeNet-5 at 200 MHz with four convolution units.
    pub fn lenet5() -> PublishedResult {
        PublishedResult {
            label: "This work (LeNet-5)".to_string(),
            dataset: "MNIST".to_string(),
            network: "LeNet-5".to_string(),
            accuracy_pct: 99.1,
            frequency_mhz: 200.0,
            latency_us: 294.0,
            throughput_fps: 3380.0,
            power_w: 3.4,
            luts: 27_000,
            flip_flops: 24_000,
        }
    }

    /// This work running VGG-11 on CIFAR-100 at 115 MHz with eight
    /// convolution units and DRAM-resident weights.
    pub fn vgg11() -> PublishedResult {
        PublishedResult {
            label: "This work (VGG-11)".to_string(),
            dataset: "CIFAR-100".to_string(),
            network: "VGG-11".to_string(),
            accuracy_pct: 60.1,
            frequency_mhz: 115.0,
            latency_us: 210_000.0,
            throughput_fps: 4.7,
            power_w: 4.9,
            luts: 88_000,
            flip_flops: 84_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_improvement_factors_match_the_papers_claims() {
        let fang = fang_et_al();
        let ju = ju_et_al();
        let ours_cnn2 = this_work::fang_cnn();
        // "they exceed our latency 18-fold"
        let latency_factor = fang.latency_us / ours_cnn2.latency_us;
        assert!((17.0..20.0).contains(&latency_factor), "{latency_factor}");
        // "and the power consumption by 25%"
        let power_factor = fang.power_w / ours_cnn2.power_w;
        assert!((1.2..1.3).contains(&power_factor), "{power_factor}");
        // "We improved the throughput by 15x" (vs Ju et al.)
        let throughput_factor = ours_cnn2.throughput_fps / ju.throughput_fps;
        assert!(
            (14.0..16.0).contains(&throughput_factor),
            "{throughput_factor}"
        );
        // "almost 4x of lookup tables and 6x of flip-flops"
        assert!((fang.luts as f64 / ours_cnn2.luts as f64) > 3.5);
        assert!((fang.flip_flops as f64 / ours_cnn2.flip_flops as f64) > 6.0);
    }

    #[test]
    fn energy_per_inference_is_consistent() {
        let ju = ju_et_al();
        // 4.6 W * 6110 us = 28.1 mJ
        assert!((ju.energy_per_inference_mj() - 28.106).abs() < 0.01);
        let ours = this_work::lenet5();
        assert!(ours.energy_per_inference_mj() < ju.energy_per_inference_mj());
    }

    #[test]
    fn throughput_and_latency_are_roughly_reciprocal_for_this_work() {
        // The paper's own rows satisfy throughput ≈ 1e6 / latency within
        // pipeline effects.
        let lenet = this_work::lenet5();
        let implied = 1.0e6 / lenet.latency_us;
        assert!((implied - lenet.throughput_fps).abs() / lenet.throughput_fps < 0.05);
    }
}
