//! Rate-encoding what-if model.
//!
//! Traditional SNN accelerators use rate encoding, where the spike count —
//! not the spike order — carries the information.  To distinguish `2^T`
//! activation levels a rate code needs `2^T - 1` time steps, whereas radix
//! encoding needs only `T`.  Because the accelerator replicates almost all
//! computation per time step, running the *same* hardware with rate codes
//! multiplies latency and energy by that factor.  This module quantifies
//! the gap, which is the central motivation of the paper (Section I) and of
//! the encoding ablation in the benchmark suite.

use serde::{Deserialize, Serialize};
use snn_accel::config::AcceleratorConfig;
use snn_accel::timing::{network_timing, TimingReport};
use snn_accel::Result;
use snn_model::NetworkSpec;

/// Latency comparison between radix and rate encoding at equal activation
/// resolution on the same accelerator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodingLatency {
    /// Radix spike-train length `T`.
    pub radix_steps: usize,
    /// Rate spike-train length needed for the same resolution (`2^T - 1`).
    pub rate_steps: usize,
    /// Predicted latency with radix encoding, in cycles.
    pub radix_cycles: u64,
    /// Predicted latency with rate encoding, in cycles.
    pub rate_cycles: u64,
}

impl EncodingLatency {
    /// How many times slower the rate-encoded execution is.
    pub fn slowdown(&self) -> f64 {
        self.rate_cycles as f64 / self.radix_cycles.max(1) as f64
    }
}

/// Number of rate-encoding time steps needed to match the resolution of a
/// radix train of `radix_steps` steps.
pub fn equivalent_rate_steps(radix_steps: usize) -> usize {
    (1usize << radix_steps) - 1
}

/// Predicts the latency of a network under radix and under
/// resolution-equivalent rate encoding on the same accelerator.
///
/// # Errors
///
/// Propagates mapping errors from the timing model.
pub fn compare_encodings(
    config: &AcceleratorConfig,
    net: &NetworkSpec,
    radix_steps: usize,
) -> Result<EncodingLatency> {
    let rate_steps = equivalent_rate_steps(radix_steps);
    let radix: TimingReport = network_timing(config, net, radix_steps)?;
    let rate: TimingReport = network_timing(config, net, rate_steps)?;
    Ok(EncodingLatency {
        radix_steps,
        rate_steps,
        radix_cycles: radix.total_cycles(),
        rate_cycles: rate.total_cycles(),
    })
}

/// The efficiency improvement attributable to the encoding alone, as the
/// paper argues in Section IV-B: Fang et al. need about `rate_steps` time
/// steps to reach the accuracy radix encoding reaches in `radix_steps`.
///
/// Returns the fractional latency reduction (e.g. `0.4` for 40%).
pub fn encoding_efficiency_gain(radix_steps: usize, competitor_steps: usize) -> f64 {
    1.0 - radix_steps as f64 / competitor_steps as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_model::zoo;

    #[test]
    fn rate_steps_grow_exponentially() {
        assert_eq!(equivalent_rate_steps(3), 7);
        assert_eq!(equivalent_rate_steps(6), 63);
        assert_eq!(equivalent_rate_steps(10), 1023);
    }

    #[test]
    fn rate_encoding_is_many_times_slower_at_equal_resolution() {
        let cfg = AcceleratorConfig::lenet_experiment(2);
        let cmp = compare_encodings(&cfg, &zoo::lenet5(), 6).unwrap();
        assert_eq!(cmp.rate_steps, 63);
        // Latency is dominated by per-time-step work, so the slowdown should
        // be close to 63/6 = 10.5x.
        assert!(
            (8.0..11.0).contains(&cmp.slowdown()),
            "slowdown {}",
            cmp.slowdown()
        );
    }

    #[test]
    fn slowdown_grows_with_resolution() {
        let cfg = AcceleratorConfig::lenet_experiment(2);
        let s3 = compare_encodings(&cfg, &zoo::lenet5(), 3)
            .unwrap()
            .slowdown();
        let s6 = compare_encodings(&cfg, &zoo::lenet5(), 6)
            .unwrap()
            .slowdown();
        assert!(s6 > s3);
    }

    #[test]
    fn paper_claims_forty_percent_gain_over_fang() {
        // Section IV-B: radix needs 6 steps where Fang et al. need ~10, a
        // potential efficiency improvement of around 40%.
        let gain = encoding_efficiency_gain(6, 10);
        assert!((gain - 0.4).abs() < 1e-9);
    }
}
