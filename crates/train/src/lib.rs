//! # snn-train
//!
//! A minimal from-scratch SGD/backpropagation trainer for the feed-forward
//! CNNs described by `snn-model`.
//!
//! The paper does not train on the accelerator: SNN models are obtained by
//! training an **equivalent ANN** and converting it (Section IV-A).  This
//! crate provides that training substrate so the accuracy experiments
//! (Table I) can be reproduced end-to-end on the synthetic datasets from
//! `snn-data`:
//!
//! * [`loss`] — softmax cross-entropy and its gradient.
//! * [`grad`] — backward passes of convolution, pooling, ReLU and
//!   fully-connected layers.
//! * [`optimizer`] — stochastic gradient descent with momentum.
//! * [`trainer`] — the mini-batch training loop and evaluation helpers.
//!
//! # Example
//!
//! ```
//! use snn_data::digits::SyntheticDigits;
//! use snn_model::{params::Parameters, zoo};
//! use snn_train::trainer::{Trainer, TrainingConfig};
//!
//! let dataset = SyntheticDigits::new(12).generate(40, 1).split(0.75);
//! let net = zoo::tiny_cnn();
//! let mut params = Parameters::he_init(&net, 7)?;
//! let config = TrainingConfig { epochs: 1, ..TrainingConfig::default() };
//! let report = Trainer::new(config).train(&net, &mut params, &dataset.train)?;
//! assert_eq!(report.epoch_losses.len(), 1);
//! # Ok::<(), snn_train::TrainError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod grad;
pub mod loss;
pub mod metrics;
pub mod optimizer;
pub mod trainer;

pub use error::TrainError;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, TrainError>;
