//! Mini training loop: per-sample SGD over a labelled dataset.

use crate::grad::{
    avg_pool2d_backward, conv2d_backward, linear_backward, max_pool2d_backward, relu_backward,
};
use crate::loss::cross_entropy_with_grad;
use crate::optimizer::Sgd;
use crate::{Result, TrainError};
use serde::{Deserialize, Serialize};
use snn_data::Dataset;
use snn_model::layer::PoolKind;
use snn_model::params::Parameters;
use snn_model::{forward, LayerSpec, NetworkSpec};
use snn_tensor::{ops, Tensor};

/// Hyper-parameters of the training loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum coefficient.
    pub momentum: f32,
    /// Multiplicative learning-rate decay applied after every epoch.
    pub lr_decay: f32,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            epochs: 5,
            learning_rate: 0.01,
            momentum: 0.9,
            lr_decay: 0.9,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean cross-entropy loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Training-set accuracy after the final epoch.
    pub final_train_accuracy: f32,
}

/// Per-layer values cached during the forward pass for use by backprop.
struct LayerCache {
    /// The layer's input.
    input: Tensor<f32>,
    /// Pre-ReLU output of weighted layers (`None` for pooling/flatten and
    /// the classifier layer, which has no ReLU).
    pre_activation: Option<Tensor<f32>>,
}

/// The trainer: owns the hyper-parameters, borrows network and parameters
/// per call.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainingConfig,
}

impl Trainer {
    /// Creates a trainer with the given hyper-parameters.
    pub fn new(config: TrainingConfig) -> Self {
        Trainer { config }
    }

    /// The configured hyper-parameters.
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    /// Trains `params` in place on `dataset` and returns a report.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidDataset`] for an empty dataset,
    /// [`TrainError::InvalidConfig`] for zero epochs, and propagates shape
    /// errors from the model crates.
    pub fn train(
        &self,
        net: &NetworkSpec,
        params: &mut Parameters,
        dataset: &Dataset,
    ) -> Result<TrainReport> {
        if dataset.is_empty() {
            return Err(TrainError::InvalidDataset {
                context: "training dataset is empty".to_string(),
            });
        }
        if self.config.epochs == 0 {
            return Err(TrainError::InvalidConfig {
                context: "epochs must be at least 1".to_string(),
            });
        }
        if dataset.num_classes() != net.num_classes() {
            return Err(TrainError::InvalidDataset {
                context: format!(
                    "dataset has {} classes but the network outputs {}",
                    dataset.num_classes(),
                    net.num_classes()
                ),
            });
        }

        let mut sgd = Sgd::new(self.config.learning_rate, self.config.momentum);
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        for _epoch in 0..self.config.epochs {
            let mut loss_sum = 0.0f32;
            for (input, label) in dataset.iter() {
                loss_sum += self.train_sample(net, params, &mut sgd, input, label)?;
            }
            epoch_losses.push(loss_sum / dataset.len() as f32);
            sgd.set_learning_rate((sgd.learning_rate() * self.config.lr_decay).max(1e-6));
        }

        let final_train_accuracy = forward::evaluate(net, params, dataset.iter())?;
        Ok(TrainReport {
            epoch_losses,
            final_train_accuracy,
        })
    }

    /// One forward/backward/update step on a single sample; returns the
    /// sample loss.
    fn train_sample(
        &self,
        net: &NetworkSpec,
        params: &mut Parameters,
        sgd: &mut Sgd,
        input: &Tensor<f32>,
        label: usize,
    ) -> Result<f32> {
        let (caches, logits) = forward_cached(net, params, input)?;
        let (loss, mut grad) = cross_entropy_with_grad(&logits, label);

        // Backward pass, updating parameters as we go.
        let last_layer = net.layers().len() - 1;
        for (i, layer) in net.layers().iter().enumerate().rev() {
            let cache = &caches[i];
            match *layer {
                LayerSpec::Conv2d {
                    stride, padding, ..
                } => {
                    if i != last_layer {
                        let pre = cache
                            .pre_activation
                            .as_ref()
                            .expect("weighted hidden layer caches its pre-activation");
                        grad = relu_backward(pre, &grad);
                    }
                    let lp = params.layer(i).expect("validated parameters");
                    let grads = conv2d_backward(&cache.input, &lp.weight, &grad, stride, padding)?;
                    let lp_mut = params.layer_weights_mut()[i]
                        .as_mut()
                        .expect("validated parameters");
                    sgd.step(&format!("w{i}"), &mut lp_mut.weight, &grads.weight);
                    sgd.step(&format!("b{i}"), &mut lp_mut.bias, &grads.bias);
                    grad = grads.input;
                }
                LayerSpec::Linear { .. } => {
                    if i != last_layer {
                        let pre = cache
                            .pre_activation
                            .as_ref()
                            .expect("weighted hidden layer caches its pre-activation");
                        grad = relu_backward(pre, &grad);
                    }
                    let lp = params.layer(i).expect("validated parameters");
                    let grads = linear_backward(&cache.input, &lp.weight, &grad)?;
                    let lp_mut = params.layer_weights_mut()[i]
                        .as_mut()
                        .expect("validated parameters");
                    sgd.step(&format!("w{i}"), &mut lp_mut.weight, &grads.weight);
                    sgd.step(&format!("b{i}"), &mut lp_mut.bias, &grads.bias);
                    grad = grads.input;
                }
                LayerSpec::Pool { kind, window } => {
                    grad = match kind {
                        PoolKind::Average => {
                            avg_pool2d_backward(cache.input.shape().dims(), &grad, window)?
                        }
                        PoolKind::Max => max_pool2d_backward(&cache.input, &grad, window)?,
                    };
                }
                LayerSpec::Flatten => {
                    grad = grad.reshape(cache.input.shape().dims().to_vec())?;
                }
            }
        }
        Ok(loss)
    }
}

/// Forward pass that caches layer inputs and pre-activations for backprop.
fn forward_cached(
    net: &NetworkSpec,
    params: &Parameters,
    input: &Tensor<f32>,
) -> Result<(Vec<LayerCache>, Tensor<f32>)> {
    let last_layer = net.layers().len() - 1;
    let mut current = input.clone();
    let mut caches = Vec::with_capacity(net.layers().len());
    for (i, layer) in net.layers().iter().enumerate() {
        let layer_input = current.clone();
        let mut pre_activation = None;
        current = match *layer {
            LayerSpec::Conv2d {
                stride, padding, ..
            } => {
                let lp =
                    params
                        .layer(i)
                        .ok_or_else(|| snn_model::ModelError::ParameterMismatch {
                            context: format!("layer {i} is missing parameters"),
                        })?;
                let pre = ops::conv2d(&layer_input, &lp.weight, Some(&lp.bias), stride, padding)?;
                if i == last_layer {
                    pre
                } else {
                    let out = ops::relu(&pre);
                    pre_activation = Some(pre);
                    out
                }
            }
            LayerSpec::Linear { .. } => {
                let lp =
                    params
                        .layer(i)
                        .ok_or_else(|| snn_model::ModelError::ParameterMismatch {
                            context: format!("layer {i} is missing parameters"),
                        })?;
                let pre = ops::linear(&layer_input, &lp.weight, Some(&lp.bias))?;
                if i == last_layer {
                    pre
                } else {
                    let out = ops::relu(&pre);
                    pre_activation = Some(pre);
                    out
                }
            }
            LayerSpec::Pool { kind, window } => match kind {
                PoolKind::Average => ops::avg_pool2d(&layer_input, window)?,
                PoolKind::Max => ops::max_pool2d(&layer_input, window)?,
            },
            LayerSpec::Flatten => {
                let volume = layer_input.len();
                layer_input.clone().reshape(vec![volume])?
            }
        };
        caches.push(LayerCache {
            input: layer_input,
            pre_activation,
        });
    }
    Ok((caches, current))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_data::digits::SyntheticDigits;
    use snn_model::zoo;

    fn small_config(epochs: usize) -> TrainingConfig {
        TrainingConfig {
            epochs,
            learning_rate: 0.01,
            momentum: 0.9,
            lr_decay: 0.95,
        }
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let net = zoo::tiny_cnn();
        let mut params = Parameters::he_init(&net, 1).unwrap();
        let dataset = Dataset::new(vec![], vec![], 10);
        let err = Trainer::new(small_config(1))
            .train(&net, &mut params, &dataset)
            .unwrap_err();
        assert!(matches!(err, TrainError::InvalidDataset { .. }));
    }

    #[test]
    fn zero_epochs_is_rejected() {
        let net = zoo::tiny_cnn();
        let mut params = Parameters::he_init(&net, 1).unwrap();
        let dataset = SyntheticDigits::new(12).generate(10, 1);
        let err = Trainer::new(small_config(0))
            .train(&net, &mut params, &dataset)
            .unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig { .. }));
    }

    #[test]
    fn training_reduces_loss_on_tiny_cnn() {
        let net = zoo::tiny_cnn();
        let mut params = Parameters::he_init(&net, 3).unwrap();
        let dataset = SyntheticDigits::new(12)
            .with_noise_percent(5)
            .generate(60, 5);
        let report = Trainer::new(small_config(6))
            .train(&net, &mut params, &dataset)
            .unwrap();
        assert_eq!(report.epoch_losses.len(), 6);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(
            last < first,
            "loss did not decrease: first {first}, last {last}"
        );
    }

    #[test]
    fn training_reaches_reasonable_accuracy_on_clean_digits() {
        // Noise-free synthetic digits are close to linearly separable; a few
        // epochs of the tiny CNN should classify most of the training set.
        let net = zoo::tiny_cnn();
        let mut params = Parameters::he_init(&net, 9).unwrap();
        let dataset = SyntheticDigits::new(12)
            .with_noise_percent(0)
            .generate(80, 2);
        let report = Trainer::new(small_config(12))
            .train(&net, &mut params, &dataset)
            .unwrap();
        assert!(
            report.final_train_accuracy > 0.6,
            "train accuracy only {}",
            report.final_train_accuracy
        );
    }

    #[test]
    fn class_count_mismatch_is_rejected() {
        let net = zoo::tiny_cnn(); // 10 classes
        let mut params = Parameters::he_init(&net, 1).unwrap();
        // Build a 3-class dataset with matching image shape.
        let images: Vec<Tensor<f32>> = (0..6)
            .map(|i| Tensor::filled(vec![1, 12, 12], i as f32 / 6.0))
            .collect();
        let labels = (0..6).map(|i| i % 3).collect();
        let dataset = Dataset::new(images, labels, 3);
        let err = Trainer::new(small_config(1))
            .train(&net, &mut params, &dataset)
            .unwrap_err();
        assert!(matches!(err, TrainError::InvalidDataset { .. }));
    }

    #[test]
    fn forward_cached_matches_reference_forward() {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 4).unwrap();
        let input = Tensor::filled(vec![1, 12, 12], 0.3f32);
        let (_, logits) = forward_cached(&net, &params, &input).unwrap();
        let reference = forward::ann_forward(&net, &params, &input).unwrap();
        for (a, b) in logits.iter().zip(reference.logits().iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
