//! Stochastic gradient descent with momentum.

use snn_tensor::Tensor;

/// SGD-with-momentum state for a set of parameter tensors.
///
/// The optimizer is deliberately simple: the networks in the paper are
/// trained conventionally (the accelerator is inference-only), and plain
/// SGD with momentum is sufficient for the synthetic workloads.
///
/// # Example
///
/// ```
/// use snn_tensor::Tensor;
/// use snn_train::optimizer::Sgd;
///
/// let mut sgd = Sgd::new(0.1, 0.9);
/// let mut param = Tensor::from_vec(vec![2], vec![1.0f32, -1.0])?;
/// let grad = Tensor::from_vec(vec![2], vec![1.0f32, -1.0])?;
/// sgd.step("w", &mut param, &grad);
/// assert!(param.as_slice()[0] < 1.0);
/// # Ok::<(), snn_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f32,
    momentum: f32,
    velocities: std::collections::HashMap<String, Vec<f32>>,
}

impl Sgd {
    /// Creates an optimizer with the given learning rate and momentum
    /// coefficient (use `0.0` momentum for plain SGD).
    ///
    /// # Panics
    ///
    /// Panics if the learning rate is not positive or momentum is not in
    /// `[0, 1)`.
    pub fn new(learning_rate: f32, momentum: f32) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            learning_rate,
            momentum,
            velocities: std::collections::HashMap::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Updates the learning rate (e.g. for a decay schedule).
    pub fn set_learning_rate(&mut self, learning_rate: f32) {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        self.learning_rate = learning_rate;
    }

    /// Applies one update to `param` given its gradient.  The `key`
    /// identifies the parameter so its momentum buffer persists across
    /// steps.
    ///
    /// # Panics
    ///
    /// Panics if `param` and `grad` have different lengths.
    pub fn step(&mut self, key: &str, param: &mut Tensor<f32>, grad: &Tensor<f32>) {
        assert_eq!(
            param.len(),
            grad.len(),
            "parameter and gradient must have the same number of elements"
        );
        let velocity = self
            .velocities
            .entry(key.to_string())
            .or_insert_with(|| vec![0.0; param.len()]);
        for ((p, &g), v) in param.iter_mut().zip(grad.iter()).zip(velocity.iter_mut()) {
            *v = self.momentum * *v - self.learning_rate * g;
            *p += *v;
        }
    }

    /// Clears all momentum buffers.
    pub fn reset(&mut self) {
        self.velocities.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let mut sgd = Sgd::new(0.5, 0.0);
        let mut p = Tensor::from_vec(vec![2], vec![1.0f32, 2.0]).unwrap();
        let g = Tensor::from_vec(vec![2], vec![2.0f32, -2.0]).unwrap();
        sgd.step("p", &mut p, &g);
        assert_eq!(p.as_slice(), &[0.0, 3.0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut sgd = Sgd::new(0.1, 0.9);
        let mut p = Tensor::from_vec(vec![1], vec![0.0f32]).unwrap();
        let g = Tensor::from_vec(vec![1], vec![1.0f32]).unwrap();
        sgd.step("p", &mut p, &g);
        let after_one = p.as_slice()[0];
        sgd.step("p", &mut p, &g);
        let delta_two = p.as_slice()[0] - after_one;
        // Second step is larger in magnitude because velocity accumulated.
        assert!(delta_two.abs() > after_one.abs());
    }

    #[test]
    fn distinct_keys_have_independent_velocity() {
        let mut sgd = Sgd::new(0.1, 0.9);
        let mut a = Tensor::from_vec(vec![1], vec![0.0f32]).unwrap();
        let mut b = Tensor::from_vec(vec![1], vec![0.0f32]).unwrap();
        let g = Tensor::from_vec(vec![1], vec![1.0f32]).unwrap();
        sgd.step("a", &mut a, &g);
        sgd.step("a", &mut a, &g);
        sgd.step("b", &mut b, &g);
        // b has only taken one fresh step, so it moved less.
        assert!(b.as_slice()[0].abs() < a.as_slice()[0].abs());
    }

    #[test]
    fn converges_on_a_quadratic() {
        // Minimise f(x) = (x - 3)^2 with gradient 2(x - 3).
        let mut sgd = Sgd::new(0.1, 0.5);
        let mut x = Tensor::from_vec(vec![1], vec![-5.0f32]).unwrap();
        for _ in 0..200 {
            let g = Tensor::from_vec(vec![1], vec![2.0 * (x.as_slice()[0] - 3.0)]).unwrap();
            sgd.step("x", &mut x, &g);
        }
        assert!((x.as_slice()[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn reset_clears_momentum() {
        let mut sgd = Sgd::new(0.1, 0.9);
        let mut p = Tensor::from_vec(vec![1], vec![0.0f32]).unwrap();
        let g = Tensor::from_vec(vec![1], vec![1.0f32]).unwrap();
        sgd.step("p", &mut p, &g);
        sgd.reset();
        let before = p.as_slice()[0];
        sgd.step("p", &mut p, &g);
        // After a reset the step size equals the very first step again.
        assert!(((p.as_slice()[0] - before) - before).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_learning_rate_rejected() {
        Sgd::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn invalid_momentum_rejected() {
        Sgd::new(0.1, 1.0);
    }
}
