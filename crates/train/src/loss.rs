//! Softmax cross-entropy loss.

use snn_tensor::Tensor;

/// Numerically stable softmax of a logit vector.
///
/// # Example
///
/// ```
/// use snn_tensor::Tensor;
/// use snn_train::loss::softmax;
///
/// let logits = Tensor::from_vec(vec![3], vec![1.0f32, 2.0, 3.0])?;
/// let p = softmax(&logits);
/// assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
/// # Ok::<(), snn_tensor::TensorError>(())
/// ```
pub fn softmax(logits: &Tensor<f32>) -> Tensor<f32> {
    let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Tensor::from_vec(
        logits.shape().clone(),
        exps.into_iter().map(|e| e / sum).collect(),
    )
    .expect("softmax preserves shape")
}

/// Cross-entropy loss of a logit vector against a target class, together
/// with the gradient with respect to the logits.
///
/// Returns `(loss, dloss/dlogits)`.
///
/// # Panics
///
/// Panics if `target` is out of range for the logit vector.
pub fn cross_entropy_with_grad(logits: &Tensor<f32>, target: usize) -> (f32, Tensor<f32>) {
    assert!(
        target < logits.len(),
        "target class {target} out of range for {} logits",
        logits.len()
    );
    let probs = softmax(logits);
    let p_target = probs.as_slice()[target].max(1e-12);
    let loss = -p_target.ln();
    let mut grad = probs;
    grad.as_mut_slice()[target] -= 1.0;
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_preserves_order() {
        let logits = Tensor::from_vec(vec![4], vec![0.5f32, -1.0, 3.0, 0.0]).unwrap();
        let p = softmax(&logits);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        let max_idx = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_idx, 2);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![3], vec![1.0f32, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![101.0f32, 102.0, 103.0]).unwrap();
        let pa = softmax(&a);
        let pb = softmax(&b);
        for (x, y) in pa.iter().zip(pb.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn loss_is_low_when_confidently_correct() {
        let logits = Tensor::from_vec(vec![3], vec![10.0f32, 0.0, 0.0]).unwrap();
        let (loss, _) = cross_entropy_with_grad(&logits, 0);
        assert!(loss < 0.01);
        let (wrong_loss, _) = cross_entropy_with_grad(&logits, 1);
        assert!(wrong_loss > 5.0);
    }

    #[test]
    fn gradient_matches_softmax_minus_onehot() {
        let logits = Tensor::from_vec(vec![3], vec![0.2f32, 0.5, -0.1]).unwrap();
        let probs = softmax(&logits);
        let (_, grad) = cross_entropy_with_grad(&logits, 2);
        for i in 0..3 {
            let expected = probs.as_slice()[i] - if i == 2 { 1.0 } else { 0.0 };
            assert!((grad.as_slice()[i] - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_numerical_gradient() {
        let logits = Tensor::from_vec(vec![4], vec![0.3f32, -0.2, 0.8, 0.1]).unwrap();
        let (_, grad) = cross_entropy_with_grad(&logits, 1);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut plus = logits.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = logits.clone();
            minus.as_mut_slice()[i] -= eps;
            let (lp, _) = cross_entropy_with_grad(&plus, 1);
            let (lm, _) = cross_entropy_with_grad(&minus, 1);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grad.as_slice()[i] - numeric).abs() < 1e-2,
                "analytic {} vs numeric {}",
                grad.as_slice()[i],
                numeric
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_target_panics() {
        let logits = Tensor::from_vec(vec![2], vec![0.0f32, 0.0]).unwrap();
        cross_entropy_with_grad(&logits, 2);
    }
}
