//! Backward passes of the layer operators.
//!
//! Each function takes the layer input (as seen during the forward pass),
//! the upstream gradient with respect to the layer output, and returns the
//! gradient with respect to the layer input plus, for weighted layers, the
//! gradients with respect to the weights and biases.

use crate::Result;
use snn_tensor::Tensor;

/// Gradients of a convolution layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvGrads {
    /// Gradient with respect to the layer input `[C, H, W]`.
    pub input: Tensor<f32>,
    /// Gradient with respect to the kernels `[O, C, K, K]`.
    pub weight: Tensor<f32>,
    /// Gradient with respect to the biases `[O]`.
    pub bias: Tensor<f32>,
}

/// Gradients of a fully-connected layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearGrads {
    /// Gradient with respect to the layer input `[N]`.
    pub input: Tensor<f32>,
    /// Gradient with respect to the weights `[O, N]`.
    pub weight: Tensor<f32>,
    /// Gradient with respect to the biases `[O]`.
    pub bias: Tensor<f32>,
}

/// Backward pass of [`snn_tensor::ops::conv2d`].
///
/// # Errors
///
/// Returns an error when tensor shapes are internally inconsistent.
pub fn conv2d_backward(
    input: &Tensor<f32>,
    weight: &Tensor<f32>,
    grad_output: &Tensor<f32>,
    stride: usize,
    padding: usize,
) -> Result<ConvGrads> {
    let in_dims = input.shape().dims().to_vec();
    let k_dims = weight.shape().dims().to_vec();
    let out_dims = grad_output.shape().dims().to_vec();
    let (c_in, h, w) = (in_dims[0], in_dims[1], in_dims[2]);
    let (c_out, _, kh, kw) = (k_dims[0], k_dims[1], k_dims[2], k_dims[3]);
    let (h_out, w_out) = (out_dims[1], out_dims[2]);

    let mut grad_input = Tensor::filled(vec![c_in, h, w], 0.0f32);
    let mut grad_weight = Tensor::filled(k_dims.clone(), 0.0f32);
    let mut grad_bias = Tensor::filled(vec![c_out], 0.0f32);

    let in_data = input.as_slice();
    let w_data = weight.as_slice();
    let go_data = grad_output.as_slice();
    let gi_data = grad_input.as_mut_slice();
    // Weight and bias gradients plus input gradient in one sweep over the
    // output positions (mirrors the forward loop nest).
    for oc in 0..c_out {
        for oy in 0..h_out {
            for ox in 0..w_out {
                let go = go_data[oc * h_out * w_out + oy * w_out + ox];
                if go == 0.0 {
                    continue;
                }
                grad_bias.as_mut_slice()[oc] += go;
                for ic in 0..c_in {
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let in_idx = ic * h * w + iy as usize * w + ix as usize;
                            let k_idx = oc * c_in * kh * kw + ic * kh * kw + ky * kw + kx;
                            grad_weight.as_mut_slice()[k_idx] += go * in_data[in_idx];
                            gi_data[in_idx] += go * w_data[k_idx];
                        }
                    }
                }
            }
        }
    }

    Ok(ConvGrads {
        input: grad_input,
        weight: grad_weight,
        bias: grad_bias,
    })
}

/// Backward pass of [`snn_tensor::ops::linear`].
///
/// # Errors
///
/// Returns an error when tensor shapes are internally inconsistent.
pub fn linear_backward(
    input: &Tensor<f32>,
    weight: &Tensor<f32>,
    grad_output: &Tensor<f32>,
) -> Result<LinearGrads> {
    let n = input.len();
    let o = grad_output.len();
    let in_data = input.as_slice();
    let w_data = weight.as_slice();
    let go_data = grad_output.as_slice();

    let mut grad_input = vec![0.0f32; n];
    let mut grad_weight = vec![0.0f32; o * n];
    let grad_bias = go_data.to_vec();

    for oi in 0..o {
        let go = go_data[oi];
        if go == 0.0 {
            continue;
        }
        for ni in 0..n {
            grad_weight[oi * n + ni] += go * in_data[ni];
            grad_input[ni] += go * w_data[oi * n + ni];
        }
    }

    Ok(LinearGrads {
        input: Tensor::from_vec(vec![n], grad_input)?,
        weight: Tensor::from_vec(vec![o, n], grad_weight)?,
        bias: Tensor::from_vec(vec![o], grad_bias)?,
    })
}

/// Backward pass of ReLU: passes the gradient through where the *pre-ReLU*
/// value was positive.
pub fn relu_backward(pre_activation: &Tensor<f32>, grad_output: &Tensor<f32>) -> Tensor<f32> {
    let grads: Vec<f32> = pre_activation
        .iter()
        .zip(grad_output.iter())
        .map(|(&pre, &g)| if pre > 0.0 { g } else { 0.0 })
        .collect();
    Tensor::from_vec(pre_activation.shape().clone(), grads).expect("shapes match")
}

/// Backward pass of non-overlapping average pooling: the gradient of each
/// output is distributed equally over its window.
///
/// # Errors
///
/// Returns an error when tensor shapes are internally inconsistent.
pub fn avg_pool2d_backward(
    input_shape: &[usize],
    grad_output: &Tensor<f32>,
    window: usize,
) -> Result<Tensor<f32>> {
    let (c, h, w) = (input_shape[0], input_shape[1], input_shape[2]);
    let out_dims = grad_output.shape().dims().to_vec();
    let (h_out, w_out) = (out_dims[1], out_dims[2]);
    let mut grad_input = Tensor::filled(vec![c, h, w], 0.0f32);
    let gi = grad_input.as_mut_slice();
    let go = grad_output.as_slice();
    let scale = 1.0 / (window * window) as f32;
    for ch in 0..c {
        for oy in 0..h_out {
            for ox in 0..w_out {
                let g = go[ch * h_out * w_out + oy * w_out + ox] * scale;
                for ky in 0..window {
                    for kx in 0..window {
                        let iy = oy * window + ky;
                        let ix = ox * window + kx;
                        gi[ch * h * w + iy * w + ix] += g;
                    }
                }
            }
        }
    }
    Ok(grad_input)
}

/// Backward pass of non-overlapping max pooling: the gradient of each
/// output flows only to the argmax position of its window.
///
/// # Errors
///
/// Returns an error when tensor shapes are internally inconsistent.
pub fn max_pool2d_backward(
    input: &Tensor<f32>,
    grad_output: &Tensor<f32>,
    window: usize,
) -> Result<Tensor<f32>> {
    let dims = input.shape().dims().to_vec();
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let out_dims = grad_output.shape().dims().to_vec();
    let (h_out, w_out) = (out_dims[1], out_dims[2]);
    let mut grad_input = Tensor::filled(vec![c, h, w], 0.0f32);
    let gi = grad_input.as_mut_slice();
    let go = grad_output.as_slice();
    let in_data = input.as_slice();
    for ch in 0..c {
        for oy in 0..h_out {
            for ox in 0..w_out {
                let mut best_idx = ch * h * w + (oy * window) * w + ox * window;
                let mut best_val = in_data[best_idx];
                for ky in 0..window {
                    for kx in 0..window {
                        let idx = ch * h * w + (oy * window + ky) * w + (ox * window + kx);
                        if in_data[idx] > best_val {
                            best_val = in_data[idx];
                            best_idx = idx;
                        }
                    }
                }
                gi[best_idx] += go[ch * h_out * w_out + oy * w_out + ox];
            }
        }
    }
    Ok(grad_input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_tensor::ops;

    /// Numerically checks d(sum of outputs)/d(input[i]) for the convolution.
    #[test]
    fn conv_input_gradient_matches_numerical() {
        let input =
            Tensor::from_vec(vec![1, 4, 4], (0..16).map(|v| v as f32 * 0.1).collect()).unwrap();
        let weight = Tensor::from_vec(
            vec![1, 1, 3, 3],
            vec![0.1f32, -0.2, 0.3, 0.0, 0.5, -0.1, 0.2, 0.2, -0.4],
        )
        .unwrap();
        // Upstream gradient of all ones == derivative of sum of outputs.
        let out = ops::conv2d(&input, &weight, None, 1, 0).unwrap();
        let grad_out = Tensor::filled(out.shape().clone(), 1.0f32);
        let grads = conv2d_backward(&input, &weight, &grad_out, 1, 0).unwrap();

        let eps = 1e-3f32;
        for i in [0usize, 5, 10, 15] {
            let mut plus = input.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[i] -= eps;
            let sum_plus: f32 = ops::conv2d(&plus, &weight, None, 1, 0)
                .unwrap()
                .iter()
                .sum();
            let sum_minus: f32 = ops::conv2d(&minus, &weight, None, 1, 0)
                .unwrap()
                .iter()
                .sum();
            let numeric = (sum_plus - sum_minus) / (2.0 * eps);
            let analytic = grads.input.as_slice()[i];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "input grad at {i}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn conv_weight_gradient_matches_numerical() {
        let input = Tensor::from_vec(
            vec![1, 3, 3],
            vec![0.5f32, -0.5, 1.0, 0.2, 0.0, -0.3, 0.7, 0.1, 0.4],
        )
        .unwrap();
        let weight = Tensor::from_vec(vec![1, 1, 2, 2], vec![0.3f32, -0.1, 0.2, 0.05]).unwrap();
        let out = ops::conv2d(&input, &weight, None, 1, 0).unwrap();
        let grad_out = Tensor::filled(out.shape().clone(), 1.0f32);
        let grads = conv2d_backward(&input, &weight, &grad_out, 1, 0).unwrap();
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut plus = weight.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = weight.clone();
            minus.as_mut_slice()[i] -= eps;
            let sp: f32 = ops::conv2d(&input, &plus, None, 1, 0).unwrap().iter().sum();
            let sm: f32 = ops::conv2d(&input, &minus, None, 1, 0)
                .unwrap()
                .iter()
                .sum();
            let numeric = (sp - sm) / (2.0 * eps);
            assert!(
                (numeric - grads.weight.as_slice()[i]).abs() < 1e-2,
                "weight grad {i}"
            );
        }
    }

    #[test]
    fn conv_bias_gradient_is_output_sum() {
        let input = Tensor::filled(vec![1, 3, 3], 1.0f32);
        let weight = Tensor::filled(vec![2, 1, 2, 2], 0.5f32);
        let grad_out = Tensor::filled(vec![2, 2, 2], 1.0f32);
        let grads = conv2d_backward(&input, &weight, &grad_out, 1, 0).unwrap();
        assert_eq!(grads.bias.as_slice(), &[4.0, 4.0]);
    }

    #[test]
    fn linear_gradients_match_numerical() {
        let input = Tensor::from_vec(vec![3], vec![0.4f32, -0.7, 0.2]).unwrap();
        let weight = Tensor::from_vec(vec![2, 3], vec![0.1f32, 0.3, -0.2, 0.5, -0.4, 0.2]).unwrap();
        let grad_out = Tensor::from_vec(vec![2], vec![1.0f32, -2.0]).unwrap();
        let grads = linear_backward(&input, &weight, &grad_out).unwrap();
        // Weighted sum of outputs: s = 1*y0 - 2*y1.
        let weighted_sum = |w: &Tensor<f32>, x: &Tensor<f32>| -> f32 {
            let y = ops::linear(x, w, None).unwrap();
            y.as_slice()[0] - 2.0 * y.as_slice()[1]
        };
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut plus = input.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[i] -= eps;
            let numeric =
                (weighted_sum(&weight, &plus) - weighted_sum(&weight, &minus)) / (2.0 * eps);
            assert!((numeric - grads.input.as_slice()[i]).abs() < 1e-2);
        }
        for i in 0..6 {
            let mut plus = weight.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = weight.clone();
            minus.as_mut_slice()[i] -= eps;
            let numeric =
                (weighted_sum(&plus, &input) - weighted_sum(&minus, &input)) / (2.0 * eps);
            assert!((numeric - grads.weight.as_slice()[i]).abs() < 1e-2);
        }
        assert_eq!(grads.bias.as_slice(), grad_out.as_slice());
    }

    #[test]
    fn relu_backward_masks_negative_preactivations() {
        let pre = Tensor::from_vec(vec![4], vec![-1.0f32, 2.0, 0.0, 3.0]).unwrap();
        let grad = Tensor::from_vec(vec![4], vec![1.0f32, 1.0, 1.0, 1.0]).unwrap();
        let out = relu_backward(&pre, &grad);
        assert_eq!(out.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn avg_pool_backward_distributes_equally() {
        let grad_out = Tensor::from_vec(vec![1, 1, 1], vec![4.0f32]).unwrap();
        let grad_in = avg_pool2d_backward(&[1, 2, 2], &grad_out, 2).unwrap();
        assert_eq!(grad_in.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let input = Tensor::from_vec(vec![1, 2, 2], vec![1.0f32, 5.0, 2.0, 3.0]).unwrap();
        let grad_out = Tensor::from_vec(vec![1, 1, 1], vec![7.0f32]).unwrap();
        let grad_in = max_pool2d_backward(&input, &grad_out, 2).unwrap();
        assert_eq!(grad_in.as_slice(), &[0.0, 7.0, 0.0, 0.0]);
    }
}
