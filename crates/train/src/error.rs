use std::fmt;

/// Errors produced by the training substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrainError {
    /// The dataset is unusable for training (for example empty).
    InvalidDataset {
        /// Human-readable description.
        context: String,
    },
    /// A training hyper-parameter is invalid.
    InvalidConfig {
        /// Human-readable description.
        context: String,
    },
    /// An error bubbled up from the model crate.
    Model(snn_model::ModelError),
    /// An error bubbled up from the tensor substrate.
    Tensor(snn_tensor::TensorError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::InvalidDataset { context } => write!(f, "invalid dataset: {context}"),
            TrainError::InvalidConfig { context } => write!(f, "invalid config: {context}"),
            TrainError::Model(e) => write!(f, "model error: {e}"),
            TrainError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Model(e) => Some(e),
            TrainError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<snn_model::ModelError> for TrainError {
    fn from(e: snn_model::ModelError) -> Self {
        TrainError::Model(e)
    }
}

impl From<snn_tensor::TensorError> for TrainError {
    fn from(e: snn_tensor::TensorError) -> Self {
        TrainError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let err = TrainError::InvalidDataset {
            context: "empty".into(),
        };
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn conversions_work() {
        let model_err = snn_model::ModelError::InvalidNetwork {
            context: "x".into(),
        };
        assert!(matches!(TrainError::from(model_err), TrainError::Model(_)));
    }
}
