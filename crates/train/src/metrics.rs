//! Classification metrics: confusion matrix, per-class accuracy and
//! agreement between two classifiers (used to quantify how faithfully the
//! converted SNN tracks its source ANN).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A confusion matrix over `num_classes` classes.
///
/// Rows are true labels, columns are predictions.
///
/// # Example
///
/// ```
/// use snn_train::metrics::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(3);
/// cm.record(0, 0);
/// cm.record(0, 1);
/// cm.record(2, 2);
/// assert_eq!(cm.total(), 3);
/// assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    num_classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty confusion matrix.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes` is zero.
    pub fn new(num_classes: usize) -> Self {
        assert!(num_classes > 0, "need at least one class");
        ConfusionMatrix {
            num_classes,
            counts: vec![0; num_classes * num_classes],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Records one `(true label, prediction)` pair.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, label: usize, prediction: usize) {
        assert!(label < self.num_classes, "label {label} out of range");
        assert!(
            prediction < self.num_classes,
            "prediction {prediction} out of range"
        );
        self.counts[label * self.num_classes + prediction] += 1;
    }

    /// Count of samples with the given true label and prediction.
    pub fn count(&self, label: usize, prediction: usize) -> u64 {
        self.counts[label * self.num_classes + prediction]
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 for an empty matrix).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.num_classes).map(|c| self.count(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (`None` for classes with no samples).
    pub fn per_class_recall(&self) -> Vec<Option<f64>> {
        (0..self.num_classes)
            .map(|c| {
                let row: u64 = (0..self.num_classes).map(|p| self.count(c, p)).sum();
                if row == 0 {
                    None
                } else {
                    Some(self.count(c, c) as f64 / row as f64)
                }
            })
            .collect()
    }

    /// Builds a matrix from parallel label/prediction slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or contain out-of-range
    /// indices.
    pub fn from_pairs(num_classes: usize, labels: &[usize], predictions: &[usize]) -> Self {
        assert_eq!(
            labels.len(),
            predictions.len(),
            "labels and predictions must have the same length"
        );
        let mut cm = ConfusionMatrix::new(num_classes);
        for (&l, &p) in labels.iter().zip(predictions.iter()) {
            cm.record(l, p);
        }
        cm
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "true\\pred")?;
        for p in 0..self.num_classes {
            write!(f, " {p:>6}")?;
        }
        writeln!(f)?;
        for l in 0..self.num_classes {
            write!(f, "{l:>9}")?;
            for p in 0..self.num_classes {
                write!(f, " {:>6}", self.count(l, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Fraction of samples on which two classifiers produce the same prediction
/// — used to measure how faithfully the converted SNN follows the ANN.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn agreement(predictions_a: &[usize], predictions_b: &[usize]) -> f64 {
    assert_eq!(
        predictions_a.len(),
        predictions_b.len(),
        "prediction lists must have the same length"
    );
    if predictions_a.is_empty() {
        return 1.0;
    }
    let same = predictions_a
        .iter()
        .zip(predictions_b.iter())
        .filter(|(a, b)| a == b)
        .count();
    same as f64 / predictions_a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_diagonal() {
        let cm = ConfusionMatrix::from_pairs(3, &[0, 1, 2, 2], &[0, 1, 1, 2]);
        assert_eq!(cm.total(), 4);
        assert!((cm.accuracy() - 0.75).abs() < 1e-9);
        assert_eq!(cm.count(2, 1), 1);
    }

    #[test]
    fn per_class_recall_handles_missing_classes() {
        let cm = ConfusionMatrix::from_pairs(3, &[0, 0, 1], &[0, 1, 1]);
        let recall = cm.per_class_recall();
        assert_eq!(recall[0], Some(0.5));
        assert_eq!(recall[1], Some(1.0));
        assert_eq!(recall[2], None);
    }

    #[test]
    fn empty_matrix_has_zero_accuracy() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    fn display_renders_all_rows() {
        let cm = ConfusionMatrix::from_pairs(2, &[0, 1], &[0, 1]);
        let text = cm.to_string();
        assert!(text.lines().count() >= 3);
        assert!(text.contains("true\\pred"));
    }

    #[test]
    fn agreement_fraction() {
        assert_eq!(agreement(&[1, 2, 3], &[1, 2, 4]), 2.0 / 3.0);
        assert_eq!(agreement(&[], &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn agreement_requires_equal_lengths() {
        agreement(&[1], &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_prediction_panics() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 5);
    }
}
