//! Radix encoding — the emerging neural encoding scheme the accelerator is
//! built for (reference \[6\] of the paper).
//!
//! An activation `a ∈ [0, 1]` is quantized to an integer level
//! `round(a * (2^T - 1))` and transmitted as its binary expansion, most
//! significant bit first: the spike at time step `t` carries a weight of
//! `2^(T-1-t)`.  A spike train of length `T` therefore provides `T` bits of
//! activation resolution, which is why 3–6 time steps suffice where rate
//! encoding needs hundreds.
//!
//! On the hardware side the position weighting is free: the output logic
//! shifts the running partial sum left by one bit before accumulating the
//! next time step (Alg. 1, line 12 / Fig. 2 of the paper), implemented here
//! in `snn-accel`'s output logic and mirrored by
//! [`RadixEncoder::weighted_sum`].

use crate::{Encoder, EncodingError, Result, SpikeTrain};
use serde::{Deserialize, Serialize};

/// Maximum supported spike-train length for radix encoding.
///
/// 24 bits comfortably exceeds any useful activation resolution while
/// keeping integer levels inside `u32`/`i64` arithmetic.
pub const MAX_TIME_STEPS: usize = 24;

/// Radix (binary positional) encoder.
///
/// # Example
///
/// ```
/// use snn_encoding::{radix::RadixEncoder, Encoder};
///
/// let enc = RadixEncoder::new(4)?;
/// let train = enc.encode_value(0.6);       // 0.6 * 15 = 9 -> 0b1001
/// assert_eq!(train.to_level(), 9);
/// assert!((enc.decode_value(&train) - 0.6).abs() < 0.05);
/// # Ok::<(), snn_encoding::EncodingError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RadixEncoder {
    time_steps: usize,
}

impl RadixEncoder {
    /// Creates a radix encoder producing trains of `time_steps` steps.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::InvalidTimeSteps`] when `time_steps` is zero
    /// or exceeds [`MAX_TIME_STEPS`].
    pub fn new(time_steps: usize) -> Result<Self> {
        if time_steps == 0 || time_steps > MAX_TIME_STEPS {
            return Err(EncodingError::InvalidTimeSteps {
                requested: time_steps,
                max: MAX_TIME_STEPS,
            });
        }
        Ok(RadixEncoder { time_steps })
    }

    /// The largest integer level representable by this encoder
    /// (`2^T - 1`).
    pub fn max_level(&self) -> u32 {
        (1u32 << self.time_steps) - 1
    }

    /// Quantizes an activation in `[0, 1]` to its integer level.
    pub fn level_of(&self, value: f32) -> u32 {
        let clamped = value.clamp(0.0, 1.0);
        (clamped * self.max_level() as f32).round() as u32
    }

    /// The positional weight `2^(T-1-t)` of a spike at time step `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= time_steps`.
    pub fn step_weight(&self, t: usize) -> u32 {
        assert!(t < self.time_steps, "time step {t} out of range");
        1u32 << (self.time_steps - 1 - t)
    }

    /// Computes the radix-weighted sum of a spike train — the integer level
    /// it encodes — using the same left-shift-and-accumulate recurrence the
    /// hardware output logic uses.
    pub fn weighted_sum(&self, train: &SpikeTrain) -> u32 {
        let mut acc = 0u32;
        for t in 0..self.time_steps {
            acc <<= 1; // Alg. 1, line 12: shift previous partial sum left.
            acc += u32::from(train.spike_at(t));
        }
        acc
    }
}

impl Encoder for RadixEncoder {
    fn time_steps(&self) -> usize {
        self.time_steps
    }

    fn encode_value(&self, value: f32) -> SpikeTrain {
        SpikeTrain::from_level(self.level_of(value), self.time_steps)
    }

    fn decode_value(&self, train: &SpikeTrain) -> f32 {
        self.weighted_sum(train) as f32 / self.max_level() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_lengths() {
        assert!(RadixEncoder::new(0).is_err());
        assert!(RadixEncoder::new(MAX_TIME_STEPS + 1).is_err());
        assert!(RadixEncoder::new(MAX_TIME_STEPS).is_ok());
    }

    #[test]
    fn max_level_is_two_to_t_minus_one() {
        assert_eq!(RadixEncoder::new(3).unwrap().max_level(), 7);
        assert_eq!(RadixEncoder::new(6).unwrap().max_level(), 63);
    }

    #[test]
    fn encode_extremes() {
        let enc = RadixEncoder::new(4).unwrap();
        assert_eq!(enc.encode_value(0.0).to_level(), 0);
        assert_eq!(enc.encode_value(1.0).to_level(), 15);
        // Values outside [0, 1] are clamped.
        assert_eq!(enc.encode_value(-3.0).to_level(), 0);
        assert_eq!(enc.encode_value(2.5).to_level(), 15);
    }

    #[test]
    fn step_weight_is_msb_first() {
        let enc = RadixEncoder::new(4).unwrap();
        assert_eq!(enc.step_weight(0), 8);
        assert_eq!(enc.step_weight(1), 4);
        assert_eq!(enc.step_weight(2), 2);
        assert_eq!(enc.step_weight(3), 1);
    }

    #[test]
    fn weighted_sum_matches_positional_weights() {
        let enc = RadixEncoder::new(5).unwrap();
        for level in 0..32u32 {
            let train = SpikeTrain::from_level(level, 5);
            // Explicit positional sum.
            let explicit: u32 = (0..5)
                .map(|t| u32::from(train.spike_at(t)) * enc.step_weight(t))
                .sum();
            assert_eq!(enc.weighted_sum(&train), explicit);
            assert_eq!(enc.weighted_sum(&train), level);
        }
    }

    #[test]
    fn decode_inverts_encode_on_grid_points() {
        let enc = RadixEncoder::new(6).unwrap();
        for level in 0..=enc.max_level() {
            let value = level as f32 / enc.max_level() as f32;
            let train = enc.encode_value(value);
            assert_eq!(train.to_level(), level);
            assert!((enc.decode_value(&train) - value).abs() < 1e-6);
        }
    }

    #[test]
    fn encoding_error_bounded_by_half_level() {
        let enc = RadixEncoder::new(3).unwrap();
        let half_step = 0.5 / enc.max_level() as f32;
        for i in 0..=100 {
            let value = i as f32 / 100.0;
            let decoded = enc.decode_value(&enc.encode_value(value));
            assert!(
                (value - decoded).abs() <= half_step + 1e-6,
                "value {value} decoded to {decoded}"
            );
        }
    }

    #[test]
    fn spike_count_is_popcount_of_level() {
        let enc = RadixEncoder::new(6).unwrap();
        let train = enc.encode_value(41.0 / 63.0); // 41 = 0b101001
        assert_eq!(train.spike_count(), 3);
    }
}
