use crate::SpikeTrain;
use serde::{Deserialize, Serialize};
use snn_tensor::Shape;

/// A *spike raster*: the spike trains of a whole feature map, stored as one
/// binary plane per time step.
///
/// This mirrors how the accelerator consumes activations: for each time step
/// it streams binary feature-map rows into the processing units, so the
/// natural layout is `[time_step][flat feature-map offset]`, each plane
/// bit-packed into `u64` words.
///
/// # Example
///
/// ```
/// use snn_encoding::{SpikeRaster, SpikeTrain};
/// use snn_tensor::Shape;
///
/// let trains = vec![
///     SpikeTrain::from_level(0b10, 2),
///     SpikeTrain::from_level(0b01, 2),
/// ];
/// let raster = SpikeRaster::from_trains(Shape::new(vec![2]), 2, &trains);
/// assert!(raster.spike_at(0, 0));   // neuron 0 fires at t=0
/// assert!(!raster.spike_at(0, 1));
/// assert!(raster.spike_at(1, 1));   // neuron 1 fires at t=1
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpikeRaster {
    shape: Shape,
    time_steps: usize,
    /// `time_steps` planes, each `ceil(volume / 64)` packed words.
    planes: Vec<Vec<u64>>,
}

impl SpikeRaster {
    /// Creates an all-silent raster for a feature map of the given shape.
    pub fn silent(shape: Shape, time_steps: usize) -> Self {
        let words = shape.volume().div_ceil(64);
        SpikeRaster {
            shape,
            time_steps,
            planes: vec![vec![0u64; words]; time_steps],
        }
    }

    /// Builds a raster from one spike train per feature-map element
    /// (row-major order).
    ///
    /// # Panics
    ///
    /// Panics if `trains.len()` differs from the shape volume or any train is
    /// shorter than `time_steps`.
    pub fn from_trains(shape: Shape, time_steps: usize, trains: &[SpikeTrain]) -> Self {
        assert_eq!(
            trains.len(),
            shape.volume(),
            "number of spike trains must equal the feature-map volume"
        );
        let mut raster = SpikeRaster::silent(shape, time_steps);
        for (idx, train) in trains.iter().enumerate() {
            for t in 0..time_steps {
                if train.spike_at(t) {
                    raster.set_spike(t, idx, true);
                }
            }
        }
        raster
    }

    /// The feature-map shape this raster covers.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of time steps.
    pub fn time_steps(&self) -> usize {
        self.time_steps
    }

    /// Number of feature-map elements (neurons).
    pub fn neurons(&self) -> usize {
        self.shape.volume()
    }

    /// Whether the neuron at flat offset `index` spikes at time step `t`.
    ///
    /// Out-of-range queries return `false`.
    pub fn spike_at(&self, t: usize, index: usize) -> bool {
        if t >= self.time_steps || index >= self.neurons() {
            return false;
        }
        let word = self.planes[t][index / 64];
        (word >> (index % 64)) & 1 == 1
    }

    /// Sets the event of neuron `index` at time step `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` or `index` is out of range.
    pub fn set_spike(&mut self, t: usize, index: usize, value: bool) {
        assert!(t < self.time_steps, "time step {t} out of range");
        assert!(index < self.neurons(), "neuron index {index} out of range");
        let word = &mut self.planes[t][index / 64];
        let mask = 1u64 << (index % 64);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Total number of spikes across all time steps — the quantity that
    /// drives dynamic energy in the accelerator.
    pub fn total_spikes(&self) -> usize {
        self.planes
            .iter()
            .map(|plane| plane.iter().map(|w| w.count_ones() as usize).sum::<usize>())
            .sum()
    }

    /// Average number of spikes per neuron per time step, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        let slots = self.neurons() * self.time_steps;
        if slots == 0 {
            0.0
        } else {
            self.total_spikes() as f64 / slots as f64
        }
    }

    /// Extracts one binary value per neuron for time step `t`
    /// (row-major order), as `0`/`1` integers.
    pub fn plane(&self, t: usize) -> Vec<u8> {
        (0..self.neurons())
            .map(|i| u8::from(self.spike_at(t, i)))
            .collect()
    }

    /// Reconstructs the per-neuron spike trains (row-major order).
    pub fn to_trains(&self) -> Vec<SpikeTrain> {
        (0..self.neurons())
            .map(|i| {
                (0..self.time_steps)
                    .map(|t| self.spike_at(t, i))
                    .collect::<SpikeTrain>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_raster_has_no_spikes() {
        let r = SpikeRaster::silent(Shape::new(vec![3, 3]), 4);
        assert_eq!(r.total_spikes(), 0);
        assert_eq!(r.density(), 0.0);
        assert_eq!(r.neurons(), 9);
    }

    #[test]
    fn set_and_get_spikes() {
        let mut r = SpikeRaster::silent(Shape::new(vec![10]), 2);
        r.set_spike(1, 7, true);
        assert!(r.spike_at(1, 7));
        assert!(!r.spike_at(0, 7));
        r.set_spike(1, 7, false);
        assert!(!r.spike_at(1, 7));
    }

    #[test]
    fn packing_crosses_word_boundaries() {
        let mut r = SpikeRaster::silent(Shape::new(vec![130]), 1);
        r.set_spike(0, 63, true);
        r.set_spike(0, 64, true);
        r.set_spike(0, 129, true);
        assert_eq!(r.total_spikes(), 3);
        assert!(r.spike_at(0, 63));
        assert!(r.spike_at(0, 64));
        assert!(r.spike_at(0, 129));
        assert!(!r.spike_at(0, 65));
    }

    #[test]
    fn from_trains_roundtrip() {
        let trains = vec![
            SpikeTrain::from_level(5, 3),
            SpikeTrain::from_level(2, 3),
            SpikeTrain::from_level(7, 3),
            SpikeTrain::from_level(0, 3),
        ];
        let raster = SpikeRaster::from_trains(Shape::new(vec![2, 2]), 3, &trains);
        assert_eq!(raster.to_trains(), trains);
        assert_eq!(raster.total_spikes(), (2 + 1 + 3));
    }

    #[test]
    fn plane_extracts_one_time_step() {
        let trains = vec![SpikeTrain::from_level(2, 2), SpikeTrain::from_level(1, 2)];
        let raster = SpikeRaster::from_trains(Shape::new(vec![2]), 2, &trains);
        assert_eq!(raster.plane(0), vec![1, 0]);
        assert_eq!(raster.plane(1), vec![0, 1]);
    }

    #[test]
    fn density_is_fraction_of_slots() {
        let mut r = SpikeRaster::silent(Shape::new(vec![4]), 2);
        r.set_spike(0, 0, true);
        r.set_spike(1, 3, true);
        assert!((r.density() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "number of spike trains")]
    fn from_trains_rejects_wrong_count() {
        let trains = vec![SpikeTrain::silent(2)];
        SpikeRaster::from_trains(Shape::new(vec![2]), 2, &trains);
    }
}
