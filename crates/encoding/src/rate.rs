//! Rate encoding — the classical SNN input encoding the paper contrasts
//! radix encoding with.
//!
//! With rate encoding the *number* of spikes over the train is proportional
//! to the activation, while the positions of the spikes carry no
//! information.  To distinguish `2^B` activation levels, a rate-coded train
//! needs `2^B - 1` time steps, which is why rate-coded deep SNNs use trains
//! of hundreds to a thousand steps (Section I of the paper).
//!
//! Two deterministic variants and one stochastic variant are provided:
//!
//! * [`RateEncoder`] (deterministic, evenly spaced spikes) — used by the
//!   comparison harness because it is reproducible.
//! * [`PoissonRateEncoder`] — Bernoulli spiking with probability equal to
//!   the activation, the textbook stochastic scheme.

use crate::{Encoder, EncodingError, Result, SpikeTrain};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Maximum supported spike-train length for rate encoding.
pub const MAX_TIME_STEPS: usize = 4096;

/// Deterministic rate encoder: `round(a * T)` spikes spread as evenly as
/// possible over the `T` time steps.
///
/// # Example
///
/// ```
/// use snn_encoding::{rate::RateEncoder, Encoder};
///
/// let enc = RateEncoder::new(8)?;
/// let train = enc.encode_value(0.5);
/// assert_eq!(train.spike_count(), 4);
/// assert!((enc.decode_value(&train) - 0.5).abs() < 1e-6);
/// # Ok::<(), snn_encoding::EncodingError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RateEncoder {
    time_steps: usize,
}

impl RateEncoder {
    /// Creates a deterministic rate encoder with trains of `time_steps`
    /// steps.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::InvalidTimeSteps`] when `time_steps` is zero
    /// or exceeds [`MAX_TIME_STEPS`].
    pub fn new(time_steps: usize) -> Result<Self> {
        if time_steps == 0 || time_steps > MAX_TIME_STEPS {
            return Err(EncodingError::InvalidTimeSteps {
                requested: time_steps,
                max: MAX_TIME_STEPS,
            });
        }
        Ok(RateEncoder { time_steps })
    }

    /// Number of time steps a rate code needs to reach the same resolution
    /// as a radix code of `radix_steps` steps (`2^radix_steps - 1`).
    ///
    /// This is the train-length blow-up the paper's Section I refers to.
    pub fn equivalent_steps_for_radix(radix_steps: usize) -> usize {
        (1usize << radix_steps) - 1
    }
}

impl Encoder for RateEncoder {
    fn time_steps(&self) -> usize {
        self.time_steps
    }

    fn encode_value(&self, value: f32) -> SpikeTrain {
        let clamped = value.clamp(0.0, 1.0);
        let count = (clamped * self.time_steps as f32).round() as usize;
        let mut train = SpikeTrain::silent(self.time_steps);
        if count == 0 {
            return train;
        }
        // Spread `count` spikes evenly (Bresenham-style accumulation).
        let mut acc = 0usize;
        for t in 0..self.time_steps {
            acc += count;
            if acc >= self.time_steps {
                acc -= self.time_steps;
                train.set_spike(t, true);
            }
        }
        train
    }

    fn decode_value(&self, train: &SpikeTrain) -> f32 {
        train.spike_count() as f32 / self.time_steps as f32
    }
}

/// Stochastic (Poisson/Bernoulli) rate encoder: at each time step the neuron
/// fires with probability equal to the activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoissonRateEncoder {
    time_steps: usize,
}

impl PoissonRateEncoder {
    /// Creates a stochastic rate encoder with trains of `time_steps` steps.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::InvalidTimeSteps`] for unsupported lengths.
    pub fn new(time_steps: usize) -> Result<Self> {
        if time_steps == 0 || time_steps > MAX_TIME_STEPS {
            return Err(EncodingError::InvalidTimeSteps {
                requested: time_steps,
                max: MAX_TIME_STEPS,
            });
        }
        Ok(PoissonRateEncoder { time_steps })
    }

    /// Number of time steps per train.
    pub fn time_steps(&self) -> usize {
        self.time_steps
    }

    /// Encodes an activation with the supplied random-number generator.
    pub fn encode_value_with<R: Rng + ?Sized>(&self, value: f32, rng: &mut R) -> SpikeTrain {
        let p = value.clamp(0.0, 1.0) as f64;
        (0..self.time_steps)
            .map(|_| rng.gen_bool(p))
            .collect::<SpikeTrain>()
    }

    /// Decodes by spike-count averaging, like the deterministic encoder.
    pub fn decode_value(&self, train: &SpikeTrain) -> f32 {
        train.spike_count() as f32 / self.time_steps as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_lengths() {
        assert!(RateEncoder::new(0).is_err());
        assert!(RateEncoder::new(MAX_TIME_STEPS + 1).is_err());
        assert!(PoissonRateEncoder::new(0).is_err());
    }

    #[test]
    fn spike_count_proportional_to_value() {
        let enc = RateEncoder::new(10).unwrap();
        assert_eq!(enc.encode_value(0.0).spike_count(), 0);
        assert_eq!(enc.encode_value(0.3).spike_count(), 3);
        assert_eq!(enc.encode_value(1.0).spike_count(), 10);
    }

    #[test]
    fn decode_recovers_value_to_within_one_step() {
        let enc = RateEncoder::new(16).unwrap();
        for i in 0..=20 {
            let v = i as f32 / 20.0;
            let d = enc.decode_value(&enc.encode_value(v));
            assert!((v - d).abs() <= 0.5 / 16.0 + 1e-6);
        }
    }

    #[test]
    fn spikes_are_spread_not_bunched() {
        let enc = RateEncoder::new(8).unwrap();
        let train = enc.encode_value(0.5);
        // Four spikes over eight steps, never two adjacent pairs in a row of four.
        assert_eq!(train.spike_count(), 4);
        let spikes = train.spikes();
        let first_half: usize = spikes[..4].iter().filter(|&&s| s).count();
        let second_half: usize = spikes[4..].iter().filter(|&&s| s).count();
        assert_eq!(first_half, 2);
        assert_eq!(second_half, 2);
    }

    #[test]
    fn equivalent_steps_shows_exponential_blowup() {
        assert_eq!(RateEncoder::equivalent_steps_for_radix(3), 7);
        assert_eq!(RateEncoder::equivalent_steps_for_radix(6), 63);
        assert_eq!(RateEncoder::equivalent_steps_for_radix(10), 1023);
    }

    #[test]
    fn poisson_encoder_statistics_match_probability() {
        let enc = PoissonRateEncoder::new(2000).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let train = enc.encode_value_with(0.3, &mut rng);
        let rate = enc.decode_value(&train);
        assert!((rate - 0.3).abs() < 0.05, "empirical rate {rate}");
    }

    #[test]
    fn poisson_extremes_are_deterministic() {
        let enc = PoissonRateEncoder::new(64).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(enc.encode_value_with(0.0, &mut rng).spike_count(), 0);
        assert_eq!(enc.encode_value_with(1.0, &mut rng).spike_count(), 64);
    }
}
