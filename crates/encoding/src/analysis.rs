//! Encoding-scheme analysis helpers.
//!
//! These functions quantify the accuracy/latency trade-off between radix and
//! rate encoding that motivates the paper (Section I and Table I): how many
//! time steps each scheme needs for a given activation resolution, and what
//! reconstruction error a given train length leaves.

use crate::{radix::RadixEncoder, rate::RateEncoder, Encoder, Result};
use serde::{Deserialize, Serialize};
use snn_tensor::Tensor;

/// Reconstruction-error comparison of radix and rate encoding at equal
/// spike-train length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncodingComparison {
    /// Spike-train length used for both schemes.
    pub time_steps: usize,
    /// Mean absolute reconstruction error of radix encoding.
    pub radix_error: f32,
    /// Mean absolute reconstruction error of deterministic rate encoding.
    pub rate_error: f32,
    /// Average spike density (spikes per neuron per step) of radix encoding.
    pub radix_density: f64,
    /// Average spike density of rate encoding.
    pub rate_density: f64,
}

/// Compares radix and rate encoding on the same activations and train
/// length.
///
/// # Errors
///
/// Returns an error if `time_steps` is unsupported by either encoder.
pub fn compare_encodings(
    activations: &Tensor<f32>,
    time_steps: usize,
) -> Result<EncodingComparison> {
    let radix = RadixEncoder::new(time_steps)?;
    let rate = RateEncoder::new(time_steps)?;
    let radix_raster = radix.encode_tensor(activations);
    let rate_raster = rate.encode_tensor(activations);
    Ok(EncodingComparison {
        time_steps,
        radix_error: radix.reconstruction_error(activations),
        rate_error: rate.reconstruction_error(activations),
        radix_density: radix_raster.density(),
        rate_density: rate_raster.density(),
    })
}

/// Sweeps spike-train length and reports the comparison at each point.
///
/// # Errors
///
/// Returns an error if any length in the range is unsupported.
pub fn sweep_train_lengths(
    activations: &Tensor<f32>,
    lengths: &[usize],
) -> Result<Vec<EncodingComparison>> {
    lengths
        .iter()
        .map(|&t| compare_encodings(activations, t))
        .collect()
}

/// The number of time steps each scheme needs to represent `bits` bits of
/// activation resolution: `bits` for radix, `2^bits - 1` for rate.
pub fn steps_for_resolution(bits: usize) -> (usize, usize) {
    (bits, RateEncoder::equivalent_steps_for_radix(bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Tensor<f32> {
        Tensor::from_vec(vec![n], (0..n).map(|i| i as f32 / (n - 1) as f32).collect()).unwrap()
    }

    #[test]
    fn radix_beats_rate_at_equal_length() {
        let activations = ramp(101);
        let cmp = compare_encodings(&activations, 4).unwrap();
        assert!(
            cmp.radix_error < cmp.rate_error,
            "radix {} should be below rate {}",
            cmp.radix_error,
            cmp.rate_error
        );
    }

    #[test]
    fn both_errors_shrink_with_longer_trains() {
        let activations = ramp(101);
        let sweep = sweep_train_lengths(&activations, &[2, 4, 8]).unwrap();
        assert!(sweep[0].radix_error > sweep[2].radix_error);
        assert!(sweep[0].rate_error > sweep[2].rate_error);
    }

    #[test]
    fn steps_for_resolution_matches_paper_motivation() {
        // 8-bit activations: radix needs 8 steps, rate needs 255.
        assert_eq!(steps_for_resolution(8), (8, 255));
        // The paper's 6-step radix code corresponds to 63 rate steps.
        assert_eq!(steps_for_resolution(6), (6, 63));
    }

    #[test]
    fn densities_are_within_unit_interval() {
        let activations = ramp(32);
        let cmp = compare_encodings(&activations, 5).unwrap();
        assert!(cmp.radix_density >= 0.0 && cmp.radix_density <= 1.0);
        assert!(cmp.rate_density >= 0.0 && cmp.rate_density <= 1.0);
    }
}
