use serde::{Deserialize, Serialize};
use std::fmt;

/// A spike train for a single neuron: an ordered sequence of binary events,
/// one per time step.
///
/// Time step 0 is the **first** step transmitted; for radix encoding it is
/// the most significant bit of the encoded activation.
///
/// # Example
///
/// ```
/// use snn_encoding::SpikeTrain;
///
/// let train = SpikeTrain::from_bits(&[true, false, true]);
/// assert_eq!(train.len(), 3);
/// assert_eq!(train.spike_count(), 2);
/// assert!(train.spike_at(0));
/// assert!(!train.spike_at(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpikeTrain {
    spikes: Vec<bool>,
}

impl SpikeTrain {
    /// Creates an empty (all-silent) spike train of the given length.
    pub fn silent(time_steps: usize) -> Self {
        SpikeTrain {
            spikes: vec![false; time_steps],
        }
    }

    /// Creates a spike train from a slice of per-step events.
    pub fn from_bits(bits: &[bool]) -> Self {
        SpikeTrain {
            spikes: bits.to_vec(),
        }
    }

    /// Creates a spike train of length `time_steps` whose bit pattern is the
    /// binary representation of `value`, most significant bit first.
    ///
    /// Values larger than `2^time_steps - 1` are saturated to all-ones.
    /// This is exactly the radix encoding of an unsigned integer level.
    pub fn from_level(value: u32, time_steps: usize) -> Self {
        let max = if time_steps >= 32 {
            u32::MAX
        } else {
            (1u32 << time_steps) - 1
        };
        let v = value.min(max);
        let spikes = (0..time_steps)
            .map(|t| {
                let bit = time_steps - 1 - t;
                (v >> bit) & 1 == 1
            })
            .collect();
        SpikeTrain { spikes }
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.spikes.len()
    }

    /// Returns `true` when the train has zero time steps.
    pub fn is_empty(&self) -> bool {
        self.spikes.is_empty()
    }

    /// Whether a spike occurs at time step `t` (out-of-range steps are
    /// silent).
    pub fn spike_at(&self, t: usize) -> bool {
        self.spikes.get(t).copied().unwrap_or(false)
    }

    /// Sets the event at time step `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn set_spike(&mut self, t: usize, value: bool) {
        self.spikes[t] = value;
    }

    /// The per-step events, first time step first.
    pub fn spikes(&self) -> &[bool] {
        &self.spikes
    }

    /// Total number of spikes in the train.
    pub fn spike_count(&self) -> usize {
        self.spikes.iter().filter(|&&s| s).count()
    }

    /// Interprets the train as a radix-encoded unsigned level
    /// (most significant bit first).
    pub fn to_level(&self) -> u32 {
        self.spikes
            .iter()
            .fold(0u32, |acc, &s| (acc << 1) | u32::from(s))
    }
}

impl fmt::Display for SpikeTrain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &s in &self.spikes {
            write!(f, "{}", if s { '|' } else { '.' })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for SpikeTrain {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        SpikeTrain {
            spikes: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_train_has_no_spikes() {
        let t = SpikeTrain::silent(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.spike_count(), 0);
        assert_eq!(t.to_level(), 0);
    }

    #[test]
    fn from_level_is_msb_first() {
        let t = SpikeTrain::from_level(0b101, 3);
        assert_eq!(t.spikes(), &[true, false, true]);
        assert_eq!(t.to_level(), 5);
    }

    #[test]
    fn from_level_saturates() {
        let t = SpikeTrain::from_level(100, 3);
        assert_eq!(t.to_level(), 7);
        assert_eq!(t.spike_count(), 3);
    }

    #[test]
    fn level_roundtrip() {
        for level in 0..16u32 {
            let t = SpikeTrain::from_level(level, 4);
            assert_eq!(t.to_level(), level);
        }
    }

    #[test]
    fn display_uses_pipe_and_dot() {
        let t = SpikeTrain::from_bits(&[true, false, true, false]);
        assert_eq!(t.to_string(), "|.|.");
    }

    #[test]
    fn out_of_range_step_is_silent() {
        let t = SpikeTrain::from_bits(&[true]);
        assert!(!t.spike_at(10));
    }

    #[test]
    fn collect_from_iterator() {
        let t: SpikeTrain = [true, true, false].into_iter().collect();
        assert_eq!(t.spike_count(), 2);
    }
}
