//! # snn-encoding
//!
//! Spike-train representations and the neural encoding schemes compared in
//! the paper.
//!
//! A spiking neural network transmits binary events over `T` discrete time
//! steps.  How a real-valued activation is turned into those events — the
//! *neural encoding* — determines how long the spike train has to be for a
//! given accuracy:
//!
//! * [`rate`] — classical rate encoding, where the spike count over the
//!   train is proportional to the activation.  Reaching 8-bit resolution
//!   requires on the order of hundreds of time steps, which is why
//!   rate-coded accelerators need very long spike trains.
//! * [`radix`] — the emerging *radix encoding* of Wang et al. (reference
//!   \[6\] of the paper): the spike at time step `t` carries a weight of
//!   `2^(T-1-t)`, so a train of length `T` encodes `T` bits of activation
//!   resolution.  This is the scheme the accelerator is designed around;
//!   the hardware accounts for the position weighting with a single left
//!   shift per time step (Alg. 1, line 12).
//!
//! The [`SpikeTrain`] and [`SpikeRaster`] types are bit-packed so the
//! accelerator simulator can move feature-map rows around exactly the way
//! the hardware's shift registers do.
//!
//! # Example
//!
//! ```
//! use snn_encoding::{radix::RadixEncoder, Encoder};
//!
//! // Encode an 8-level activation into a 3-step radix spike train.
//! let encoder = RadixEncoder::new(3)?;
//! let train = encoder.encode_value(0.75);         // 0.75 * (2^3 - 1) = 5.25 -> 5 = 0b101
//! assert_eq!(train.spikes(), &[true, false, true]);
//! let decoded = encoder.decode_value(&train);
//! assert!((decoded - 5.0 / 7.0).abs() < 1e-6);
//! # Ok::<(), snn_encoding::EncodingError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod raster;
mod train;

pub mod analysis;
pub mod radix;
pub mod rate;
pub mod ttfs;

pub use error::EncodingError;
pub use raster::SpikeRaster;
pub use train::SpikeTrain;

use snn_tensor::Tensor;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, EncodingError>;

/// A neural encoding scheme: a way of turning real-valued activations in
/// `[0, 1]` into spike trains of a fixed length, and back.
///
/// Implementations: [`radix::RadixEncoder`], [`rate::RateEncoder`].
pub trait Encoder {
    /// Number of time steps in the spike trains this encoder produces.
    fn time_steps(&self) -> usize;

    /// Encodes a single activation (clamped to `[0, 1]`) into a spike train.
    fn encode_value(&self, value: f32) -> SpikeTrain;

    /// Decodes a spike train back into an approximate activation in `[0, 1]`.
    fn decode_value(&self, train: &SpikeTrain) -> f32;

    /// Encodes a whole feature map into a [`SpikeRaster`] with one binary
    /// plane per time step.
    fn encode_tensor(&self, tensor: &Tensor<f32>) -> SpikeRaster {
        let trains: Vec<SpikeTrain> = tensor.iter().map(|&v| self.encode_value(v)).collect();
        SpikeRaster::from_trains(tensor.shape().clone(), self.time_steps(), &trains)
    }

    /// Decodes a [`SpikeRaster`] back into a real-valued feature map.
    fn decode_tensor(&self, raster: &SpikeRaster) -> Tensor<f32> {
        let trains = raster.to_trains();
        let values: Vec<f32> = trains.iter().map(|t| self.decode_value(t)).collect();
        Tensor::from_vec(raster.shape().clone(), values)
            .expect("raster shape volume matches number of trains")
    }

    /// Mean absolute encode→decode error over a feature map.
    fn reconstruction_error(&self, tensor: &Tensor<f32>) -> f32 {
        let raster = self.encode_tensor(tensor);
        let decoded = self.decode_tensor(&raster);
        let n = tensor.len().max(1) as f32;
        tensor
            .iter()
            .zip(decoded.iter())
            .map(|(a, b)| (a.clamp(0.0, 1.0) - b).abs())
            .sum::<f32>()
            / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix::RadixEncoder;

    #[test]
    fn encoder_trait_object_is_usable() {
        let encoder: Box<dyn Encoder> = Box::new(RadixEncoder::new(4).unwrap());
        assert_eq!(encoder.time_steps(), 4);
        let train = encoder.encode_value(1.0);
        assert_eq!(train.len(), 4);
    }

    #[test]
    fn encode_decode_tensor_roundtrip_shape() {
        let encoder = RadixEncoder::new(3).unwrap();
        let tensor = Tensor::from_vec(vec![2, 2], vec![0.0f32, 0.25, 0.5, 1.0]).unwrap();
        let raster = encoder.encode_tensor(&tensor);
        assert_eq!(raster.shape().dims(), &[2, 2]);
        assert_eq!(raster.time_steps(), 3);
        let decoded = encoder.decode_tensor(&raster);
        assert_eq!(decoded.shape().dims(), &[2, 2]);
    }

    #[test]
    fn reconstruction_error_decreases_with_time_steps() {
        let tensor = Tensor::from_vec(
            vec![8],
            vec![0.05f32, 0.15, 0.33, 0.42, 0.58, 0.66, 0.81, 0.97],
        )
        .unwrap();
        let err3 = RadixEncoder::new(3).unwrap().reconstruction_error(&tensor);
        let err6 = RadixEncoder::new(6).unwrap().reconstruction_error(&tensor);
        assert!(err6 < err3, "expected {err6} < {err3}");
    }
}
