//! Time-to-first-spike (TTFS) encoding.
//!
//! TTFS is another *emerging* neural encoding (alongside radix encoding)
//! that compresses information into few spikes: each neuron emits at most
//! one spike per inference, and the information is carried by *when* it
//! fires — a larger activation fires earlier.  It is included here as a
//! point of comparison for the encoding study: like radix encoding it is
//! order-sensitive (so rate-coded accelerators cannot execute it), but its
//! resolution is only `T + 1` levels per train versus `2^T` for radix,
//! which is why the paper builds on radix encoding.

use crate::{Encoder, EncodingError, Result, SpikeTrain};
use serde::{Deserialize, Serialize};

/// Maximum supported spike-train length for TTFS encoding.
pub const MAX_TIME_STEPS: usize = 4096;

/// Time-to-first-spike encoder: activation `a ∈ [0, 1]` is quantized to one
/// of `T + 1` levels; level `0` stays silent, level `l > 0` fires a single
/// spike at time step `T - l` (larger activations fire earlier).
///
/// # Example
///
/// ```
/// use snn_encoding::{ttfs::TtfsEncoder, Encoder};
///
/// let enc = TtfsEncoder::new(4)?;
/// let strong = enc.encode_value(1.0);
/// let weak = enc.encode_value(0.25);
/// assert_eq!(strong.spike_count(), 1);
/// assert!(strong.spikes().iter().position(|&s| s) < weak.spikes().iter().position(|&s| s));
/// # Ok::<(), snn_encoding::EncodingError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TtfsEncoder {
    time_steps: usize,
}

impl TtfsEncoder {
    /// Creates a TTFS encoder producing trains of `time_steps` steps.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::InvalidTimeSteps`] when `time_steps` is zero
    /// or exceeds [`MAX_TIME_STEPS`].
    pub fn new(time_steps: usize) -> Result<Self> {
        if time_steps == 0 || time_steps > MAX_TIME_STEPS {
            return Err(EncodingError::InvalidTimeSteps {
                requested: time_steps,
                max: MAX_TIME_STEPS,
            });
        }
        Ok(TtfsEncoder { time_steps })
    }

    /// Number of distinguishable activation levels (`T + 1`, including
    /// "never fires").
    pub fn levels(&self) -> usize {
        self.time_steps + 1
    }

    /// The quantized level of an activation: `round(a * T)`.
    pub fn level_of(&self, value: f32) -> usize {
        (value.clamp(0.0, 1.0) * self.time_steps as f32).round() as usize
    }

    /// The firing time for a level, or `None` for the silent level 0.
    pub fn firing_time(&self, level: usize) -> Option<usize> {
        if level == 0 || level > self.time_steps {
            None
        } else {
            Some(self.time_steps - level)
        }
    }
}

impl Encoder for TtfsEncoder {
    fn time_steps(&self) -> usize {
        self.time_steps
    }

    fn encode_value(&self, value: f32) -> SpikeTrain {
        let mut train = SpikeTrain::silent(self.time_steps);
        if let Some(t) = self.firing_time(self.level_of(value)) {
            train.set_spike(t, true);
        }
        train
    }

    fn decode_value(&self, train: &SpikeTrain) -> f32 {
        match train.spikes().iter().position(|&s| s) {
            Some(t) => (self.time_steps - t) as f32 / self.time_steps as f32,
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_lengths() {
        assert!(TtfsEncoder::new(0).is_err());
        assert!(TtfsEncoder::new(MAX_TIME_STEPS + 1).is_err());
        assert!(TtfsEncoder::new(8).is_ok());
    }

    #[test]
    fn at_most_one_spike_per_train() {
        let enc = TtfsEncoder::new(8).unwrap();
        for i in 0..=20 {
            let train = enc.encode_value(i as f32 / 20.0);
            assert!(train.spike_count() <= 1);
        }
    }

    #[test]
    fn larger_activations_fire_earlier() {
        let enc = TtfsEncoder::new(8).unwrap();
        let strong = enc.encode_value(1.0);
        let medium = enc.encode_value(0.5);
        let first = |t: &SpikeTrain| t.spikes().iter().position(|&s| s).unwrap();
        assert!(first(&strong) < first(&medium));
        assert_eq!(first(&strong), 0);
    }

    #[test]
    fn zero_activation_stays_silent() {
        let enc = TtfsEncoder::new(6).unwrap();
        assert_eq!(enc.encode_value(0.0).spike_count(), 0);
        assert_eq!(enc.decode_value(&SpikeTrain::silent(6)), 0.0);
    }

    #[test]
    fn roundtrip_error_bounded_by_half_level() {
        let enc = TtfsEncoder::new(10).unwrap();
        let half_step = 0.5 / 10.0;
        for i in 0..=50 {
            let v = i as f32 / 50.0;
            let d = enc.decode_value(&enc.encode_value(v));
            assert!((v - d).abs() <= half_step + 1e-6, "{v} -> {d}");
        }
    }

    #[test]
    fn resolution_is_linear_not_exponential_in_t() {
        // The reason the paper prefers radix: a TTFS train of length T only
        // distinguishes T + 1 levels, a radix train 2^T.
        let ttfs = TtfsEncoder::new(6).unwrap();
        let radix = crate::radix::RadixEncoder::new(6).unwrap();
        assert_eq!(ttfs.levels(), 7);
        assert_eq!(radix.max_level() + 1, 64);
    }

    #[test]
    fn ttfs_is_sparser_than_radix_at_equal_length() {
        let ttfs = TtfsEncoder::new(6).unwrap();
        let radix = crate::radix::RadixEncoder::new(6).unwrap();
        let mut ttfs_spikes = 0usize;
        let mut radix_spikes = 0usize;
        for i in 0..=63 {
            let v = i as f32 / 63.0;
            ttfs_spikes += ttfs.encode_value(v).spike_count();
            radix_spikes += radix.encode_value(v).spike_count();
        }
        assert!(ttfs_spikes < radix_spikes);
    }
}
