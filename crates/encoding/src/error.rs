use std::fmt;

/// Errors produced when constructing encoders or spike containers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodingError {
    /// The requested spike-train length is outside the supported range.
    InvalidTimeSteps {
        /// The requested number of time steps.
        requested: usize,
        /// The largest supported number of time steps.
        max: usize,
    },
    /// A spike container was built from mismatched pieces.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        context: String,
    },
}

impl fmt::Display for EncodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingError::InvalidTimeSteps { requested, max } => write!(
                f,
                "spike train length {requested} not supported (must be 1..={max})"
            ),
            EncodingError::ShapeMismatch { context } => {
                write!(f, "spike container shape mismatch: {context}")
            }
        }
    }
}

impl std::error::Error for EncodingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_bounds() {
        let err = EncodingError::InvalidTimeSteps {
            requested: 0,
            max: 24,
        };
        assert!(err.to_string().contains("1..=24"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EncodingError>();
    }
}
