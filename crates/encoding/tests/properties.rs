//! Property-based tests for the encoding crate.

use proptest::prelude::*;
use snn_encoding::{radix::RadixEncoder, rate::RateEncoder, Encoder, SpikeRaster, SpikeTrain};
use snn_tensor::Shape;

proptest! {
    /// Radix encode→decode error never exceeds half a quantization step.
    #[test]
    fn radix_roundtrip_error_bounded(value in 0.0f32..=1.0, steps in 1usize..12) {
        let enc = RadixEncoder::new(steps).unwrap();
        let decoded = enc.decode_value(&enc.encode_value(value));
        let half_step = 0.5 / enc.max_level() as f32;
        prop_assert!((value - decoded).abs() <= half_step + 1e-6);
    }

    /// The level interpretation of a radix train equals the left-shift
    /// weighted sum used by the hardware output logic.
    #[test]
    fn radix_weighted_sum_equals_level(level in 0u32..4096, steps in 1usize..12) {
        let enc = RadixEncoder::new(steps).unwrap();
        let train = SpikeTrain::from_level(level, steps);
        prop_assert_eq!(enc.weighted_sum(&train), train.to_level());
    }

    /// Radix encoding is monotone: larger activations never decode to
    /// smaller values.
    #[test]
    fn radix_encoding_is_monotone(a in 0.0f32..=1.0, b in 0.0f32..=1.0, steps in 1usize..10) {
        let enc = RadixEncoder::new(steps).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let d_lo = enc.decode_value(&enc.encode_value(lo));
        let d_hi = enc.decode_value(&enc.encode_value(hi));
        prop_assert!(d_lo <= d_hi + 1e-6);
    }

    /// Rate encoding spike count equals round(value * T) and decoding is the
    /// count divided by T.
    #[test]
    fn rate_spike_count_matches_value(value in 0.0f32..=1.0, steps in 1usize..64) {
        let enc = RateEncoder::new(steps).unwrap();
        let train = enc.encode_value(value);
        let expected = (value * steps as f32).round() as usize;
        prop_assert_eq!(train.spike_count(), expected);
        prop_assert!((enc.decode_value(&train) - expected as f32 / steps as f32).abs() < 1e-6);
    }

    /// At equal train length, radix reconstruction error is never worse than
    /// rate reconstruction error for on-grid radix levels.
    #[test]
    fn radix_no_worse_than_rate_on_grid(level in 0u32..64, steps in 2usize..7) {
        let enc_radix = RadixEncoder::new(steps).unwrap();
        let enc_rate = RateEncoder::new(steps).unwrap();
        let max = enc_radix.max_level();
        let value = (level % (max + 1)) as f32 / max as f32;
        let radix_err = (enc_radix.decode_value(&enc_radix.encode_value(value)) - value).abs();
        let rate_err = (enc_rate.decode_value(&enc_rate.encode_value(value)) - value).abs();
        prop_assert!(radix_err <= rate_err + 1e-6);
    }

    /// Raster round-trips spike trains losslessly.
    #[test]
    fn raster_roundtrip(levels in prop::collection::vec(0u32..256, 1..40), steps in 1usize..9) {
        let trains: Vec<SpikeTrain> = levels
            .iter()
            .map(|&l| SpikeTrain::from_level(l, steps))
            .collect();
        let raster = SpikeRaster::from_trains(Shape::new(vec![trains.len()]), steps, &trains);
        prop_assert_eq!(raster.to_trains(), trains);
    }

    /// Total spike count of the raster equals the sum of the per-train
    /// counts.
    #[test]
    fn raster_total_spikes_is_sum(levels in prop::collection::vec(0u32..64, 1..40)) {
        let steps = 6usize;
        let trains: Vec<SpikeTrain> = levels
            .iter()
            .map(|&l| SpikeTrain::from_level(l, steps))
            .collect();
        let expected: usize = trains.iter().map(|t| t.spike_count()).sum();
        let raster = SpikeRaster::from_trains(Shape::new(vec![trains.len()]), steps, &trains);
        prop_assert_eq!(raster.total_spikes(), expected);
    }
}
