//! # snn-parallel
//!
//! Minimal fork/join helpers built on `std::thread::scope`, used to
//! parallelize output channels inside the processing-unit simulators and
//! batches of inferences in the top-level simulator.
//!
//! The container this workspace builds in has no registry access, so rayon
//! cannot be used; these helpers cover the two shapes the simulator needs —
//! mapping over a slice and processing disjoint mutable chunks — with
//! deterministic output ordering (work is split into contiguous blocks, so
//! results land exactly where a sequential loop would put them).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::thread;

/// Upper bound on worker threads, keeping spawn overhead bounded for the
/// small layer workloads the simulator runs.
pub const MAX_THREADS: usize = 16;

/// Rough number of inner-loop operations below which spawning scoped
/// threads costs more than it saves; callers gate their `threads`
/// argument on a work estimate against this (shared so the processing
/// units stay in sync — the ROADMAP tracks per-host calibration).
pub const MIN_PARALLEL_WORK: u64 = 1 << 15;

/// Number of worker threads to use by default: the machine's available
/// parallelism capped at [`MAX_THREADS`].
pub fn default_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// Splits `len` items into at most `threads` contiguous block ranges of
/// near-equal size.  Returns `(start, end)` pairs covering `0..len`.
pub fn block_ranges(len: usize, threads: usize) -> Vec<(usize, usize)> {
    let workers = threads.clamp(1, len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for worker in 0..workers {
        let size = base + usize::from(worker < extra);
        if size == 0 {
            break;
        }
        ranges.push((start, start + size));
        start += size;
    }
    ranges
}

/// Maps `f` over `items` with up to `threads` scoped worker threads,
/// preserving input order in the output.
///
/// With one thread (or one item) this degrades to a plain sequential map,
/// so callers can gate parallelism on a work estimate without duplicating
/// the loop body.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let ranges = block_ranges(items.len(), threads);
    if ranges.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut results: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    thread::scope(|scope| {
        // Ranges are contiguous from zero, so the result buffer can be
        // peeled off block by block.
        let mut tail: &mut [Option<U>] = &mut results;
        for &(start, end) in &ranges {
            let (block, rest) = tail.split_at_mut(end - start);
            tail = rest;
            let f = &f;
            scope.spawn(move || {
                for (offset, slot) in block.iter_mut().enumerate() {
                    let index = start + offset;
                    *slot = Some(f(index, &items[index]));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

/// Processes `data` as consecutive chunks of `chunk_len` elements, calling
/// `f(chunk_index, chunk)` for each, with chunks distributed over up to
/// `threads` scoped worker threads.
///
/// The final chunk may be shorter when `chunk_len` does not divide
/// `data.len()`.  Chunks are disjoint, so the closure may freely mutate its
/// chunk; results are deterministic regardless of thread count.
///
/// # Panics
///
/// Panics if `chunk_len` is zero.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be non-zero");
    let chunk_count = data.len().div_ceil(chunk_len);
    let ranges = block_ranges(chunk_count, threads);
    if ranges.len() <= 1 {
        for (index, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(index, chunk);
        }
        return;
    }
    thread::scope(|scope| {
        let mut tail = data;
        for &(start, end) in &ranges {
            let block_elems = ((end - start) * chunk_len).min(tail.len());
            let (block, rest) = tail.split_at_mut(block_elems);
            tail = rest;
            let f = &f;
            scope.spawn(move || {
                for (offset, chunk) in block.chunks_mut(chunk_len).enumerate() {
                    f(start + offset, chunk);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_cover_everything_in_order() {
        for len in 0..40 {
            for threads in 1..6 {
                let ranges = block_ranges(len, threads);
                let mut expected_start = 0;
                for &(start, end) in &ranges {
                    assert_eq!(start, expected_start);
                    assert!(end > start);
                    expected_start = end;
                }
                assert_eq!(expected_start, len);
            }
        }
    }

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<u64> = (0..101).collect();
        let sequential: Vec<u64> = items.iter().map(|v| v * v + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let parallel = par_map(&items, threads, |_, v| v * v + 1);
            assert_eq!(parallel, sequential);
        }
    }

    #[test]
    fn par_map_passes_correct_indices() {
        let items = vec![(); 37];
        let indices = par_map(&items, 4, |i, _| i);
        assert_eq!(indices, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        for (len, chunk_len) in [(96usize, 8usize), (97, 8), (5, 8), (64, 1)] {
            let mut data = vec![0u64; len];
            par_chunks_mut(&mut data, chunk_len, 4, |index, chunk| {
                for v in chunk.iter_mut() {
                    *v += 1 + index as u64;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, 1 + (i / chunk_len) as u64, "element {i}");
            }
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |_, v| *v).is_empty());
        let mut none: Vec<u32> = Vec::new();
        par_chunks_mut(&mut none, 3, 4, |_, _| panic!("no chunks expected"));
    }

    #[test]
    fn default_threads_is_positive_and_capped() {
        let t = default_threads();
        assert!(t >= 1);
        assert!(t <= MAX_THREADS);
    }
}
