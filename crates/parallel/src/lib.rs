//! # snn-parallel
//!
//! A persistent worker pool with a global thread budget, used to
//! parallelize output channels inside the processing-unit simulators,
//! batches of inferences in the top-level simulator, and the stage threads
//! of the pipelined execution engine.
//!
//! The container this workspace builds in has no registry access, so rayon
//! cannot be used.  Earlier revisions spawned scoped threads on every
//! `par_map`/`par_chunks_mut` call, which meant nested parallelism (a batch
//! of inferences, each parallelizing its convolution channels) multiplied
//! thread counts and oversubscribed many-core hosts.  This revision fixes
//! that structurally:
//!
//! * **[`ThreadBudget`]** — one process-global budget (see [`budget`])
//!   decides how many threads the whole simulator may keep busy.  It is
//!   read once from the `SNN_THREADS` environment variable, falling back to
//!   the machine's available parallelism (with a floor of two so pipelined
//!   stage overlap is possible even on single-core hosts — stage threads
//!   block on bounded queues, so two threads on one core interleave
//!   safely).
//! * **Persistent worker pool** — `total - 1` workers are spawned lazily on
//!   first use and live for the rest of the process.  [`par_map`] and
//!   [`par_chunks_mut`] split their input into blocks and submit them as
//!   pool tasks via [`run_tasks`]; the calling thread *helps* by executing
//!   queued tasks while it waits, so pool-side compute concurrency never
//!   exceeds the budget no matter how deeply calls nest — a batch worker
//!   that fans out over channels draws from the same queue it runs on.
//! * **Stage leases** — pipeline stage threads (which spend part of their
//!   life blocked on bounded queues) must not run *as* pool tasks or a
//!   full pool could deadlock them against their consumers; instead they
//!   reserve a [`StageLease`] from the budget and spawn a scoped thread.
//!   At most `total - 1` leases exist at any time, so worst-case host
//!   concurrency is bounded by `2 * total - 1` threads (pool + stages) —
//!   a fixed bound, unlike the earlier `batch x channels` multiplication
//!   that grew with the workload.
//! * **IO leases** — long-lived IO-bound threads (the `snn-net` reactor,
//!   which parks in `poll(2)` over every connection; serving dispatchers)
//!   spend their life blocked on descriptors and only *submit* compute
//!   through the serving queue, so they do not consume the compute budget;
//!   they reserve an [`IoLease`] instead, bounded at [`IO_LEASE_FACTOR`]
//!   leases per budgeted thread.  Since the front-end moved to a
//!   single-reactor design, connections are **state, not threads** — a
//!   whole `NetServer` holds one lease, and connection counts are bounded
//!   by its own `max_connections`, not by this cap.
//!
//! Work is always split into contiguous blocks, so results land exactly
//! where a sequential loop would put them and outputs are deterministic
//! regardless of the number of workers.
//!
//! A task that panics does not poison the pool: the panic is caught in the
//! worker, carried back to the submitting call, and resumed there.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// Upper bound on pool worker threads, keeping memory overhead bounded for
/// the small layer workloads the simulator runs.
pub const MAX_THREADS: usize = 16;

/// Rough number of inner-loop operations below which splitting work into
/// pool tasks costs more than it saves; callers gate their `threads`
/// argument on a work estimate against this (shared so the processing
/// units stay in sync — the dense/sparse gather threshold is calibrated
/// the same way via `AcceleratorConfig`).
pub const MIN_PARALLEL_WORK: u64 = 1 << 15;

/// Environment variable that pins the global thread budget (clamped to
/// `1..=MAX_THREADS`), read once at first use.
pub const THREADS_ENV: &str = "SNN_THREADS";

/// How many **IO-bound** threads may be leased per budgeted compute thread
/// (see [`ThreadBudget::try_lease_io_threads`]).  IO threads spend almost
/// all of their life blocked on descriptors, so they can outnumber the
/// compute budget without oversubscribing cores — the factor only bounds
/// thread-stack usage to a fixed multiple of the budget.  The expected
/// population is small and fixed: one reactor per network front-end plus
/// one dispatcher per serving instance, not one thread per connection.
pub const IO_LEASE_FACTOR: usize = 4;

// ---------------------------------------------------------------------------
// Thread budget
// ---------------------------------------------------------------------------

/// The process-global thread budget: how many threads the simulator may
/// keep busy in total, shared between the worker pool (data parallelism)
/// and leased pipeline stage threads (layer overlap).
#[derive(Debug)]
pub struct ThreadBudget {
    total: usize,
    stage_leases: AtomicUsize,
    io_leases: AtomicUsize,
}

impl ThreadBudget {
    /// Creates a budget of `total` threads (clamped to `1..=MAX_THREADS`).
    ///
    /// Intended for tests; production code uses the global [`budget`].
    pub fn new(total: usize) -> Self {
        ThreadBudget {
            total: total.clamp(1, MAX_THREADS),
            stage_leases: AtomicUsize::new(0),
            io_leases: AtomicUsize::new(0),
        }
    }

    fn from_env() -> Self {
        let total = match std::env::var(THREADS_ENV) {
            Ok(v) => v.trim().parse::<usize>().unwrap_or(0),
            Err(_) => 0,
        };
        if total > 0 {
            return ThreadBudget::new(total);
        }
        let cores = thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        // Floor of two: the pipelined executor needs a second context to
        // overlap stages, and stage threads block on bounded queues, so
        // this never busy-spins a single core.  It also means single-core
        // hosts split data-parallel loops in two; measured on the 1-core
        // bench container this is slightly *faster* than the old per-call
        // scoped spawns (BENCH_conv.json), and `SNN_THREADS=1` restores
        // strictly sequential execution.
        ThreadBudget::new(cores.max(2))
    }

    /// Total number of threads this budget allows.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of stage-thread leases currently outstanding.
    pub fn stage_leases_in_flight(&self) -> usize {
        self.stage_leases.load(Ordering::Acquire)
    }

    /// Tries to reserve `want` extra threads for pipeline stages.
    ///
    /// Grants all-or-nothing; at most `total - 1` stage threads can be
    /// leased at any time (the calling thread itself is the other stage).
    /// Returns `None` when the budget is exhausted — callers fall back to
    /// sequential execution, which is always bit-identical.
    pub fn try_lease_stage_threads(&self, want: usize) -> Option<StageLease<'_>> {
        let cap = self.total.saturating_sub(1);
        if !try_reserve(&self.stage_leases, cap, want) {
            return None;
        }
        Some(StageLease {
            budget: self,
            threads: want,
        })
    }

    /// Number of IO-thread leases currently outstanding.
    pub fn io_leases_in_flight(&self) -> usize {
        self.io_leases.load(Ordering::Acquire)
    }

    /// Maximum number of IO threads this budget leases at once
    /// ([`IO_LEASE_FACTOR`] per budgeted thread).
    pub fn io_lease_cap(&self) -> usize {
        self.total.saturating_mul(IO_LEASE_FACTOR)
    }

    /// Tries to reserve `want` threads for **IO-bound** work — e.g. a
    /// network reactor that parks in `poll(2)` over every connection and
    /// only *submits* compute through the bounded serving queue.
    ///
    /// IO threads do not draw down the compute budget (they are parked in
    /// the kernel while the pool works), but they are still bounded — at
    /// most [`ThreadBudget::io_lease_cap`] leases exist at any time.
    /// Grants all-or-nothing; `None` means the host already runs more
    /// event loops than it has any use for, and the caller should degrade
    /// (run leaseless or refuse to start) rather than spawn anyway.
    pub fn try_lease_io_threads(&self, want: usize) -> Option<IoLease<'_>> {
        if !try_reserve(&self.io_leases, self.io_lease_cap(), want) {
            return None;
        }
        Some(IoLease {
            budget: self,
            threads: want,
        })
    }
}

/// All-or-nothing CAS reservation of `want` slots under `cap` outstanding.
fn try_reserve(counter: &AtomicUsize, cap: usize, want: usize) -> bool {
    if want == 0 || cap == 0 {
        return false;
    }
    let mut current = counter.load(Ordering::Acquire);
    loop {
        if current + want > cap {
            return false;
        }
        match counter.compare_exchange_weak(
            current,
            current + want,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return true,
            Err(observed) => current = observed,
        }
    }
}

/// A reservation of pipeline stage threads, returned to the budget on drop.
#[derive(Debug)]
pub struct StageLease<'a> {
    budget: &'a ThreadBudget,
    threads: usize,
}

impl StageLease<'_> {
    /// Number of stage threads this lease grants.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Drop for StageLease<'_> {
    fn drop(&mut self) {
        self.budget
            .stage_leases
            .fetch_sub(self.threads, Ordering::AcqRel);
    }
}

/// A reservation of IO-bound threads (e.g. network connection workers),
/// returned to the budget on drop.
#[derive(Debug)]
pub struct IoLease<'a> {
    budget: &'a ThreadBudget,
    threads: usize,
}

impl IoLease<'_> {
    /// Number of IO threads this lease grants.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Drop for IoLease<'_> {
    fn drop(&mut self) {
        self.budget
            .io_leases
            .fetch_sub(self.threads, Ordering::AcqRel);
    }
}

/// The process-global [`ThreadBudget`], initialized on first use from
/// [`THREADS_ENV`] or the machine's available parallelism.
pub fn budget() -> &'static ThreadBudget {
    static BUDGET: OnceLock<ThreadBudget> = OnceLock::new();
    BUDGET.get_or_init(ThreadBudget::from_env)
}

/// Number of worker threads to use by default: the global budget's total.
///
/// Retained for compatibility with earlier revisions; prefer
/// [`budget`]`.total()` in new code.
pub fn default_threads() -> usize {
    budget().total()
}

/// Runs `f` under `catch_unwind` and converts a panic into an `Err`
/// carrying the panic payload's message — the isolation primitive a
/// supervisor uses to fail *one* unit of work instead of unwinding into
/// its own loop.
///
/// [`run_tasks`] deliberately re-raises task panics on the caller so
/// library misuse stays loud; a serving dispatcher that must survive a
/// poisoned input wraps the per-item body in `catch_panic_message` and
/// maps the message to a typed error instead.  `&str` and `String`
/// payloads (everything `panic!` produces) are extracted verbatim; other
/// payload types degrade to a placeholder.
pub fn catch_panic_message<T, F>(f: F) -> Result<T, String>
where
    F: FnOnce() -> T,
{
    panic::catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        if let Some(message) = payload.downcast_ref::<&str>() {
            (*message).to_string()
        } else if let Some(message) = payload.downcast_ref::<String>() {
            message.clone()
        } else {
            "panic payload of non-string type".to_string()
        }
    })
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A borrowed unit of work accepted by [`run_tasks`].
pub type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
}

fn pool() -> &'static PoolShared {
    static POOL: OnceLock<&'static PoolShared> = OnceLock::new();
    POOL.get_or_init(|| {
        let shared: &'static PoolShared = Box::leak(Box::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
        }));
        // The submitting thread always helps, so `total - 1` workers give a
        // total compute concurrency equal to the budget.
        for index in 0..budget().total().saturating_sub(1) {
            thread::Builder::new()
                .name(format!("snn-pool-{index}"))
                .spawn(move || worker_loop(shared))
                .expect("spawn pool worker");
        }
        shared
    })
}

fn worker_loop(shared: &'static PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.job_ready.wait(queue).expect("pool queue wait");
            }
        };
        // Jobs are wrapped in `catch_unwind` at submission, so this call
        // never unwinds into the worker loop.
        job();
    }
}

struct ScopeState {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn new(tasks: usize) -> Self {
        ScopeState {
            remaining: Mutex::new(tasks),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn finished(&self) -> bool {
        *self.remaining.lock().expect("scope lock") == 0
    }

    fn finish_one(&self) {
        let mut remaining = self.remaining.lock().expect("scope lock");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait_finished(&self) {
        let mut remaining = self.remaining.lock().expect("scope lock");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("scope wait");
        }
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("scope panic lock");
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn resume_panic(&self) {
        if let Some(payload) = self.panic.lock().expect("scope panic lock").take() {
            panic::resume_unwind(payload);
        }
    }
}

/// Erases the borrow lifetime of a task so it can sit in the pool's
/// `'static` job queue.
///
/// SAFETY: sound only because [`run_tasks`] does not return until every
/// submitted task has finished executing (the scope latch counts each
/// wrapper down, including panicking ones), so no borrow held by the task
/// is ever observable after it expires.  The transmute changes nothing but
/// the lifetime parameter of the trait object.
#[allow(unsafe_code)]
fn erase_lifetime<'env>(task: Task<'env>) -> Job {
    unsafe { std::mem::transmute::<Task<'env>, Job>(task) }
}

/// Runs a set of independent tasks on the shared worker pool and returns
/// when all of them have finished.
///
/// The calling thread participates: while its tasks are pending it executes
/// queued tasks itself (its own or other callers'), so concurrency stays
/// within the global [`ThreadBudget`] even when `run_tasks` calls nest —
/// e.g. a batch task that fans out over output channels.  Tasks must not
/// block on anything except their own nested `run_tasks` calls; stage
/// threads that block on queues take a [`StageLease`] instead.
///
/// If a task panics, the panic is re-raised on the calling thread after all
/// tasks of this call have settled.
pub fn run_tasks(tasks: Vec<Task<'_>>) {
    if tasks.is_empty() {
        return;
    }
    if tasks.len() == 1 || budget().total() == 1 {
        for task in tasks {
            task();
        }
        return;
    }
    let scope = Arc::new(ScopeState::new(tasks.len()));
    let shared = pool();
    {
        let mut queue = shared.queue.lock().expect("pool queue lock");
        for task in tasks {
            let job = erase_lifetime(task);
            let scope = Arc::clone(&scope);
            queue.push_back(Box::new(move || {
                if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(job)) {
                    scope.record_panic(payload);
                }
                scope.finish_one();
            }));
        }
    }
    shared.job_ready.notify_all();
    // Help while waiting: execute queued jobs until this scope completes.
    // When the queue is momentarily empty, the remaining tasks of this
    // scope are running on other threads, so blocking on the latch is safe.
    loop {
        if scope.finished() {
            break;
        }
        let job = shared.queue.lock().expect("pool queue lock").pop_front();
        match job {
            Some(job) => job(),
            None => scope.wait_finished(),
        }
    }
    scope.resume_panic();
}

// ---------------------------------------------------------------------------
// Data-parallel helpers
// ---------------------------------------------------------------------------

/// Splits `len` items into at most `threads` contiguous block ranges of
/// near-equal size.  Returns `(start, end)` pairs covering `0..len`.
pub fn block_ranges(len: usize, threads: usize) -> Vec<(usize, usize)> {
    let workers = threads.clamp(1, len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for worker in 0..workers {
        let size = base + usize::from(worker < extra);
        if size == 0 {
            break;
        }
        ranges.push((start, start + size));
        start += size;
    }
    ranges
}

/// Maps `f` over `items` in up to `threads` contiguous blocks submitted to
/// the shared worker pool, preserving input order in the output.
///
/// With one block (or one item) this degrades to a plain sequential map,
/// so callers can gate parallelism on a work estimate without duplicating
/// the loop body.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let ranges = block_ranges(items.len(), threads);
    if ranges.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut results: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    {
        let f = &f;
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(ranges.len());
        // Ranges are contiguous from zero, so the result buffer can be
        // peeled off block by block.
        let mut tail: &mut [Option<U>] = &mut results;
        for &(start, end) in &ranges {
            let (block, rest) = tail.split_at_mut(end - start);
            tail = rest;
            tasks.push(Box::new(move || {
                for (offset, slot) in block.iter_mut().enumerate() {
                    let index = start + offset;
                    *slot = Some(f(index, &items[index]));
                }
            }));
        }
        run_tasks(tasks);
    }
    results
        .into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

/// Processes `data` as consecutive chunks of `chunk_len` elements, calling
/// `f(chunk_index, chunk)` for each, with chunk blocks distributed over up
/// to `threads` pool tasks.
///
/// The final chunk may be shorter when `chunk_len` does not divide
/// `data.len()`.  Chunks are disjoint, so the closure may freely mutate its
/// chunk; results are deterministic regardless of thread count.
///
/// # Panics
///
/// Panics if `chunk_len` is zero.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be non-zero");
    let chunk_count = data.len().div_ceil(chunk_len);
    let ranges = block_ranges(chunk_count, threads);
    if ranges.len() <= 1 {
        for (index, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(index, chunk);
        }
        return;
    }
    let f = &f;
    let mut tasks: Vec<Task<'_>> = Vec::with_capacity(ranges.len());
    let mut tail = data;
    for &(start, end) in &ranges {
        let block_elems = ((end - start) * chunk_len).min(tail.len());
        let (block, rest) = tail.split_at_mut(block_elems);
        tail = rest;
        tasks.push(Box::new(move || {
            for (offset, chunk) in block.chunks_mut(chunk_len).enumerate() {
                f(start + offset, chunk);
            }
        }));
    }
    run_tasks(tasks);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_cover_everything_in_order() {
        for len in 0..40 {
            for threads in 1..6 {
                let ranges = block_ranges(len, threads);
                let mut expected_start = 0;
                for &(start, end) in &ranges {
                    assert_eq!(start, expected_start);
                    assert!(end > start);
                    expected_start = end;
                }
                assert_eq!(expected_start, len);
            }
        }
    }

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<u64> = (0..101).collect();
        let sequential: Vec<u64> = items.iter().map(|v| v * v + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let parallel = par_map(&items, threads, |_, v| v * v + 1);
            assert_eq!(parallel, sequential);
        }
    }

    #[test]
    fn par_map_passes_correct_indices() {
        let items = vec![(); 37];
        let indices = par_map(&items, 4, |i, _| i);
        assert_eq!(indices, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        for (len, chunk_len) in [(96usize, 8usize), (97, 8), (5, 8), (64, 1)] {
            let mut data = vec![0u64; len];
            par_chunks_mut(&mut data, chunk_len, 4, |index, chunk| {
                for v in chunk.iter_mut() {
                    *v += 1 + index as u64;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, 1 + (i / chunk_len) as u64, "element {i}");
            }
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |_, v| *v).is_empty());
        let mut none: Vec<u32> = Vec::new();
        par_chunks_mut(&mut none, 3, 4, |_, _| panic!("no chunks expected"));
    }

    #[test]
    fn default_threads_is_positive_and_capped() {
        let t = default_threads();
        assert!(t >= 1);
        assert!(t <= MAX_THREADS);
    }

    #[test]
    fn nested_par_map_draws_from_one_budget() {
        // A batch that fans out over channels: the inner calls run on the
        // same pool the outer call submitted to, so this must neither
        // deadlock nor produce wrong results.
        let batch: Vec<u64> = (0..8).collect();
        let result = par_map(&batch, 8, |_, &item| {
            let inner: Vec<u64> = (0..64).map(|c| item * 100 + c).collect();
            par_map(&inner, 8, |_, &v| v * 2).iter().sum::<u64>()
        });
        let expected: Vec<u64> = batch
            .iter()
            .map(|&item| (0..64u64).map(|c| (item * 100 + c) * 2).sum())
            .collect();
        assert_eq!(result, expected);
    }

    #[test]
    fn concurrent_scopes_from_many_threads_complete() {
        let handles: Vec<_> = (0..6)
            .map(|t| {
                thread::spawn(move || {
                    let items: Vec<u64> = (0..200).map(|i| i + t).collect();
                    let doubled = par_map(&items, 4, |_, v| v * 2);
                    assert_eq!(doubled[10], (10 + t) * 2);
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("scope thread");
        }
    }

    #[test]
    fn panics_propagate_to_the_caller_and_do_not_poison_the_pool() {
        let items: Vec<u32> = (0..50).collect();
        let result = panic::catch_unwind(|| {
            par_map(&items, 4, |_, &v| {
                if v == 33 {
                    panic!("boom at {v}");
                }
                v
            })
        });
        assert!(result.is_err());
        // The pool keeps working after a panicking scope.
        let ok = par_map(&items, 4, |_, &v| v + 1);
        assert_eq!(ok[49], 50);
    }

    #[test]
    fn catch_panic_message_extracts_str_and_string_payloads() {
        assert_eq!(catch_panic_message(|| 7), Ok(7));
        let literal = catch_panic_message::<(), _>(|| panic!("static boom"));
        assert_eq!(literal, Err("static boom".to_string()));
        let formatted = catch_panic_message::<(), _>(|| panic!("boom {}", 42));
        assert_eq!(formatted, Err("boom 42".to_string()));
        let odd = catch_panic_message::<(), _>(|| panic::panic_any(17u32));
        assert!(odd.unwrap_err().contains("non-string"));
    }

    #[test]
    fn stage_leases_are_bounded_and_returned() {
        let budget = ThreadBudget::new(3);
        assert_eq!(budget.total(), 3);
        let first = budget.try_lease_stage_threads(1).expect("first lease");
        let second = budget.try_lease_stage_threads(1).expect("second lease");
        // Cap is total - 1 = 2.
        assert!(budget.try_lease_stage_threads(1).is_none());
        assert_eq!(budget.stage_leases_in_flight(), 2);
        drop(first);
        assert_eq!(budget.stage_leases_in_flight(), 1);
        let third = budget.try_lease_stage_threads(1).expect("slot freed");
        assert_eq!(third.threads(), 1);
        drop(third);
        drop(second);
        assert_eq!(budget.stage_leases_in_flight(), 0);
    }

    #[test]
    fn lease_requests_are_all_or_nothing() {
        let budget = ThreadBudget::new(4); // cap 3
        let wide = budget.try_lease_stage_threads(3).expect("wide lease");
        assert!(budget.try_lease_stage_threads(1).is_none());
        drop(wide);
        assert!(budget.try_lease_stage_threads(4).is_none()); // over cap
        assert!(budget.try_lease_stage_threads(3).is_some());
    }

    #[test]
    fn io_leases_are_bounded_independently_of_stage_leases() {
        let budget = ThreadBudget::new(2);
        assert_eq!(budget.io_lease_cap(), 2 * IO_LEASE_FACTOR);
        // Exhaust the stage-lease cap; IO leases are still available.
        let stage = budget.try_lease_stage_threads(1).expect("stage lease");
        assert!(budget.try_lease_stage_threads(1).is_none());
        let mut held = Vec::new();
        for _ in 0..budget.io_lease_cap() {
            held.push(budget.try_lease_io_threads(1).expect("io lease"));
        }
        assert_eq!(budget.io_leases_in_flight(), budget.io_lease_cap());
        assert!(budget.try_lease_io_threads(1).is_none());
        // Returning one lease frees exactly one slot.
        held.pop();
        assert!(budget.try_lease_io_threads(1).is_some());
        drop(held);
        drop(stage);
        assert_eq!(budget.io_leases_in_flight(), 0);
        assert_eq!(budget.stage_leases_in_flight(), 0);
    }

    #[test]
    fn io_lease_requests_are_all_or_nothing() {
        let budget = ThreadBudget::new(1); // io cap = IO_LEASE_FACTOR
        assert!(budget.try_lease_io_threads(0).is_none());
        assert!(budget.try_lease_io_threads(IO_LEASE_FACTOR + 1).is_none());
        let wide = budget
            .try_lease_io_threads(IO_LEASE_FACTOR)
            .expect("full-width lease");
        assert_eq!(wide.threads(), IO_LEASE_FACTOR);
        assert!(budget.try_lease_io_threads(1).is_none());
    }

    #[test]
    fn budget_clamps_to_supported_range() {
        assert_eq!(ThreadBudget::new(0).total(), 1);
        assert_eq!(ThreadBudget::new(1000).total(), MAX_THREADS);
        // A single-thread budget grants no stage leases at all.
        assert!(ThreadBudget::new(1).try_lease_stage_threads(1).is_none());
    }

    #[test]
    fn global_budget_allows_stage_overlap() {
        // The global budget has a floor of two, so the pipelined executor
        // can always overlap at least one stage pair (unless leases are
        // already out, which other tests release by then).
        assert!(budget().total() >= 2);
    }
}
