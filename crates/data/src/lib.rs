//! # snn-data
//!
//! Synthetic dataset generators standing in for MNIST and CIFAR-100.
//!
//! The paper evaluates its accelerator on MNIST (LeNet-5 / the CNNs of
//! Fang et al. and Ju et al.) and CIFAR-100 (VGG-11).  Those datasets are
//! not available in this offline environment, so this crate generates
//! *synthetic* classification problems that exercise the identical
//! pipeline — ANN training, 3-bit quantization, ANN-to-SNN conversion,
//! radix encoding and accelerator inference — on inputs of the same shape:
//!
//! * [`digits::SyntheticDigits`] — 10-class, single-channel 28×28 or 32×32
//!   images of procedurally rendered seven-segment-style digits with
//!   per-sample jitter, stroke-width variation and pixel noise.
//! * [`objects::SyntheticObjects`] — N-class, three-channel 32×32 images of
//!   parametric blob/gradient/stripe textures, standing in for CIFAR-100.
//!
//! The substitution is documented in `DESIGN.md`; absolute accuracies are
//! not expected to match the paper, but the relative trends (accuracy vs.
//! spike-train length) are preserved because they are properties of the
//! encoding, not of the data.
//!
//! # Example
//!
//! ```
//! use snn_data::{digits::SyntheticDigits, Dataset};
//!
//! let dataset = SyntheticDigits::new(32).generate(100, 7);
//! assert_eq!(dataset.len(), 100);
//! let (image, label) = dataset.sample(0).expect("non-empty dataset");
//! assert_eq!(image.shape().dims(), &[1, 32, 32]);
//! assert!(label < dataset.num_classes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;

pub mod digits;
pub mod objects;

pub use dataset::{Dataset, DatasetSplit};
