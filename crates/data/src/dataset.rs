use serde::{Deserialize, Serialize};
use snn_tensor::Tensor;

/// An in-memory labelled image dataset.
///
/// Images are `[C, H, W]` tensors with values in `[0, 1]`; labels are class
/// indices below [`Dataset::num_classes`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    images: Vec<Tensor<f32>>,
    labels: Vec<usize>,
    num_classes: usize,
}

/// A train/test partition of a [`Dataset`].
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSplit {
    /// Training portion.
    pub train: Dataset,
    /// Held-out test portion.
    pub test: Dataset,
}

impl Dataset {
    /// Creates a dataset from parallel image and label vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths or a label is out of
    /// range.
    pub fn new(images: Vec<Tensor<f32>>, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(
            images.len(),
            labels.len(),
            "images and labels must have the same length"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "all labels must be below num_classes"
        );
        Dataset {
            images,
            labels,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Returns `true` when the dataset contains no samples.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of distinct classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Returns the image/label pair at `index`, if it exists.
    pub fn sample(&self, index: usize) -> Option<(&Tensor<f32>, usize)> {
        match (self.images.get(index), self.labels.get(index)) {
            (Some(img), Some(&label)) => Some((img, label)),
            _ => None,
        }
    }

    /// Iterates over `(image, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tensor<f32>, usize)> {
        self.images.iter().zip(self.labels.iter().copied())
    }

    /// All labels, in sample order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Splits the dataset into a training and a test portion.
    ///
    /// The first `ceil(len * train_fraction)` samples form the training set;
    /// generators already interleave classes so no additional shuffling is
    /// required for a balanced split.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is not within `(0, 1)`.
    pub fn split(self, train_fraction: f32) -> DatasetSplit {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train_fraction must be in (0, 1)"
        );
        let train_len = ((self.len() as f32) * train_fraction).ceil() as usize;
        let train_len = train_len.min(self.len());
        let mut images = self.images;
        let mut labels = self.labels;
        let test_images = images.split_off(train_len);
        let test_labels = labels.split_off(train_len);
        DatasetSplit {
            train: Dataset::new(images, labels, self.num_classes),
            test: Dataset::new(test_images, test_labels, self.num_classes),
        }
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset(n: usize) -> Dataset {
        let images = (0..n)
            .map(|i| Tensor::filled(vec![1, 2, 2], i as f32 / n as f32))
            .collect();
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new(images, labels, 3)
    }

    #[test]
    fn len_and_sample_access() {
        let d = tiny_dataset(9);
        assert_eq!(d.len(), 9);
        assert_eq!(d.num_classes(), 3);
        let (img, label) = d.sample(4).unwrap();
        assert_eq!(img.shape().dims(), &[1, 2, 2]);
        assert_eq!(label, 1);
        assert!(d.sample(9).is_none());
    }

    #[test]
    fn split_preserves_total_count() {
        let d = tiny_dataset(10);
        let split = d.split(0.8);
        assert_eq!(split.train.len(), 8);
        assert_eq!(split.test.len(), 2);
    }

    #[test]
    fn class_histogram_counts_each_class() {
        let d = tiny_dataset(9);
        assert_eq!(d.class_histogram(), vec![3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        Dataset::new(vec![Tensor::filled(vec![1, 2, 2], 0.0f32)], vec![], 2);
    }

    #[test]
    #[should_panic(expected = "below num_classes")]
    fn out_of_range_label_panics() {
        Dataset::new(vec![Tensor::filled(vec![1, 2, 2], 0.0f32)], vec![5], 2);
    }

    #[test]
    #[should_panic(expected = "train_fraction")]
    fn invalid_split_fraction_panics() {
        tiny_dataset(4).split(1.5);
    }
}
