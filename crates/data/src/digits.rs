//! Procedural MNIST stand-in: seven-segment-style digits rendered with
//! per-sample jitter, thickness variation and additive noise.
//!
//! The generator is deterministic for a given seed, so experiments are
//! reproducible run-to-run.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snn_tensor::Tensor;

/// Which of the seven segments are lit for each digit 0–9.
/// Segment order: top, top-left, top-right, middle, bottom-left,
/// bottom-right, bottom.
const SEGMENTS: [[bool; 7]; 10] = [
    [true, true, true, false, true, true, true],     // 0
    [false, false, true, false, false, true, false], // 1
    [true, false, true, true, true, false, true],    // 2
    [true, false, true, true, false, true, true],    // 3
    [false, true, true, true, false, true, false],   // 4
    [true, true, false, true, false, true, true],    // 5
    [true, true, false, true, true, true, true],     // 6
    [true, false, true, false, false, true, false],  // 7
    [true, true, true, true, true, true, true],      // 8
    [true, true, true, true, false, true, true],     // 9
];

/// Generator for synthetic single-channel digit images.
///
/// # Example
///
/// ```
/// use snn_data::digits::SyntheticDigits;
///
/// let dataset = SyntheticDigits::new(28).generate(50, 1);
/// assert_eq!(dataset.len(), 50);
/// assert_eq!(dataset.num_classes(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticDigits {
    side: usize,
    noise_level: u8,
}

impl SyntheticDigits {
    /// Creates a generator for `side`×`side` single-channel images
    /// (use 28 for the MNIST-shaped CNNs, 32 for LeNet-5's padded input).
    ///
    /// # Panics
    ///
    /// Panics if `side < 12`; the strokes need a minimum canvas.
    pub fn new(side: usize) -> Self {
        assert!(side >= 12, "digit canvas must be at least 12x12");
        SyntheticDigits {
            side,
            noise_level: 10,
        }
    }

    /// Sets the additive pixel-noise amplitude in percent of full scale
    /// (default 10).
    pub fn with_noise_percent(mut self, percent: u8) -> Self {
        self.noise_level = percent.min(100);
        self
    }

    /// Image side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Generates `count` labelled samples with classes interleaved
    /// (0, 1, 2, ... 9, 0, 1, ...), deterministically from `seed`.
    pub fn generate(&self, count: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = Vec::with_capacity(count);
        let mut labels = Vec::with_capacity(count);
        for i in 0..count {
            let digit = i % 10;
            images.push(self.render(digit, &mut rng));
            labels.push(digit);
        }
        Dataset::new(images, labels, 10)
    }

    /// Renders a single digit with random jitter and noise.
    pub fn render<R: Rng + ?Sized>(&self, digit: usize, rng: &mut R) -> Tensor<f32> {
        assert!(digit < 10, "digit must be 0..=9");
        let s = self.side;
        let mut pixels = vec![0.0f32; s * s];

        // Bounding box of the glyph with random jitter.
        let margin = s / 6;
        let jitter_x = rng.gen_range(0..=margin.max(1)) as isize - (margin / 2) as isize;
        let jitter_y = rng.gen_range(0..=margin.max(1)) as isize - (margin / 2) as isize;
        let left = (margin as isize + jitter_x).max(1) as usize;
        let top = (margin as isize + jitter_y).max(1) as usize;
        let right = (s - margin).min(s - 2);
        let bottom = (s - margin).min(s - 2);
        let mid = (top + bottom) / 2;
        // Stroke width grows with the canvas so the glyphs stay legible
        // after pooling layers shrink the feature maps.
        let min_thickness = (s / 16).max(1);
        let max_thickness = (s / 10).max(2);
        let thickness = rng.gen_range(min_thickness..=max_thickness);

        let segs = SEGMENTS[digit];
        let draw_h = |pixels: &mut Vec<f32>, y: usize| {
            for t in 0..thickness {
                let yy = (y + t).min(s - 1);
                for x in left..right {
                    pixels[yy * s + x] = 1.0;
                }
            }
        };
        let draw_v = |pixels: &mut Vec<f32>, x: usize, y0: usize, y1: usize| {
            for t in 0..thickness {
                let xx = (x + t).min(s - 1);
                for y in y0..y1 {
                    pixels[y * s + xx] = 1.0;
                }
            }
        };

        if segs[0] {
            draw_h(&mut pixels, top);
        }
        if segs[3] {
            draw_h(&mut pixels, mid);
        }
        if segs[6] {
            draw_h(&mut pixels, bottom.saturating_sub(thickness));
        }
        if segs[1] {
            draw_v(&mut pixels, left, top, mid);
        }
        if segs[2] {
            draw_v(&mut pixels, right.saturating_sub(thickness), top, mid);
        }
        if segs[4] {
            draw_v(&mut pixels, left, mid, bottom);
        }
        if segs[5] {
            draw_v(&mut pixels, right.saturating_sub(thickness), mid, bottom);
        }

        // Additive uniform noise and clamping.
        let amp = self.noise_level as f32 / 100.0;
        if amp > 0.0 {
            for p in pixels.iter_mut() {
                let noise: f32 = rng.gen_range(-amp..=amp);
                *p = (*p + noise).clamp(0.0, 1.0);
            }
        }

        Tensor::from_vec(vec![1, s, s], pixels).expect("pixel buffer matches canvas size")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_with_balanced_classes() {
        let d = SyntheticDigits::new(28).generate(100, 3);
        assert_eq!(d.len(), 100);
        assert_eq!(d.class_histogram(), vec![10; 10]);
    }

    #[test]
    fn images_have_expected_shape_and_range() {
        let d = SyntheticDigits::new(32).generate(20, 1);
        for (img, _) in d.iter() {
            assert_eq!(img.shape().dims(), &[1, 32, 32]);
            assert!(img.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = SyntheticDigits::new(28).generate(30, 9);
        let b = SyntheticDigits::new(28).generate(30, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticDigits::new(28).generate(30, 1);
        let b = SyntheticDigits::new(28).generate(30, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn different_digits_have_different_glyphs() {
        let gen = SyntheticDigits::new(28).with_noise_percent(0);
        let mut rng = StdRng::seed_from_u64(0);
        let one = gen.render(1, &mut rng);
        let mut rng = StdRng::seed_from_u64(0);
        let eight = gen.render(8, &mut rng);
        // With the same RNG state the jitter is identical, so any difference
        // is due to the glyph itself.
        assert_ne!(one.as_slice(), eight.as_slice());
        // An eight lights every segment, so it has more ink than a one.
        let ink = |t: &Tensor<f32>| t.iter().filter(|&&v| v > 0.5).count();
        assert!(ink(&eight) > ink(&one));
    }

    #[test]
    #[should_panic(expected = "at least 12x12")]
    fn tiny_canvas_rejected() {
        SyntheticDigits::new(8);
    }

    #[test]
    #[should_panic(expected = "digit must be")]
    fn out_of_range_digit_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        SyntheticDigits::new(28).render(10, &mut rng);
    }
}
