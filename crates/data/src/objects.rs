//! Procedural CIFAR-100 stand-in: three-channel 32×32 images of parametric
//! textures (gradients, blobs and stripes) whose parameters are derived from
//! the class index.
//!
//! The VGG-11 experiment in the paper (Table III, last row) is about the
//! accelerator's *scalability* — latency, power and resource usage for a
//! 28.5 M-parameter network with DRAM-resident weights — so the content of
//! the images only needs to flow through the same code path, not to be
//! photographic.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snn_tensor::Tensor;

/// Generator for synthetic multi-class RGB images.
///
/// # Example
///
/// ```
/// use snn_data::objects::SyntheticObjects;
///
/// let dataset = SyntheticObjects::new(32, 100).generate(200, 11);
/// assert_eq!(dataset.len(), 200);
/// assert_eq!(dataset.num_classes(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticObjects {
    side: usize,
    num_classes: usize,
}

impl SyntheticObjects {
    /// Creates a generator for `side`×`side` RGB images with `num_classes`
    /// classes.
    ///
    /// # Panics
    ///
    /// Panics if `side < 8` or `num_classes == 0`.
    pub fn new(side: usize, num_classes: usize) -> Self {
        assert!(side >= 8, "object canvas must be at least 8x8");
        assert!(num_classes > 0, "need at least one class");
        SyntheticObjects { side, num_classes }
    }

    /// Image side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Generates `count` samples with classes interleaved, deterministically
    /// from `seed`.
    pub fn generate(&self, count: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = Vec::with_capacity(count);
        let mut labels = Vec::with_capacity(count);
        for i in 0..count {
            let class = i % self.num_classes;
            images.push(self.render(class, &mut rng));
            labels.push(class);
        }
        Dataset::new(images, labels, self.num_classes)
    }

    /// Renders a single class exemplar with random perturbations.
    pub fn render<R: Rng + ?Sized>(&self, class: usize, rng: &mut R) -> Tensor<f32> {
        assert!(class < self.num_classes, "class out of range");
        let s = self.side;
        let mut pixels = vec![0.0f32; 3 * s * s];

        // Class-derived texture parameters.
        let hue = class as f32 / self.num_classes as f32;
        let stripe_period = 2 + class % 7;
        let blob_count = 1 + class % 4;
        let phase: f32 = rng.gen_range(0.0..1.0);

        // Base gradient per channel.
        for c in 0..3 {
            let channel_gain = match c {
                0 => hue,
                1 => 1.0 - hue,
                _ => (hue * 2.0) % 1.0,
            };
            for y in 0..s {
                for x in 0..s {
                    let g = (x + y) as f32 / (2 * s) as f32;
                    pixels[c * s * s + y * s + x] = 0.3 * channel_gain + 0.3 * g;
                }
            }
        }

        // Stripes in the channel selected by the class parity.
        let stripe_channel = class % 3;
        for y in 0..s {
            for x in 0..s {
                if (x + (phase * stripe_period as f32) as usize).is_multiple_of(stripe_period) {
                    pixels[stripe_channel * s * s + y * s + x] += 0.3;
                }
            }
        }

        // Random blobs whose count is class-dependent.
        for _ in 0..blob_count {
            let cx = rng.gen_range(0..s) as f32;
            let cy = rng.gen_range(0..s) as f32;
            let radius = rng.gen_range(2.0..(s as f32 / 4.0));
            let channel = rng.gen_range(0..3usize);
            for y in 0..s {
                for x in 0..s {
                    let d2 = (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2);
                    if d2 < radius * radius {
                        pixels[channel * s * s + y * s + x] += 0.25;
                    }
                }
            }
        }

        // Mild noise and clamping.
        for p in pixels.iter_mut() {
            let noise: f32 = rng.gen_range(-0.05..0.05);
            *p = (*p + noise).clamp(0.0, 1.0);
        }

        Tensor::from_vec(vec![3, s, s], pixels).expect("pixel buffer matches canvas size")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_rgb_images_in_range() {
        let d = SyntheticObjects::new(32, 100).generate(50, 5);
        for (img, label) in d.iter() {
            assert_eq!(img.shape().dims(), &[3, 32, 32]);
            assert!(img.iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert!(label < 100);
        }
    }

    #[test]
    fn classes_are_interleaved() {
        let d = SyntheticObjects::new(16, 10).generate(30, 1);
        assert_eq!(d.class_histogram(), vec![3; 10]);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticObjects::new(16, 20).generate(40, 2);
        let b = SyntheticObjects::new(16, 20).generate(40, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn different_classes_render_differently() {
        let gen = SyntheticObjects::new(16, 10);
        let mut rng = StdRng::seed_from_u64(0);
        let a = gen.render(0, &mut rng);
        let mut rng = StdRng::seed_from_u64(0);
        let b = gen.render(5, &mut rng);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn out_of_range_class_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        SyntheticObjects::new(16, 10).render(10, &mut rng);
    }
}
