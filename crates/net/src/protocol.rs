//! The `snn-net` wire protocol: length-prefixed binary frames with a
//! versioned header.
//!
//! Every frame is `MAGIC (4) | version u16 | kind u16 | payload length u32
//! | payload`, all integers little-endian.  The codec is a pure function of
//! byte slices — [`Frame::encode`] and [`Frame::decode`] — so it can be
//! property-tested without sockets: decoding never panics, never reads past
//! the declared length, and rejects oversized frames from the header alone
//! (before any payload is buffered), so a hostile peer cannot make the
//! server allocate unboundedly or hang.
//!
//! Incremental reads are first-class: [`Frame::decode`] returns `Ok(None)`
//! while the buffer holds only a prefix of a valid frame, which is how the
//! connection loops feed it straight from `read` without re-framing.
//!
//! # Frame kinds
//!
//! | kind | direction | payload |
//! | --- | --- | --- |
//! | `INFER` (1) | client → server | request id, flags, tensor shape + `f32` values |
//! | `SCORES` (2) | server → client | request id, prediction, logits, report summary |
//! | `REJECTED` (3) | server → client | request id, load-shed scope, queue depth/capacity, retry-after hint, drain rate |
//! | `ERROR` (4) | server → client | request id, error code + message |
//! | `STATS_REQUEST` (5) | client → server | content-negotiation format byte |
//! | `STATS_TEXT` (6) | server → client | plaintext or Prometheus counters |
//!
//! # Request pipelining
//!
//! Version 2 prefixes every request/response payload with a **request id**
//! (`u64`, chosen by the client, unique per connection).  A client may keep
//! any number of INFER frames in flight on one connection; the server
//! answers **in completion order**, echoing each request's id in its
//! SCORES/REJECTED/ERROR reply so the client can correlate out-of-order
//! responses.  Replies the server originates without a request (a
//! connection-scope REJECTED, a protocol-error ERROR) carry
//! [`NO_REQUEST_ID`].
//!
//! Scrapers that do not speak the framing can send the ASCII line `STATS\n`
//! instead (detected before frame decoding because it cannot collide with
//! [`MAGIC`]); the server answers with the same plaintext counters and
//! closes the connection, `nc`-style.

use snn_tensor::Tensor;
use std::fmt;
use std::io::{self, Write};

/// Leading bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SNNF";

/// Protocol version this build speaks.  Version 2 added the request-id
/// field to the INFER/SCORES/REJECTED/ERROR payloads (per-connection
/// pipelining) and the content-negotiation byte to STATS_REQUEST.
/// Version 3 defined the first INFER flag,
/// [`infer_flags::HAS_DEADLINE`], whose presence appends a `u32`
/// queue-wait deadline (milliseconds) to the INFER payload.
pub const VERSION: u16 = 3;

/// Request id carried by server-originated replies that answer no specific
/// request (connection-scope rejections, protocol errors).
pub const NO_REQUEST_ID: u64 = u64::MAX;

/// Bytes of the fixed frame header (magic + version + kind + length).
pub const HEADER_LEN: usize = 12;

/// Upper bound on a frame payload (16 MiB) — enforced from the header
/// alone, before any payload is read.
pub const MAX_PAYLOAD: usize = 16 << 20;

/// Upper bound on the rank of a transmitted tensor.
pub const MAX_RANK: usize = 8;

/// The plaintext request line accepted instead of a framed
/// [`Frame::StatsRequest`].
pub const STATS_LINE: &[u8] = b"STATS";

/// The plaintext request line that drains the per-request trace ring as
/// JSONL — the `nc`-friendly spelling of a framed
/// [`Frame::StatsRequest`] with [`stats_format::TRACES`].
pub const TRACES_LINE: &[u8] = b"TRACES";

/// A malformed or hostile byte stream, detected by the codec.
///
/// Protocol errors are terminal for a connection but must never panic or
/// hang the server — the property suite pins this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The stream does not start with [`MAGIC`] (missing bytes are zero).
    BadMagic([u8; 4]),
    /// The peer speaks an unsupported protocol version.
    Version(u16),
    /// The header names a frame kind this build does not know.
    UnknownKind(u16),
    /// The header declares a payload larger than [`MAX_PAYLOAD`].
    Oversized {
        /// Declared payload length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The payload does not parse as its frame kind.
    Malformed(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic(found) => {
                write!(f, "bad frame magic {found:?} (expected {MAGIC:?})")
            }
            ProtocolError::Version(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {VERSION})"
                )
            }
            ProtocolError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            ProtocolError::Oversized { len, max } => {
                write!(
                    f,
                    "declared payload of {len} bytes exceeds the {max}-byte limit"
                )
            }
            ProtocolError::Malformed(context) => write!(f, "malformed payload: {context}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Load-shed scope carried by a [`RejectReply`].
pub mod reject_scope {
    /// The inference submission queue was full.
    pub const QUEUE: u16 = 1;
    /// The connection-worker set was saturated (no IO lease available).
    pub const CONNECTIONS: u16 = 2;
    /// The request waited in the submission queue past its deadline and
    /// was shed before compute (see [`super::infer_flags::HAS_DEADLINE`]
    /// and `ServerOptions::max_queue_wait`).
    pub const DEADLINE: u16 = 3;
}

/// Bit flags carried by an [`InferRequest`] (see
/// [`InferRequest::deadline_ms`]); servers ignore unknown bits.
pub mod infer_flags {
    /// The payload carries a `u32` queue-wait deadline in milliseconds
    /// immediately after the flags word.
    pub const HAS_DEADLINE: u32 = 1;
}

/// Content-negotiation formats carried by a [`Frame::StatsRequest`].
pub mod stats_format {
    /// Plaintext `key: value` lines (the default).
    pub const TEXT: u8 = 0;
    /// Prometheus exposition format: `# TYPE` lines plus `snn_`-prefixed
    /// metric names, ready for a Prometheus scrape endpoint.
    pub const PROMETHEUS: u8 = 1;
    /// JSONL trace export: one completed `RequestTrace` object per line,
    /// drained (destructively) from the server's span recorder ring.
    pub const TRACES: u8 = 2;
}

/// Error codes carried by an [`ErrorReply`].
pub mod error_code {
    /// The request was structurally valid but could not be executed
    /// (e.g. a tensor shape the compiled model does not accept).
    pub const BAD_REQUEST: u16 = 1;
    /// The server is shutting down and no longer accepts work.
    pub const SHUTTING_DOWN: u16 = 2;
    /// The peer violated the frame protocol.
    pub const PROTOCOL: u16 = 3;
    /// The execution engine panicked on this request; the panic was
    /// isolated to this inference and the server keeps serving.
    pub const ENGINE_PANIC: u16 = 4;
    /// The replica engine this request was placed on died before serving
    /// it.  The request was admitted and then lost — not backpressure —
    /// but sibling replicas keep serving, so the client should resubmit
    /// (the router will place the retry on a healthy replica).
    pub const REPLICA_DOWN: u16 = 5;
}

/// An inference request: an encoded input tensor plus option flags.
#[derive(Debug, Clone, PartialEq)]
pub struct InferRequest {
    /// Client-chosen correlation id, echoed verbatim in the reply.  Must be
    /// unique among this connection's in-flight requests (and not
    /// [`NO_REQUEST_ID`]); reusing an id makes replies ambiguous to the
    /// client, the server does not police it.
    pub request_id: u64,
    /// Request option flags (see [`infer_flags`]); the
    /// [`infer_flags::HAS_DEADLINE`] bit is derived from `deadline_ms` at
    /// encode time, servers ignore unknown bits.
    pub flags: u32,
    /// Per-request **queue-wait deadline** in milliseconds: if the server
    /// cannot start computing within this long of admission, it sheds the
    /// request with a REJECTED frame of scope
    /// [`reject_scope::DEADLINE`] instead of computing it late.  `None`
    /// defers to the server-wide policy.
    pub deadline_ms: Option<u32>,
    /// Tensor shape, outermost dimension first.
    pub shape: Vec<u32>,
    /// Row-major tensor values.
    pub values: Vec<f32>,
}

impl InferRequest {
    /// Packages a tensor for the wire under a correlation id.
    pub fn from_tensor(request_id: u64, tensor: &Tensor<f32>) -> Self {
        InferRequest {
            request_id,
            flags: 0,
            deadline_ms: None,
            shape: tensor.shape().dims().iter().map(|&d| d as u32).collect(),
            values: tensor.as_slice().to_vec(),
        }
    }

    /// Attaches a queue-wait deadline (milliseconds) to this request.
    pub fn with_deadline(mut self, deadline_ms: u32) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Rebuilds the tensor on the receiving side, consuming the request —
    /// the decoded value vector moves straight into the tensor, so the
    /// serving hot path never copies the (up to 16 MiB) payload.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Malformed`] when shape and value count
    /// disagree (decoded frames cannot, but hand-built requests can).
    pub fn into_tensor(self) -> Result<Tensor<f32>, ProtocolError> {
        let dims: Vec<usize> = self.shape.iter().map(|&d| d as usize).collect();
        Tensor::from_vec(dims, self.values)
            .map_err(|e| ProtocolError::Malformed(format!("tensor rebuild: {e}")))
    }

    /// Borrowing variant of [`InferRequest::into_tensor`] (clones the
    /// values) for callers that keep the request.
    ///
    /// # Errors
    ///
    /// See [`InferRequest::into_tensor`].
    pub fn to_tensor(&self) -> Result<Tensor<f32>, ProtocolError> {
        self.clone().into_tensor()
    }

    /// Byte length of this request's encoded payload.
    fn payload_len(&self) -> usize {
        // request id + flags + optional deadline + rank + dims + count +
        // values.
        let deadline = if self.deadline_ms.is_some() { 4 } else { 0 };
        8 + 4 + deadline + 4 + 4 * self.shape.len() + 4 + 4 * self.values.len()
    }

    /// Checks this request against every limit the receiving decoder will
    /// enforce — rank, shape/value agreement and the payload cap — so a
    /// client can fail a too-large tensor locally with the same typed
    /// error instead of having the server kill the connection over it.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] for rank or shape/value mismatches,
    /// [`ProtocolError::Oversized`] when the encoded payload would exceed
    /// [`MAX_PAYLOAD`].
    pub fn validate(&self) -> Result<(), ProtocolError> {
        if self.shape.len() > MAX_RANK {
            return Err(ProtocolError::Malformed(format!(
                "tensor rank {} exceeds the limit of {MAX_RANK}",
                self.shape.len()
            )));
        }
        let volume = self
            .shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d as usize))
            .ok_or_else(|| {
                ProtocolError::Malformed("tensor volume overflows the frame limit".into())
            })?;
        if volume != self.values.len() {
            return Err(ProtocolError::Malformed(format!(
                "value count {} does not match the shape volume {volume}",
                self.values.len()
            )));
        }
        let len = self.payload_len();
        if len > MAX_PAYLOAD {
            return Err(ProtocolError::Oversized {
                len,
                max: MAX_PAYLOAD,
            });
        }
        Ok(())
    }
}

/// Class scores plus a summary of the server-side `RunReport`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreReply {
    /// Echo of the [`InferRequest::request_id`] this reply answers.
    pub request_id: u64,
    /// Predicted class (argmax of `logits`).
    pub prediction: u32,
    /// Spike-train length the inference used.
    pub time_steps: u32,
    /// Effective host thread budget the server drew from.
    pub thread_budget: u32,
    /// Total modelled wall-clock cycles of the inference.
    pub total_cycles: u64,
    /// Raw integer logits, bit-identical to the in-process run.
    pub logits: Vec<i64>,
}

/// Typed load-shedding reply: the request was fine, the server is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejectReply {
    /// Echo of the shed request's id, or [`NO_REQUEST_ID`] when the whole
    /// connection was shed before any request existed.
    pub request_id: u64,
    /// What was saturated — see [`reject_scope`].
    pub scope: u16,
    /// Items waiting when the request was shed (queued submissions, or
    /// leased connection workers for [`reject_scope::CONNECTIONS`]).
    pub queued: u64,
    /// The corresponding capacity.
    pub capacity: u64,
    /// Milliseconds the client should wait before retrying, computed from
    /// the live queue depth and recent drain rate.
    pub retry_after_ms: u64,
    /// Recent drain rate in **milli**-inferences per second (integer so the
    /// wire format stays fixed-width; `0` when unmeasured).
    pub drain_rate_mips: u64,
}

/// A request-level failure (not load shedding) — see [`error_code`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// Echo of the failed request's id, or [`NO_REQUEST_ID`] for
    /// connection-level failures (protocol violations).
    pub request_id: u64,
    /// Machine-readable cause.
    pub code: u16,
    /// Human-readable description.
    pub message: String,
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Inference request (client → server).
    Infer(InferRequest),
    /// Successful inference reply.
    Scores(ScoreReply),
    /// Backpressure reply with a retry-after hint.
    Rejected(RejectReply),
    /// Failure reply.
    Error(ErrorReply),
    /// Request for the serving counters in a [`stats_format`].
    StatsRequest {
        /// Requested exposition format (see [`stats_format`]); an empty
        /// payload decodes as [`stats_format::TEXT`].
        format: u8,
    },
    /// Serving counters rendered in the requested format.
    StatsText(String),
}

const KIND_INFER: u16 = 1;
const KIND_SCORES: u16 = 2;
const KIND_REJECTED: u16 = 3;
const KIND_ERROR: u16 = 4;
const KIND_STATS_REQUEST: u16 = 5;
const KIND_STATS_TEXT: u16 = 6;

impl Frame {
    fn kind(&self) -> u16 {
        match self {
            Frame::Infer(_) => KIND_INFER,
            Frame::Scores(_) => KIND_SCORES,
            Frame::Rejected(_) => KIND_REJECTED,
            Frame::Error(_) => KIND_ERROR,
            Frame::StatsRequest { .. } => KIND_STATS_REQUEST,
            Frame::StatsText(_) => KIND_STATS_TEXT,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Frame::Infer(req) => {
                p.extend_from_slice(&req.request_id.to_le_bytes());
                let mut flags = req.flags & !infer_flags::HAS_DEADLINE;
                if req.deadline_ms.is_some() {
                    flags |= infer_flags::HAS_DEADLINE;
                }
                put_u32(&mut p, flags);
                if let Some(deadline_ms) = req.deadline_ms {
                    put_u32(&mut p, deadline_ms);
                }
                put_u32(&mut p, req.shape.len() as u32);
                for &dim in &req.shape {
                    put_u32(&mut p, dim);
                }
                put_u32(&mut p, req.values.len() as u32);
                for &v in &req.values {
                    p.extend_from_slice(&v.to_le_bytes());
                }
            }
            Frame::Scores(reply) => {
                p.extend_from_slice(&reply.request_id.to_le_bytes());
                put_u32(&mut p, reply.prediction);
                put_u32(&mut p, reply.time_steps);
                put_u32(&mut p, reply.thread_budget);
                p.extend_from_slice(&reply.total_cycles.to_le_bytes());
                put_u32(&mut p, reply.logits.len() as u32);
                for &logit in &reply.logits {
                    p.extend_from_slice(&logit.to_le_bytes());
                }
            }
            Frame::Rejected(reply) => {
                p.extend_from_slice(&reply.request_id.to_le_bytes());
                put_u16(&mut p, reply.scope);
                p.extend_from_slice(&reply.queued.to_le_bytes());
                p.extend_from_slice(&reply.capacity.to_le_bytes());
                p.extend_from_slice(&reply.retry_after_ms.to_le_bytes());
                p.extend_from_slice(&reply.drain_rate_mips.to_le_bytes());
            }
            Frame::Error(reply) => {
                p.extend_from_slice(&reply.request_id.to_le_bytes());
                put_u16(&mut p, reply.code);
                put_u32(&mut p, reply.message.len() as u32);
                p.extend_from_slice(reply.message.as_bytes());
            }
            Frame::StatsRequest { format } => {
                p.push(*format);
            }
            Frame::StatsText(text) => {
                put_u32(&mut p, text.len() as u32);
                p.extend_from_slice(text.as_bytes());
            }
        }
        p
    }

    /// Serializes the frame: header plus payload.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds the `u32` length field — a silent
    /// wrap would desynchronize the stream.  Real requests stay far below
    /// this: [`InferRequest::validate`] bounds them at [`MAX_PAYLOAD`]
    /// before they are encoded.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.payload();
        assert!(
            payload.len() <= u32::MAX as usize,
            "frame payload of {} bytes overflows the u32 length field",
            payload.len()
        );
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        put_u16(&mut out, VERSION);
        put_u16(&mut out, self.kind());
        put_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(&payload);
        out
    }

    /// Tries to decode one frame from the front of `buf`.
    ///
    /// Returns `Ok(Some((frame, consumed)))` when a complete frame parses,
    /// `Ok(None)` when `buf` holds only a prefix of a valid frame (read
    /// more and retry), and an error for malformed input.  Never panics and
    /// never inspects bytes past the declared frame length.
    ///
    /// # Errors
    ///
    /// See [`ProtocolError`].
    pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, ProtocolError> {
        // Magic mismatches are reported from the first divergent byte, so
        // garbage is rejected without waiting for a full header.
        let probe = buf.len().min(MAGIC.len());
        if buf[..probe] != MAGIC[..probe] {
            let mut found = [0u8; 4];
            found[..probe].copy_from_slice(&buf[..probe]);
            return Err(ProtocolError::BadMagic(found));
        }
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != VERSION {
            return Err(ProtocolError::Version(version));
        }
        let kind = u16::from_le_bytes([buf[6], buf[7]]);
        // Knowable from the header alone — reject before buffering a
        // payload that would only be thrown away.
        if !(KIND_INFER..=KIND_STATS_TEXT).contains(&kind) {
            return Err(ProtocolError::UnknownKind(kind));
        }
        let len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]) as usize;
        if len > MAX_PAYLOAD {
            return Err(ProtocolError::Oversized {
                len,
                max: MAX_PAYLOAD,
            });
        }
        if buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let payload = &buf[HEADER_LEN..HEADER_LEN + len];
        let frame = parse_payload(kind, payload)?;
        Ok(Some((frame, HEADER_LEN + len)))
    }

    /// Writes the encoded frame to `w` and flushes.
    ///
    /// # Errors
    ///
    /// Propagates the writer's IO errors.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.encode())?;
        w.flush()
    }
}

fn parse_payload(kind: u16, payload: &[u8]) -> Result<Frame, ProtocolError> {
    let mut r = PayloadReader::new(payload);
    let frame = match kind {
        KIND_INFER => {
            let request_id = u64::from_le_bytes(r.array()?);
            let flags = r.u32()?;
            let deadline_ms = if flags & infer_flags::HAS_DEADLINE != 0 {
                Some(r.u32()?)
            } else {
                None
            };
            let rank = r.u32()? as usize;
            if rank > MAX_RANK {
                return Err(ProtocolError::Malformed(format!(
                    "tensor rank {rank} exceeds the limit of {MAX_RANK}"
                )));
            }
            let mut shape = Vec::with_capacity(rank);
            let mut volume = 1usize;
            for _ in 0..rank {
                let dim = r.u32()?;
                volume = volume
                    .checked_mul(dim as usize)
                    .filter(|&v| v <= MAX_PAYLOAD / 4)
                    .ok_or_else(|| {
                        ProtocolError::Malformed("tensor volume overflows the frame limit".into())
                    })?;
                shape.push(dim);
            }
            let count = r.u32()? as usize;
            if count != volume {
                return Err(ProtocolError::Malformed(format!(
                    "value count {count} does not match the shape volume {volume}"
                )));
            }
            // Bound the allocation by what the payload can actually hold —
            // a lying header must not cost a 16 MiB Vec before the first
            // short read fails.
            if count > payload.len() / 4 {
                return Err(ProtocolError::Malformed(format!(
                    "value count {count} exceeds the payload"
                )));
            }
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                values.push(f32::from_le_bytes(r.array()?));
            }
            Frame::Infer(InferRequest {
                request_id,
                flags: flags & !infer_flags::HAS_DEADLINE,
                deadline_ms,
                shape,
                values,
            })
        }
        KIND_SCORES => {
            let request_id = u64::from_le_bytes(r.array()?);
            let prediction = r.u32()?;
            let time_steps = r.u32()?;
            let thread_budget = r.u32()?;
            let total_cycles = u64::from_le_bytes(r.array()?);
            let count = r.u32()? as usize;
            if count > payload.len() / 8 + 1 {
                return Err(ProtocolError::Malformed(format!(
                    "logit count {count} exceeds the payload"
                )));
            }
            let mut logits = Vec::with_capacity(count);
            for _ in 0..count {
                logits.push(i64::from_le_bytes(r.array()?));
            }
            Frame::Scores(ScoreReply {
                request_id,
                prediction,
                time_steps,
                thread_budget,
                total_cycles,
                logits,
            })
        }
        KIND_REJECTED => Frame::Rejected(RejectReply {
            request_id: u64::from_le_bytes(r.array()?),
            scope: r.u16()?,
            queued: u64::from_le_bytes(r.array()?),
            capacity: u64::from_le_bytes(r.array()?),
            retry_after_ms: u64::from_le_bytes(r.array()?),
            drain_rate_mips: u64::from_le_bytes(r.array()?),
        }),
        KIND_ERROR => {
            let request_id = u64::from_le_bytes(r.array()?);
            let code = r.u16()?;
            let message = r.string()?;
            Frame::Error(ErrorReply {
                request_id,
                code,
                message,
            })
        }
        // An empty payload is TEXT — the format byte is optional so the
        // cheapest possible scraper request stays one bare header.
        KIND_STATS_REQUEST if payload.is_empty() => Frame::StatsRequest {
            format: stats_format::TEXT,
        },
        KIND_STATS_REQUEST => {
            let format = r.array::<1>()?[0];
            if format > stats_format::TRACES {
                return Err(ProtocolError::Malformed(format!(
                    "unknown stats format {format}"
                )));
            }
            Frame::StatsRequest { format }
        }
        KIND_STATS_TEXT => Frame::StatsText(r.string()?),
        other => return Err(ProtocolError::UnknownKind(other)),
    };
    r.finish()?;
    Ok(frame)
}

/// Cursor over a complete payload slice; running short is [`Malformed`],
/// not "read more" — the outer length prefix already guaranteed the bytes.
///
/// [`Malformed`]: ProtocolError::Malformed
struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        PayloadReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.bytes.len() - self.pos < n {
            return Err(ProtocolError::Malformed(format!(
                "payload truncated: wanted {n} bytes at offset {}",
                self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], ProtocolError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtocolError::Malformed("string is not UTF-8".into()))
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.pos != self.bytes.len() {
            return Err(ProtocolError::Malformed(format!(
                "{} trailing payload bytes",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Result of probing a connection's first bytes for a plaintext request
/// line ([`STATS_LINE`] or [`TRACES_LINE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaintextProbe {
    /// Not a plaintext request — decode as frames.
    NotStats,
    /// Could still become a plaintext line; read more bytes first.
    NeedMore,
    /// A complete plaintext stats line, `consumed` bytes long.
    Stats {
        /// Bytes of the request line, including the terminator.
        consumed: usize,
    },
    /// A complete plaintext traces line, `consumed` bytes long.
    Traces {
        /// Bytes of the request line, including the terminator.
        consumed: usize,
    },
}

/// Matches `buf` against one plaintext request line (`\n` or `\r\n`
/// terminated), reporting how many bytes the line consumed.
fn probe_line(buf: &[u8], line: &[u8]) -> Option<PlaintextProbe> {
    let probe = buf.len().min(line.len());
    if buf[..probe] != line[..probe] {
        return None;
    }
    let rest = &buf[probe..];
    if probe < line.len() {
        return Some(PlaintextProbe::NeedMore);
    }
    match rest {
        [] | [b'\r'] => Some(PlaintextProbe::NeedMore),
        [b'\n', ..] => Some(PlaintextProbe::Stats {
            consumed: line.len() + 1,
        }),
        [b'\r', b'\n', ..] => Some(PlaintextProbe::Stats {
            consumed: line.len() + 2,
        }),
        _ => None,
    }
}

/// Checks whether `buf` starts with the plaintext `STATS` line
/// (`\n` or `\r\n` terminated).
///
/// Because [`MAGIC`] is `SNNF`, the prefixes diverge at the second byte,
/// so framed traffic never lingers in [`PlaintextProbe::NeedMore`].
pub fn probe_plaintext_stats(buf: &[u8]) -> PlaintextProbe {
    probe_line(buf, STATS_LINE).unwrap_or(PlaintextProbe::NotStats)
}

/// Checks whether `buf` starts with the plaintext `STATS` *or* `TRACES`
/// line (`\n` or `\r\n` terminated).
///
/// `STATS` and [`MAGIC`] (`SNNF`) diverge at the second byte and
/// `TRACES` diverges from both at the first, so at most one line can be
/// pending and framed traffic never lingers in
/// [`PlaintextProbe::NeedMore`].
pub fn probe_plaintext(buf: &[u8]) -> PlaintextProbe {
    if let Some(result) = probe_line(buf, STATS_LINE) {
        return result;
    }
    match probe_line(buf, TRACES_LINE) {
        Some(PlaintextProbe::Stats { consumed }) => PlaintextProbe::Traces { consumed },
        Some(other) => other,
        None => PlaintextProbe::NotStats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = frame.encode();
        let (decoded, used) = Frame::decode(&bytes).unwrap().expect("complete frame");
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn every_frame_kind_round_trips() {
        roundtrip(Frame::Infer(InferRequest {
            request_id: 41,
            flags: 0,
            deadline_ms: None,
            shape: vec![1, 4, 4],
            values: (0..16).map(|i| i as f32 / 16.0).collect(),
        }));
        roundtrip(Frame::Scores(ScoreReply {
            request_id: 41,
            prediction: 3,
            time_steps: 4,
            thread_budget: 2,
            total_cycles: 123_456,
            logits: vec![-5, 0, 7, 99],
        }));
        roundtrip(Frame::Rejected(RejectReply {
            request_id: NO_REQUEST_ID,
            scope: reject_scope::QUEUE,
            queued: 8,
            capacity: 8,
            retry_after_ms: 40,
            drain_rate_mips: 2_400_000,
        }));
        roundtrip(Frame::Error(ErrorReply {
            request_id: 7,
            code: error_code::BAD_REQUEST,
            message: "shape [9] is not the model input".to_string(),
        }));
        roundtrip(Frame::StatsRequest {
            format: stats_format::TEXT,
        });
        roundtrip(Frame::StatsRequest {
            format: stats_format::PROMETHEUS,
        });
        roundtrip(Frame::StatsRequest {
            format: stats_format::TRACES,
        });
        roundtrip(Frame::StatsText("completed: 7\n".to_string()));
    }

    #[test]
    fn deadline_travels_as_a_flag_plus_trailing_word() {
        let tensor = Tensor::from_vec(vec![4], vec![0.25f32, 0.5, 0.75, 1.0]).unwrap();
        let request = InferRequest::from_tensor(9, &tensor).with_deadline(250);
        assert_eq!(request.deadline_ms, Some(250));
        roundtrip(Frame::Infer(request.clone()));

        // On the wire the deadline is the HAS_DEADLINE flag bit plus a u32
        // right after the flags word; decode strips the bit back out of
        // `flags` so it is pure option-surface, not caller state.
        let bytes = Frame::Infer(request).encode();
        let flags = u32::from_le_bytes(bytes[HEADER_LEN + 8..HEADER_LEN + 12].try_into().unwrap());
        assert_eq!(flags & infer_flags::HAS_DEADLINE, infer_flags::HAS_DEADLINE);
        let wire_deadline =
            u32::from_le_bytes(bytes[HEADER_LEN + 12..HEADER_LEN + 16].try_into().unwrap());
        assert_eq!(wire_deadline, 250);
        let (decoded, _) = Frame::decode(&bytes).unwrap().expect("complete frame");
        match decoded {
            Frame::Infer(req) => {
                assert_eq!(req.flags & infer_flags::HAS_DEADLINE, 0);
                assert_eq!(req.deadline_ms, Some(250));
            }
            other => panic!("expected INFER, got {other:?}"),
        }

        // A deadline-free request encodes byte-identically to version 2.
        let plain = Frame::Infer(InferRequest::from_tensor(9, &tensor)).encode();
        assert_eq!(plain.len() + 4, bytes.len());
    }

    #[test]
    fn empty_stats_request_payload_decodes_as_text() {
        // A bare v2 header with kind STATS_REQUEST and no payload is the
        // cheapest scraper request; it negotiates the plaintext format.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&5u16.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let (frame, used) = Frame::decode(&bytes).unwrap().expect("complete frame");
        assert_eq!(used, bytes.len());
        assert_eq!(
            frame,
            Frame::StatsRequest {
                format: stats_format::TEXT
            }
        );
        // Unknown negotiation bytes are typed errors, not silent fallbacks.
        let mut unknown = Frame::StatsRequest {
            format: stats_format::PROMETHEUS,
        }
        .encode();
        unknown[HEADER_LEN] = 9;
        assert!(matches!(
            Frame::decode(&unknown),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn incremental_prefixes_ask_for_more() {
        let bytes = Frame::Scores(ScoreReply {
            request_id: 3,
            prediction: 1,
            time_steps: 3,
            thread_budget: 2,
            total_cycles: 10,
            logits: vec![1, 2],
        })
        .encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                Frame::decode(&bytes[..cut]).unwrap(),
                None,
                "prefix of {cut} bytes"
            );
        }
    }

    #[test]
    fn bad_magic_is_detected_from_the_first_divergent_byte() {
        assert!(matches!(
            Frame::decode(b"HTTP/1.1 200 OK"),
            Err(ProtocolError::BadMagic(_))
        ));
        // One matching byte, then divergence.
        assert!(matches!(
            Frame::decode(b"Sx"),
            Err(ProtocolError::BadMagic(_))
        ));
    }

    fn stats_request() -> Frame {
        Frame::StatsRequest {
            format: stats_format::TEXT,
        }
    }

    #[test]
    fn version_kind_and_size_limits_are_enforced() {
        let mut wrong_version = stats_request().encode();
        wrong_version[4] = 9;
        assert_eq!(
            Frame::decode(&wrong_version).unwrap_err(),
            ProtocolError::Version(9)
        );

        let mut wrong_kind = stats_request().encode();
        wrong_kind[6] = 77;
        assert_eq!(
            Frame::decode(&wrong_kind).unwrap_err(),
            ProtocolError::UnknownKind(77)
        );

        let mut oversized = Vec::new();
        oversized.extend_from_slice(&MAGIC);
        oversized.extend_from_slice(&VERSION.to_le_bytes());
        oversized.extend_from_slice(&1u16.to_le_bytes());
        oversized.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            Frame::decode(&oversized),
            Err(ProtocolError::Oversized { .. })
        ));
    }

    #[test]
    fn trailing_payload_bytes_are_malformed() {
        let mut bytes = stats_request().encode();
        bytes[8] = 2; // declare a 2-byte payload: format byte + trailing
        bytes.push(0);
        assert!(matches!(
            Frame::decode(&bytes),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn infer_shape_volume_must_match_value_count() {
        let frame = Frame::Infer(InferRequest {
            request_id: 1,
            flags: 0,
            deadline_ms: None,
            shape: vec![2, 3],
            values: vec![0.0; 6],
        });
        let mut bytes = frame.encode();
        // Corrupt one shape dimension (offset: header + id + flags + rank).
        bytes[HEADER_LEN + 16] = 5;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn plaintext_stats_probe_handles_all_shapes() {
        assert_eq!(probe_plaintext_stats(b""), PlaintextProbe::NeedMore);
        assert_eq!(probe_plaintext_stats(b"STA"), PlaintextProbe::NeedMore);
        assert_eq!(probe_plaintext_stats(b"STATS"), PlaintextProbe::NeedMore);
        assert_eq!(probe_plaintext_stats(b"STATS\r"), PlaintextProbe::NeedMore);
        assert_eq!(
            probe_plaintext_stats(b"STATS\n"),
            PlaintextProbe::Stats { consumed: 6 }
        );
        assert_eq!(
            probe_plaintext_stats(b"STATS\r\njunk"),
            PlaintextProbe::Stats { consumed: 7 }
        );
        assert_eq!(probe_plaintext_stats(b"STATUS\n"), PlaintextProbe::NotStats);
        // Framed traffic diverges from "STATS" at the third byte.
        assert_eq!(probe_plaintext_stats(&MAGIC), PlaintextProbe::NotStats);
    }

    #[test]
    fn plaintext_traces_probe_handles_all_shapes() {
        // The combined probe still recognises STATS...
        assert_eq!(
            probe_plaintext(b"STATS\n"),
            PlaintextProbe::Stats { consumed: 6 }
        );
        // ...and resolves TRACES, which diverges from both STATS and the
        // frame magic at the very first byte.
        assert_eq!(probe_plaintext(b""), PlaintextProbe::NeedMore);
        assert_eq!(probe_plaintext(b"TRA"), PlaintextProbe::NeedMore);
        assert_eq!(probe_plaintext(b"TRACES"), PlaintextProbe::NeedMore);
        assert_eq!(probe_plaintext(b"TRACES\r"), PlaintextProbe::NeedMore);
        assert_eq!(
            probe_plaintext(b"TRACES\n"),
            PlaintextProbe::Traces { consumed: 7 }
        );
        assert_eq!(
            probe_plaintext(b"TRACES\r\njunk"),
            PlaintextProbe::Traces { consumed: 8 }
        );
        assert_eq!(probe_plaintext(b"TRACER\n"), PlaintextProbe::NotStats);
        assert_eq!(probe_plaintext(&MAGIC), PlaintextProbe::NotStats);
    }

    #[test]
    fn validate_enforces_the_decoder_limits_client_side() {
        let fine = InferRequest {
            request_id: 1,
            flags: 0,
            deadline_ms: None,
            shape: vec![1, 4, 4],
            values: vec![0.0; 16],
        };
        assert!(fine.validate().is_ok());
        let deep = InferRequest {
            request_id: 2,
            flags: 0,
            deadline_ms: None,
            shape: vec![1; MAX_RANK + 1],
            values: vec![0.0],
        };
        assert!(matches!(deep.validate(), Err(ProtocolError::Malformed(_))));
        let mismatched = InferRequest {
            request_id: 3,
            flags: 0,
            deadline_ms: None,
            shape: vec![3],
            values: vec![0.0; 2],
        };
        assert!(matches!(
            mismatched.validate(),
            Err(ProtocolError::Malformed(_))
        ));
        // A tensor that would overflow the payload cap fails locally with
        // the same typed error the server would raise.
        let over = MAX_PAYLOAD / 4 + 1; // one element past the payload cap
        let huge = InferRequest {
            request_id: 4,
            flags: 0,
            deadline_ms: None,
            shape: vec![over as u32],
            values: vec![0.0; over],
        };
        let oversized = matches!(huge.validate(), Err(ProtocolError::Oversized { .. }));
        assert!(oversized);
    }

    #[test]
    fn infer_request_round_trips_through_a_tensor() {
        let tensor = Tensor::from_vec(vec![2, 2], vec![0.1f32, 0.2, 0.3, 0.4]).unwrap();
        let req = InferRequest::from_tensor(9, &tensor);
        assert_eq!(req.request_id, 9);
        assert_eq!(req.to_tensor().unwrap(), tensor);
        let broken = InferRequest {
            request_id: 0,
            flags: 0,
            deadline_ms: None,
            shape: vec![3],
            values: vec![1.0, 2.0],
        };
        assert!(broken.to_tensor().is_err());
    }
}
