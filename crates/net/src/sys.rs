//! Minimal `extern "C"` bindings for the readiness syscalls the reactor
//! needs: `poll(2)`, `epoll(7)`, `fcntl(2)` and `pipe(2)` — Linux only, no
//! external crate (the workspace has no registry access, and vendoring all
//! of libc for a handful of syscalls would be absurd).
//!
//! Everything `unsafe` in `snn-net` lives in this module, behind safe
//! wrappers:
//!
//! * [`poll_fds`] — block until any registered descriptor is ready (or a
//!   timeout); the scalar O(n) readiness call, kept as the portable
//!   fallback backend.
//! * [`Epoll`] — an `epoll(7)` instance for **edge-triggered** readiness:
//!   descriptors are registered once ([`Epoll::add`]) and only *changes*
//!   of readiness are reported, so a reactor wait is O(ready), not
//!   O(registered).  The scale-out backend; see [`crate::poller::Poller`]
//!   for the backend-neutral wrapper the reactor actually drives.
//! * [`WakePipe`] — a non-blocking self-pipe: any thread calls
//!   [`WakePipe::wake`] to make a `poll`/`epoll_wait` that watches the
//!   read end return immediately.  This is how the serving dispatcher
//!   hands completions to a parked reactor.
//! * [`set_nonblocking`] — `fcntl(F_SETFL, O_NONBLOCK)` on a raw fd
//!   (std covers sockets; the pipe ends need it done by hand).
//!
//! The constants are the Linux generic ABI values (asm-generic), which is
//! the only platform this workspace targets (see CI).

#![allow(unsafe_code)]

use std::io;
use std::os::raw::{c_int, c_ulong, c_void};
use std::os::unix::io::RawFd;
use std::time::Duration;

/// `poll(2)` event: readable (or a peer hang-up made `read` return 0).
pub const POLLIN: i16 = 0x001;
/// `poll(2)` event: writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// `poll(2)` revent: error condition on the descriptor.
pub const POLLERR: i16 = 0x008;
/// `poll(2)` revent: peer hung up.
pub const POLLHUP: i16 = 0x010;
/// `poll(2)` revent: the descriptor is not open.
pub const POLLNVAL: i16 = 0x020;

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const O_NONBLOCK: c_int = 0o4000;
const EINTR: i32 = 4;

/// One registered descriptor of a [`poll_fds`] call — ABI-identical to the
/// kernel's `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The descriptor to watch (negative entries are ignored by the
    /// kernel, which is how unused slots are masked without reshuffling).
    pub fd: RawFd,
    /// Requested events (bitwise OR of [`POLLIN`] / [`POLLOUT`]).
    pub events: i16,
    /// Returned events, filled by the kernel ([`POLLERR`], [`POLLHUP`] and
    /// [`POLLNVAL`] may appear even when not requested).
    pub revents: i16,
}

impl PollFd {
    /// A slot watching `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the kernel reported any of `mask` on this slot.
    pub fn has(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// Whether the kernel reported an error-like condition — the
    /// connection should be torn down.
    pub fn is_error(&self) -> bool {
        self.has(POLLERR | POLLNVAL)
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
}

// --------------------------------------------------------------------------
// epoll(7)
// --------------------------------------------------------------------------

/// `epoll` event: readable (or a peer hang-up made `read` return 0).
pub const EPOLLIN: u32 = 0x001;
/// `epoll` event: writable without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// `epoll` revent: error condition on the descriptor.
pub const EPOLLERR: u32 = 0x008;
/// `epoll` revent: peer hung up (both directions).
pub const EPOLLHUP: u32 = 0x010;
/// `epoll` event: the peer half-closed its sending side (stream sockets).
pub const EPOLLRDHUP: u32 = 0x2000;
/// `epoll` flag: **edge-triggered** delivery — a readiness transition is
/// reported exactly once; the consumer must drain to `EWOULDBLOCK` (or
/// remember that it stopped early) before the next event will fire.
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

/// One `epoll` event record — ABI-identical to the kernel's
/// `struct epoll_event`, which is packed on x86-64 (12 bytes) and
/// naturally aligned everywhere else.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Requested/returned event mask (bitwise OR of `EPOLL*`).
    pub events: u32,
    /// Caller-chosen cookie echoed back verbatim — the reactor stores its
    /// connection token here.
    pub data: u64,
}

impl EpollEvent {
    /// An empty (zeroed) record, for `epoll_wait` output buffers.
    pub fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }
}

/// An `epoll(7)` instance: the edge-triggered readiness backend.
///
/// Descriptors are registered **once** with their full event mask
/// ([`EPOLLET`] included); unlike [`poll_fds`] there is no per-wait
/// interest rebuild — [`Epoll::wait`] returns only descriptors whose
/// readiness *changed*, in O(ready) time.  The owner must respect the
/// edge-triggered contract: on a reported edge, consume until
/// `EWOULDBLOCK` or remember that bytes were deliberately left behind
/// (the reactor's hot-list does the latter for read-burst fairness).
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates the instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1(2)` failures (descriptor exhaustion,
    /// or a kernel without epoll — the caller falls back to `poll`).
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers; a failure is -1/errno.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `event` is a live, exclusively borrowed repr(C) record;
        // the kernel reads it for ADD/MOD and ignores it for DEL.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given `EPOLL*` event mask and cookie.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl(2)` failures (`EBADF` closed fd, `EEXIST`
    /// double registration, `ENOSPC` watch limit).
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Rewrites the event mask/cookie of an already registered `fd`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl(2)` failures (`ENOENT` unregistered fd).
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Unregisters `fd`.  Closing a descriptor unregisters it implicitly;
    /// this exists for symmetry and for descriptors that outlive their
    /// registration (the listener during shutdown).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl(2)` failures (`ENOENT` unregistered fd).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until a registered descriptor reports an edge, the timeout
    /// elapses, or a signal interrupts.  Fills `events` from the front and
    /// returns how many records were written (`0` for timeout; `EINTR` is
    /// reported as `0` so callers treat it as a spurious wake and
    /// re-loop, exactly like [`poll_fds`]).  A full buffer is not lossy:
    /// undelivered ready-list entries are reported by the next wait.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait(2)` failures other than `EINTR`.
    pub fn wait(&self, events: &mut [EpollEvent], timeout: Duration) -> io::Result<usize> {
        #[cfg(feature = "fault-injection")]
        if crate::fault::poll_spurious_wake() {
            // Injected delayed readiness / EINTR: report a spurious
            // timeout without consulting the kernel; callers re-loop.
            return Ok(0);
        }
        if events.is_empty() {
            return Ok(0);
        }
        // Same rounding contract as `poll_fds`: a nonzero sub-millisecond
        // timeout must sleep ~1 ms, not busy-spin.
        let mut millis = timeout.as_millis().min(i32::MAX as u128) as c_int;
        if millis == 0 && !timeout.is_zero() {
            millis = 1;
        }
        // SAFETY: `events` is a valid, exclusively borrowed slice of
        // repr(C) records; the kernel writes at most `events.len()` of
        // them.
        let rc = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), events.len() as c_int, millis) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.raw_os_error() == Some(EINTR) {
            return Ok(0);
        }
        Err(err)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: closes the fd this struct exclusively owns, once.
        unsafe {
            close(self.fd);
        }
    }
}

/// Blocks until at least one slot in `fds` has a ready event, the timeout
/// elapses, or a signal interrupts.  Returns how many slots have non-zero
/// `revents` (`0` for timeout; an `EINTR` is reported as `0` so callers
/// treat it as a spurious wake and re-loop).
///
/// # Errors
///
/// Propagates `poll(2)` failures other than `EINTR` (`EINVAL` for too many
/// descriptors, `ENOMEM`).
pub fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    #[cfg(feature = "fault-injection")]
    if crate::fault::poll_spurious_wake() {
        // Injected delayed readiness / EINTR: report a spurious timeout
        // without consulting the kernel; callers re-loop.
        return Ok(0);
    }
    // Round a nonzero timeout *up* to at least 1 ms: `as_millis` truncates,
    // so a sub-millisecond duration would become 0 and turn every poll
    // into a busy-spin.
    let mut millis = timeout.as_millis().min(i32::MAX as u128) as c_int;
    if millis == 0 && !timeout.is_zero() {
        millis = 1;
    }
    // SAFETY: `fds` is a valid, exclusively borrowed slice of repr(C)
    // pollfd records; the kernel writes only within `fds.len()` entries.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, millis) };
    if rc >= 0 {
        return Ok(rc as usize);
    }
    let err = io::Error::last_os_error();
    if err.raw_os_error() == Some(EINTR) {
        return Ok(0);
    }
    Err(err)
}

/// Switches a raw descriptor to non-blocking mode via
/// `fcntl(F_GETFL/F_SETFL)`.
///
/// # Errors
///
/// Propagates `fcntl(2)` failures (`EBADF` for a closed descriptor).
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl with GETFL/SETFL only reads/updates the file status
    // flags of `fd`; an invalid fd yields -1/EBADF, not UB.
    let flags = unsafe { fcntl(fd, F_GETFL) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    let rc = unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// A self-pipe that wakes a reactor parked in [`poll_fds`].
///
/// Both ends are non-blocking.  [`WakePipe::wake`] writes one byte (from
/// any thread — the write end is never closed while the pipe lives);
/// the reactor registers [`WakePipe::read_fd`] with `POLLIN` and calls
/// [`WakePipe::drain`] after every wake.  A full pipe is not an error:
/// the reader is already guaranteed to wake, which is the only contract.
#[derive(Debug)]
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

// SAFETY-free: raw fds are plain integers; the kernel serialises pipe
// reads/writes, and wake/drain never touch shared Rust state.
impl WakePipe {
    /// Creates the pipe with both ends non-blocking.
    ///
    /// # Errors
    ///
    /// Propagates `pipe(2)`/`fcntl(2)` failures (descriptor exhaustion).
    pub fn new() -> io::Result<Self> {
        let mut fds = [-1 as c_int; 2];
        // SAFETY: `fds` is a valid 2-slot buffer, exactly what pipe(2)
        // writes.
        let rc = unsafe { pipe(fds.as_mut_ptr()) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        let this = WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        };
        set_nonblocking(this.read_fd)?;
        set_nonblocking(this.write_fd)?;
        Ok(this)
    }

    /// The end a reactor registers with [`POLLIN`].
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Makes any in-flight or future [`poll_fds`] on the read end return.
    /// Never blocks: when the pipe buffer is full the wake is already
    /// pending, so the failed write is deliberately ignored.
    pub fn wake(&self) {
        #[cfg(feature = "fault-injection")]
        if crate::fault::drop_wake_byte() {
            // Injected lost wake: safe to drop because the reactor drains
            // its completion channel unconditionally every round and the
            // poll interval bounds the sleep — the byte is an accelerant,
            // not a correctness requirement (chaos.rs pins this).
            return;
        }
        let byte = [1u8];
        // SAFETY: writes one byte from a live stack buffer to an fd this
        // struct owns; O_NONBLOCK turns a full pipe into EAGAIN.
        let _ = unsafe { write(self.write_fd, byte.as_ptr() as *const c_void, 1) };
    }

    /// Empties the pipe so the next [`poll_fds`] blocks again.  Coalesced
    /// wakes are expected: callers must re-check *all* wake sources after
    /// draining, not count bytes.
    ///
    /// Slurps *all* pending bytes per readiness event: under a completion
    /// storm every settled inference writes a wake byte, and a pipe holds
    /// 64 KiB of them — the sink must be large enough that one drain is a
    /// handful of `read(2)`s, not thousands (a 64-byte sink once meant a
    /// 10 k-completion storm cost ~160 syscalls per poll round).
    pub fn drain(&self) {
        let mut sink = [0u8; 4096];
        loop {
            // SAFETY: reads into a live stack buffer from an owned fd;
            // an empty non-blocking pipe returns -1/EAGAIN which ends the
            // loop, as does EOF.
            let n = unsafe { read(self.read_fd, sink.as_mut_ptr() as *mut c_void, sink.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: closes the two fds this struct exclusively owns, once.
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pipe_wakes_a_poll_and_drains() {
        let pipe = WakePipe::new().unwrap();
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        // Nothing pending: a short poll times out.
        assert_eq!(poll_fds(&mut fds, Duration::from_millis(10)).unwrap(), 0);
        pipe.wake();
        let ready = poll_fds(&mut fds, Duration::from_secs(5)).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].has(POLLIN));
        pipe.drain();
        fds[0].revents = 0;
        assert_eq!(poll_fds(&mut fds, Duration::from_millis(10)).unwrap(), 0);
    }

    #[test]
    fn wake_from_another_thread_unblocks_poll() {
        let pipe = std::sync::Arc::new(WakePipe::new().unwrap());
        let waker = std::sync::Arc::clone(&pipe);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        let ready = poll_fds(&mut fds, Duration::from_secs(10)).unwrap();
        assert_eq!(ready, 1, "the cross-thread wake must end the poll");
        handle.join().unwrap();
    }

    #[test]
    fn repeated_wakes_never_block_even_with_a_full_pipe() {
        let pipe = WakePipe::new().unwrap();
        // A pipe buffer is 64 KiB by default; far overshoot it.
        for _ in 0..100_000 {
            pipe.wake();
        }
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, Duration::from_secs(5)).unwrap(), 1);
        pipe.drain();
        fds[0].revents = 0;
        assert_eq!(poll_fds(&mut fds, Duration::from_millis(10)).unwrap(), 0);
    }

    #[test]
    fn a_flood_of_wakes_drains_in_one_readiness_event() {
        // Regression: 10 k completions each write one wake byte before the
        // reactor gets scheduled.  One drain per readiness event must slurp
        // the whole backlog — afterwards the pipe is empty (poll times out)
        // and a single fresh wake still gets through.
        let pipe = WakePipe::new().unwrap();
        for _ in 0..10_000 {
            pipe.wake();
        }
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, Duration::from_secs(5)).unwrap(), 1);
        assert!(fds[0].has(POLLIN));
        pipe.drain();
        fds[0].revents = 0;
        assert_eq!(
            poll_fds(&mut fds, Duration::from_millis(10)).unwrap(),
            0,
            "one drain call must consume the entire 10k-byte backlog"
        );
        // The pipe still works after the flood: wake, poll, drain, quiet.
        pipe.wake();
        assert_eq!(poll_fds(&mut fds, Duration::from_secs(5)).unwrap(), 1);
        pipe.drain();
        fds[0].revents = 0;
        assert_eq!(poll_fds(&mut fds, Duration::from_millis(10)).unwrap(), 0);
    }

    #[test]
    fn negative_fds_are_ignored_slots() {
        let pipe = WakePipe::new().unwrap();
        pipe.wake();
        let mut fds = [PollFd::new(-1, POLLIN), PollFd::new(pipe.read_fd(), POLLIN)];
        let ready = poll_fds(&mut fds, Duration::from_secs(5)).unwrap();
        assert_eq!(ready, 1);
        assert!(!fds[0].has(POLLIN));
        assert!(fds[1].has(POLLIN));
    }

    #[test]
    fn set_nonblocking_rejects_a_closed_fd() {
        // fd -1 is never valid.
        assert!(set_nonblocking(-1).is_err());
    }

    // ---- epoll wrapper: mirrors of the poll_fds suite ------------------

    fn wait_one(ep: &Epoll, timeout: Duration) -> Vec<EpollEvent> {
        let mut buf = [EpollEvent::zeroed(); 8];
        let n = ep.wait(&mut buf, timeout).unwrap();
        buf[..n].to_vec()
    }

    #[test]
    fn epoll_wake_pipe_wakes_a_wait_and_drains() {
        let pipe = WakePipe::new().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(pipe.read_fd(), EPOLLIN | EPOLLET, 7).unwrap();
        // Nothing pending: a short wait times out.
        assert!(wait_one(&ep, Duration::from_millis(10)).is_empty());
        pipe.wake();
        let events = wait_one(&ep, Duration::from_secs(5));
        assert_eq!(events.len(), 1);
        assert_eq!({ events[0].data }, 7, "the cookie round-trips");
        assert_ne!({ events[0].events } & EPOLLIN, 0);
        pipe.drain();
        assert!(wait_one(&ep, Duration::from_millis(10)).is_empty());
    }

    #[test]
    fn epoll_wake_from_another_thread_unblocks_wait() {
        let pipe = std::sync::Arc::new(WakePipe::new().unwrap());
        let ep = Epoll::new().unwrap();
        ep.add(pipe.read_fd(), EPOLLIN | EPOLLET, 1).unwrap();
        let waker = std::sync::Arc::clone(&pipe);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let events = wait_one(&ep, Duration::from_secs(10));
        assert_eq!(events.len(), 1, "the cross-thread wake must end the wait");
        handle.join().unwrap();
    }

    #[test]
    fn epoll_flood_of_wakes_drains_in_one_readiness_event() {
        let pipe = WakePipe::new().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(pipe.read_fd(), EPOLLIN | EPOLLET, 1).unwrap();
        for _ in 0..10_000 {
            pipe.wake();
        }
        assert_eq!(wait_one(&ep, Duration::from_secs(5)).len(), 1);
        pipe.drain();
        assert!(wait_one(&ep, Duration::from_millis(10)).is_empty());
        // The pipe still works after the flood: wake, wait, drain, quiet.
        pipe.wake();
        assert_eq!(wait_one(&ep, Duration::from_secs(5)).len(), 1);
        pipe.drain();
        assert!(wait_one(&ep, Duration::from_millis(10)).is_empty());
    }

    /// The edge-triggered contract, pinned: readiness that was already
    /// reported is **not** reported again until the descriptor is drained
    /// and becomes readable anew.  This is the failure mode the reactor's
    /// hot-list exists for.
    #[test]
    fn epoll_edge_trigger_reports_a_transition_exactly_once() {
        let pipe = WakePipe::new().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(pipe.read_fd(), EPOLLIN | EPOLLET, 9).unwrap();
        pipe.wake();
        assert_eq!(wait_one(&ep, Duration::from_secs(5)).len(), 1);
        // The byte is still in the pipe, but the edge was consumed: an
        // edge-triggered wait must now time out where poll(2) would have
        // re-reported level readiness forever.
        assert!(
            wait_one(&ep, Duration::from_millis(20)).is_empty(),
            "EPOLLET re-reported un-drained readiness"
        );
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(
            poll_fds(&mut fds, Duration::from_millis(10)).unwrap(),
            1,
            "level-triggered poll still sees the pending byte"
        );
        // A *new* byte is a new edge.
        pipe.wake();
        assert_eq!(wait_one(&ep, Duration::from_secs(5)).len(), 1);
    }

    #[test]
    fn epoll_rejects_a_closed_fd_and_double_registration() {
        let ep = Epoll::new().unwrap();
        assert!(ep.add(-1, EPOLLIN, 0).is_err(), "EBADF surfaces");
        let pipe = WakePipe::new().unwrap();
        ep.add(pipe.read_fd(), EPOLLIN | EPOLLET, 1).unwrap();
        assert!(
            ep.add(pipe.read_fd(), EPOLLIN | EPOLLET, 2).is_err(),
            "EEXIST surfaces"
        );
        ep.delete(pipe.read_fd()).unwrap();
        assert!(ep.delete(pipe.read_fd()).is_err(), "ENOENT surfaces");
        // Re-registration after delete works, and modify rewrites the
        // cookie.
        ep.add(pipe.read_fd(), EPOLLIN | EPOLLET, 3).unwrap();
        ep.modify(pipe.read_fd(), EPOLLIN | EPOLLET, 4).unwrap();
        pipe.wake();
        let events = wait_one(&ep, Duration::from_secs(5));
        assert_eq!({ events[0].data }, 4);
    }

    #[test]
    fn epoll_submillisecond_timeouts_round_up_instead_of_busy_spinning() {
        let pipe = WakePipe::new().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(pipe.read_fd(), EPOLLIN | EPOLLET, 1).unwrap();
        let start = std::time::Instant::now();
        for _ in 0..20 {
            assert!(wait_one(&ep, Duration::from_micros(100)).is_empty());
        }
        assert!(
            start.elapsed() >= Duration::from_millis(10),
            "20 sub-ms waits finished in {:?}: the timeout truncated to 0",
            start.elapsed()
        );
        // A genuinely zero timeout still returns immediately.
        let start = std::time::Instant::now();
        for _ in 0..100 {
            wait_one(&ep, Duration::ZERO);
        }
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn submillisecond_timeouts_round_up_instead_of_busy_spinning() {
        // A nonzero timeout below 1 ms used to truncate to a zero-timeout
        // poll; with nothing ready the call must now take at least ~1 ms
        // (the rounded-up kernel timeout), not return instantly.  One
        // iteration could be unlucky on a loaded host, so require only
        // that the *sum* of many polls shows real sleeping.
        let pipe = WakePipe::new().unwrap();
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        let start = std::time::Instant::now();
        for _ in 0..20 {
            fds[0].revents = 0;
            assert_eq!(poll_fds(&mut fds, Duration::from_micros(100)).unwrap(), 0);
        }
        assert!(
            start.elapsed() >= Duration::from_millis(10),
            "20 sub-ms polls finished in {:?}: the timeout truncated to 0",
            start.elapsed()
        );
        // A genuinely zero timeout still returns immediately.
        let start = std::time::Instant::now();
        for _ in 0..100 {
            fds[0].revents = 0;
            poll_fds(&mut fds, Duration::ZERO).unwrap();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
    }
}
