//! The TCP front-end: an acceptor plus a bounded thread-per-connection
//! worker set over [`StreamServer`].
//!
//! [`NetServer::bind`] compiles the model once (via
//! [`StreamServer::start_with`]), binds a listener and starts accepting.
//! Each admitted connection gets a worker thread that decodes frames
//! incrementally, submits inferences to the shared in-process server and
//! writes replies back — so every score a TCP client receives is
//! bit-identical to the matching in-process [`StreamServer::submit`].
//!
//! # Backpressure, end to end
//!
//! Load shedding is typed at both layers and always carries a retry hint
//! computed from the live [`StreamServer::queue_snapshot`]:
//!
//! * **Submission queue full** — `submit` returns
//!   [`snn_accel::AccelError::QueueFull`]; the worker answers with a
//!   REJECTED frame (`scope = queue`) instead of an error, quoting the
//!   observed depth, the capacity, and how long the dispatcher needs to
//!   drain the backlog at its recent rate.
//! * **Connection workers saturated** — worker threads are bounded by
//!   [`snn_parallel::ThreadBudget::try_lease_io_threads`]; when no lease is
//!   available the acceptor sheds the connection with a REJECTED frame
//!   (`scope = connections`) before closing it.
//!
//! # Shutdown
//!
//! [`NetServer::shutdown`] stops the acceptor, lets every worker finish the
//! requests it has already read (in-flight inferences drain; replies are
//! written), joins them, and only then tears down the inner server — so a
//! clean shutdown never drops an accepted request on the floor.

use crate::error::NetError;
use crate::protocol::{
    error_code, probe_plaintext_stats, reject_scope, ErrorReply, Frame, PlaintextProbe,
    RejectReply, ScoreReply,
};
use snn_accel::config::AcceleratorConfig;
use snn_accel::serve::{QueueSnapshot, ServerOptions, ServerStats, StreamServer};
use snn_accel::AccelError;
use snn_model::snn::SnnModel;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Options of a [`NetServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetOptions {
    /// Options of the inner [`StreamServer`] (micro-batching, queue
    /// capacity, execution mode) — validated by its constructor.
    pub server: ServerOptions,
    /// How often blocked reads and the acceptor wake up to check for
    /// shutdown; the latency ceiling of a graceful shutdown, not of
    /// requests.
    pub poll_interval: Duration,
    /// A connection that has sent no complete request for this long is
    /// closed and its IO lease reclaimed.  Without the deadline,
    /// `io_lease_cap` silent sockets would pin every worker slot forever
    /// and starve new connections while the server sits idle.
    pub idle_timeout: Duration,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            server: ServerOptions::default(),
            poll_interval: Duration::from_millis(20),
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// How long a reply write may block before the connection is declared
/// dead.  A client that pipelines requests but never reads its replies
/// fills the kernel send buffer; without this bound the worker would
/// block in `write_all` forever, pinning its IO lease and wedging
/// [`NetServer::shutdown`] on the join.  A partial write after a timeout
/// leaves the stream desynchronized, so the worker closes it.
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Cap on concurrent shed threads (each lives for at most ~300 ms while
/// it writes one REJECTED frame).  Past the cap, surplus connections are
/// dropped without a frame — under that much flood, typed rejection
/// inevitably degrades to kernel-level drops anyway, but the acceptor
/// itself never blocks on a shed peer.
pub const MAX_SHED_THREADS: usize = 32;

/// Floor of the retry-after hint on connection-scope rejections
/// (milliseconds).  Leases free when a connection finishes or idles out —
/// nothing the queue drain rate can predict — so the hint is a polite
/// back-off floor rather than a measurement.
pub const CONNECTIONS_RETRY_AFTER_MS: u64 = 100;

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    turned_away: AtomicU64,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    stats_requests: AtomicU64,
}

/// Snapshot of a [`NetServer`]'s counters plus the inner serving stats.
#[derive(Debug, Clone, PartialEq)]
pub struct NetStats {
    /// TCP connections accepted (admitted or shed).
    pub accepted: u64,
    /// Connections shed because no IO lease was available.
    pub turned_away: u64,
    /// Inference requests received over the wire.
    pub requests: u64,
    /// Connections terminated for violating the frame protocol.
    pub protocol_errors: u64,
    /// STATS requests served (framed or plaintext).
    pub stats_requests: u64,
    /// The inner [`StreamServer`] statistics (completed, rejected, queue
    /// snapshot, per-unit utilisation, ...).
    pub server: ServerStats,
}

struct NetShared {
    server: StreamServer,
    options: NetOptions,
    shutdown: AtomicBool,
    counters: Counters,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Short-lived shed threads currently writing REJECTED frames,
    /// bounded at [`MAX_SHED_THREADS`].
    sheds_in_flight: AtomicUsize,
}

/// A listening TCP serving front-end.  See the module docs.
#[derive(Debug)]
pub struct NetServer {
    shared: Arc<NetShared>,
    acceptor: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl std::fmt::Debug for NetShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetShared")
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Compiles `model`, binds `addr` (use port `0` for an ephemeral port)
    /// and starts serving.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamServer::start_with`] errors (invalid options,
    /// unmappable model) and socket errors from binding.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        config: AcceleratorConfig,
        model: SnnModel,
        options: NetOptions,
    ) -> Result<Self, NetError> {
        let server = StreamServer::start_with(config, model, options.server)?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(NetShared {
            server,
            options,
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            workers: Mutex::new(Vec::new()),
            sheds_in_flight: AtomicUsize::new(0),
        });
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = thread::Builder::new()
            .name("snn-net-accept".to_string())
            .spawn(move || accept_loop(&acceptor_shared, &listener))?;
        Ok(NetServer {
            shared,
            acceptor: Some(acceptor),
            local_addr,
        })
    }

    /// The bound address — where clients connect.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the front-end counters and the inner serving stats.
    pub fn stats(&self) -> NetStats {
        let c = &self.shared.counters;
        NetStats {
            accepted: c.accepted.load(Ordering::Relaxed),
            turned_away: c.turned_away.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            stats_requests: c.stats_requests.load(Ordering::Relaxed),
            server: self.shared.server.stats(),
        }
    }

    /// Gracefully shuts down: stop accepting, drain in-flight requests,
    /// join every worker, and return the final statistics.
    pub fn shutdown(mut self) -> NetStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // A panicked worker must not turn shutdown into a panic of its own
        // (or a double-panic abort when this runs from Drop during
        // unwinding): the join error is swallowed and teardown continues.
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let workers = std::mem::take(&mut *self.shared.workers.lock().expect("worker registry"));
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(shared: &Arc<NetShared>, listener: &TcpListener) {
    let mut connection_index = 0u64;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
                admit(shared, stream, connection_index);
                connection_index += 1;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(shared.options.poll_interval);
            }
            // Transient accept errors (ECONNABORTED etc.): keep listening.
            Err(_) => thread::sleep(shared.options.poll_interval),
        }
    }
}

/// Hands an accepted connection to a leased worker thread, or sheds it
/// with a typed REJECTED frame when the worker set is saturated.
fn admit(shared: &Arc<NetShared>, stream: TcpStream, index: u64) {
    let budget = snn_parallel::budget();
    let Some(lease) = budget.try_lease_io_threads(1) else {
        shared.counters.turned_away.fetch_add(1, Ordering::Relaxed);
        spawn_shed(shared, stream);
        return;
    };
    let conn_shared = Arc::clone(shared);
    // A duplicate handle survives the closure taking the stream, so a
    // failed spawn can still answer before hanging up.
    let shed_handle = stream.try_clone();
    let spawned = thread::Builder::new()
        .name(format!("snn-net-conn-{index}"))
        .spawn(move || {
            // The lease lives exactly as long as the worker thread.
            let _lease = lease;
            run_connection(&conn_shared, stream);
        });
    match spawned {
        Ok(handle) => {
            let mut workers = shared.workers.lock().expect("worker registry");
            // Finished workers have already released their lease; dropping
            // their handles just detaches the dead threads.
            workers.retain(|h| !h.is_finished());
            workers.push(handle);
        }
        // Thread spawn fails exactly under resource exhaustion — the same
        // saturation the lease guards against, so shed the same way.
        Err(_) => {
            shared.counters.turned_away.fetch_add(1, Ordering::Relaxed);
            if let Ok(handle) = shed_handle {
                spawn_shed(shared, handle);
            }
        }
    }
}

/// Sheds a connection on a short-lived throwaway thread so the (blocking)
/// REJECTED write and drain never stall the acceptor.  Thread count is
/// bounded at [`MAX_SHED_THREADS`]; past the cap — or if the spawn itself
/// fails — the connection is simply dropped.
fn spawn_shed(shared: &Arc<NetShared>, stream: TcpStream) {
    let admitted = shared
        .sheds_in_flight
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
            (n < MAX_SHED_THREADS).then_some(n + 1)
        })
        .is_ok();
    if !admitted {
        return;
    }
    let shed_shared = Arc::clone(shared);
    let spawned = thread::Builder::new()
        .name("snn-net-shed".to_string())
        .spawn(move || {
            shed(&shed_shared, stream);
            shed_shared.sheds_in_flight.fetch_sub(1, Ordering::AcqRel);
        });
    if spawned.is_err() {
        shared.sheds_in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Best-effort REJECTED reply for a connection that found no worker slot.
fn shed(shared: &NetShared, mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let budget = snn_parallel::budget();
    let snapshot = shared.server.queue_snapshot();
    let reply = Frame::Rejected(RejectReply {
        scope: reject_scope::CONNECTIONS,
        queued: budget.io_leases_in_flight() as u64,
        capacity: budget.io_lease_cap() as u64,
        // Lease availability is not predicted by the queue drain rate, so
        // the hint is floored at a polite back-off rather than the
        // near-zero an empty queue would suggest.
        retry_after_ms: snapshot.retry_after_ms().max(CONNECTIONS_RETRY_AFTER_MS),
        drain_rate_mips: drain_rate_mips(&snapshot),
    });
    if reply.write_to(&mut stream).is_err() {
        return;
    }
    // Half-close and briefly drain unread request bytes: closing with
    // data pending in the receive buffer sends RST, which could destroy
    // the REJECTED frame before the peer reads it.  The drain is
    // deadline-bounded so a flooding peer cannot stall the acceptor.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let deadline = Instant::now() + Duration::from_millis(250);
    let mut sink = [0u8; 1024];
    while Instant::now() < deadline {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn drain_rate_mips(snapshot: &QueueSnapshot) -> u64 {
    (snapshot.drain_rate_ips * 1000.0).round().max(0.0) as u64
}

fn run_connection(shared: &NetShared, mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.options.poll_interval));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut buf: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 8192];
    let mut last_request = Instant::now();
    loop {
        // Serve every complete request already buffered.
        loop {
            match probe_plaintext_stats(&buf) {
                PlaintextProbe::Stats { consumed } => {
                    buf.drain(..consumed);
                    shared
                        .counters
                        .stats_requests
                        .fetch_add(1, Ordering::Relaxed);
                    // One-shot scrape, `nc`-style: reply and close.
                    let _ = stream.write_all(render_stats(shared).as_bytes());
                    return;
                }
                PlaintextProbe::NeedMore => break,
                PlaintextProbe::NotStats => {}
            }
            match Frame::decode(&buf) {
                Ok(Some((frame, used))) => {
                    buf.drain(..used);
                    if !handle_frame(shared, &mut stream, frame) {
                        return;
                    }
                    // Stamp after serving, not at decode: the idle clock
                    // must not tick while a slow inference is in flight,
                    // or a request slower than the deadline would get its
                    // own connection closed.
                    last_request = Instant::now();
                }
                Ok(None) => break,
                Err(err) => {
                    shared
                        .counters
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = Frame::Error(ErrorReply {
                        code: error_code::PROTOCOL,
                        message: err.to_string(),
                    })
                    .write_to(&mut stream);
                    return;
                }
            }
        }
        // Every already-read request has been answered; past this point a
        // shutdown may close the connection without dropping work.
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // A peer that has sent no complete request within the idle
        // deadline (at most a partial frame can be pending here) forfeits
        // its worker slot — otherwise silent connections would pin every
        // IO lease forever.
        if last_request.elapsed() >= shared.options.idle_timeout {
            return;
        }
        match stream.read(&mut scratch) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&scratch[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(_) => return,
        }
    }
}

/// Serves one decoded frame; returns whether the connection stays open.
fn handle_frame(shared: &NetShared, stream: &mut TcpStream, frame: Frame) -> bool {
    match frame {
        Frame::Infer(request) => {
            shared.counters.requests.fetch_add(1, Ordering::Relaxed);
            let reply = infer_reply(shared, request);
            let shutting_down = matches!(
                &reply,
                Frame::Error(ErrorReply { code, .. }) if *code == error_code::SHUTTING_DOWN
            );
            reply.write_to(stream).is_ok() && !shutting_down
        }
        Frame::StatsRequest => {
            shared
                .counters
                .stats_requests
                .fetch_add(1, Ordering::Relaxed);
            Frame::StatsText(render_stats(shared))
                .write_to(stream)
                .is_ok()
        }
        // Server-bound traffic may only be requests.
        Frame::Scores(_) | Frame::Rejected(_) | Frame::Error(_) | Frame::StatsText(_) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            let _ = Frame::Error(ErrorReply {
                code: error_code::PROTOCOL,
                message: "unexpected server-bound frame".to_string(),
            })
            .write_to(stream);
            false
        }
    }
}

/// Executes one inference request end to end and builds its reply frame.
fn infer_reply(shared: &NetShared, request: crate::protocol::InferRequest) -> Frame {
    let tensor = match request.into_tensor() {
        Ok(tensor) => tensor,
        Err(err) => {
            return Frame::Error(ErrorReply {
                code: error_code::BAD_REQUEST,
                message: err.to_string(),
            })
        }
    };
    match shared.server.submit(tensor) {
        Ok(ticket) => match ticket.wait() {
            Ok(report) => Frame::Scores(ScoreReply {
                prediction: report.prediction as u32,
                time_steps: report.time_steps as u32,
                thread_budget: report.thread_budget as u32,
                total_cycles: report.total_cycles(),
                logits: report.logits,
            }),
            Err(err) => error_reply(&err),
        },
        Err(AccelError::QueueFull { queued, capacity }) => {
            let snapshot = shared.server.queue_snapshot();
            Frame::Rejected(RejectReply {
                scope: reject_scope::QUEUE,
                queued: queued as u64,
                capacity: capacity as u64,
                retry_after_ms: snapshot.retry_after_ms().max(1),
                drain_rate_mips: drain_rate_mips(&snapshot),
            })
        }
        Err(err) => error_reply(&err),
    }
}

fn error_reply(err: &AccelError) -> Frame {
    let code = if matches!(err, AccelError::Serving { .. }) {
        error_code::SHUTTING_DOWN
    } else {
        error_code::BAD_REQUEST
    };
    Frame::Error(ErrorReply {
        code,
        message: err.to_string(),
    })
}

/// Renders the serving counters as `key: value` plaintext for scrapers —
/// the body of both the framed STATS reply and the plaintext `STATS` line.
fn render_stats(shared: &NetShared) -> String {
    let server = shared.server.stats();
    let c = &shared.counters;
    let budget = snn_parallel::budget();
    let mut out = String::new();
    out.push_str(&format!(
        "snn_net_protocol_version: {}\n",
        crate::protocol::VERSION
    ));
    out.push_str(&format!("completed: {}\n", server.completed));
    out.push_str(&format!("errors: {}\n", server.errors));
    out.push_str(&format!("rejected: {}\n", server.rejected));
    out.push_str(&format!("batches: {}\n", server.batches));
    out.push_str(&format!("largest_batch: {}\n", server.largest_batch));
    out.push_str(&format!("queue_depth: {}\n", server.queue.depth));
    out.push_str(&format!("queue_capacity: {}\n", server.queue.capacity));
    out.push_str(&format!(
        "drain_rate_ips: {:.3}\n",
        server.queue.drain_rate_ips
    ));
    out.push_str(&format!("throughput_ips: {:.3}\n", server.throughput_ips()));
    out.push_str(&format!("thread_budget: {}\n", server.thread_budget));
    out.push_str(&format!(
        "connections_accepted: {}\n",
        c.accepted.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "connections_turned_away: {}\n",
        c.turned_away.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "requests: {}\n",
        c.requests.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "protocol_errors: {}\n",
        c.protocol_errors.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "stats_requests: {}\n",
        c.stats_requests.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "io_leases_in_flight: {}\n",
        budget.io_leases_in_flight()
    ));
    out.push_str(&format!("io_lease_cap: {}\n", budget.io_lease_cap()));
    for unit in &server.utilisation {
        out.push_str(&format!(
            "unit[{:?}]: units={} busy_cycles={} total_cycles={} utilisation={:.4}\n",
            unit.kind,
            unit.units,
            unit.busy_cycles,
            unit.total_cycles,
            unit.utilisation()
        ));
    }
    out
}
