//! The TCP front-end: **sharded readiness-driven reactors** over
//! [`StreamServer`]'s non-blocking completion queue.
//!
//! [`NetServer::bind`] compiles the model once (via
//! [`StreamServer::start_with`]), binds a listener and spawns
//! [`NetOptions::reactors`] reactor threads (one per core by default).
//! Each shard owns a **private** connection table, write queues, wake pipe
//! and completion channel, and parks in its own
//! [`crate::poller::Poller`] — epoll with edge-triggered readiness by
//! default, the scalar `poll(2)` fallback under `SNN_REACTOR=poll` (or
//! when `epoll_create1` fails).  Nothing in the front-end ever blocks on
//! a peer:
//!
//! * **Accepts** happen on shard 0, which owns the listener and hands
//!   admitted sockets to its siblings **round-robin** over a per-shard
//!   channel plus a wake (`SO_REUSEPORT` without the setsockopt
//!   plumbing); the global [`NetOptions::max_connections`] cap is a
//!   shared atomic reserved at accept time, so admission control stays
//!   exact under sharding.  Connections **never migrate** between
//!   shards, so every per-connection invariant (incremental decode,
//!   completion-order replies, slow-reader isolation) is untouched.
//! * **Reads** are non-blocking into a per-connection buffer; complete
//!   frames are decoded incrementally and INFER requests are submitted
//!   through [`StreamServer::submit_tagged`] — so one connection can have
//!   any number of requests in flight (pipelining).  Submission tags are
//!   **shard-strided** (shard `i` uses `i, i+N, i+2N, ...`), keeping them
//!   globally unique for the telemetry recorder.
//! * **Completions** come back over each shard's mpsc channel; the
//!   dispatcher wakes the owning shard through its pipe, and replies are
//!   written in **completion order**, each echoing its request id for
//!   client-side correlation.
//! * **Writes** go through a per-connection write queue flushed on
//!   writability, so a stalled reader delays only its own replies — every
//!   other connection keeps flowing.  A reader that outgrows the
//!   write-buffer cap, or whose kernel buffer accepts nothing for the
//!   whole [`WRITE_STALL_TIMEOUT`], is disconnected.
//!
//! # Edge-triggered correctness
//!
//! The epoll backend reports a readiness transition exactly once, which
//! interacts with the [`NetOptions::read_burst`] fairness cap: a firehose
//! socket whose burst is cut short still has kernel bytes but will never
//! re-report readable.  Each reactor therefore keeps a **hot list** of
//! burst-truncated connections and re-reads them on the next iteration
//! (with a zero wait timeout while the list is non-empty) — fairness
//! between sockets is preserved *and* no byte is stranded.  Writes need
//! no such list: the reactor always flushes immediately after queueing,
//! so a non-empty write buffer implies a genuine `EWOULDBLOCK`, and the
//! kernel will edge on the next writable transition.
//!
//! Scores on the wire remain bit-identical to the matching in-process
//! [`StreamServer::submit`] (loopback suite), pipelined or not, on both
//! backends and any shard count.
//!
//! # Backpressure, end to end
//!
//! Load shedding is typed at both layers and always carries a retry hint
//! computed from the live [`StreamServer::queue_snapshot`]:
//!
//! * **Submission queue full** — `submit_tagged` returns
//!   [`snn_accel::AccelError::QueueFull`]; the reactor answers that request
//!   with a REJECTED frame (`scope = queue`) echoing its id and quoting
//!   the observed depth, the capacity, and how long the dispatcher needs
//!   to drain the backlog at its recent rate.  Other pipelined requests on
//!   the same connection are untouched.
//! * **Connection cap reached** — the shards collectively own at most
//!   [`NetOptions::max_connections`] sockets (the shared reservation
//!   counter); a connection past the cap is shed by the accepting shard
//!   with a REJECTED frame (`scope = connections`) queued on its write
//!   buffer and closed once flushed — no thread is spawned, the acceptor
//!   never blocks.
//!
//! Each reactor thread draws one [`snn_parallel::IoLease`]; it blocks in
//! the poller, not on a core (the `StreamServer` dispatcher is accounted
//! the same way).  Connection scaling is bounded by `max_connections`,
//! not by threads.
//!
//! # Failure isolation
//!
//! A panic in one reactor shard kills only that shard: its connections
//! die, its siblings keep serving, and the acceptor skips it for new
//! admissions.  [`NetServer::is_healthy`] turns `false` (any dead shard
//! means lost capacity and, for shard 0, a dead listener), which is the
//! supervision signal to rebuild the front-end; [`NetStats::per_reactor`]
//! says which shard died.
//!
//! # Shutdown
//!
//! [`NetServer::shutdown`] wakes every shard; each stops accepting and
//! reading, submits any complete frames already buffered, waits for its
//! in-flight inferences to complete, flushes its write queues (bounded by
//! [`SHUTDOWN_DRAIN_GRACE`]) and exits; only then is the inner server
//! torn down — a clean shutdown never drops a request it has already
//! read.

use crate::error::NetError;
use crate::poller::{Interest, Poller, ReactorBackend};
use crate::protocol::{
    error_code, probe_plaintext, reject_scope, stats_format, ErrorReply, Frame, PlaintextProbe,
    RejectReply, ScoreReply, NO_REQUEST_ID,
};
use crate::sys::WakePipe;
use snn_accel::config::AcceleratorConfig;
use snn_accel::serve::{
    Completion, CompletionSink, QueueSnapshot, ServerOptions, ServerStats, StreamServer,
};
use snn_accel::AccelError;
use snn_model::snn::SnnModel;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Options of a [`NetServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetOptions {
    /// Options of the inner [`StreamServer`] (micro-batching, queue
    /// capacity, execution mode) — validated by its constructor.
    pub server: ServerOptions,
    /// Upper bound of one poller sleep: the granularity of idle-timeout
    /// sweeps and the latency ceiling of noticing a shutdown — not of
    /// requests, which wake their shard through its pipe.
    pub poll_interval: Duration,
    /// A connection that has sent no complete request (and has none in
    /// flight) for this long is closed and its slot reclaimed.  Without
    /// the deadline, `max_connections` silent sockets would pin every slot
    /// forever and starve new connections while the server sits idle.
    pub idle_timeout: Duration,
    /// Most connections the shards collectively own at once.  Past the
    /// cap a new connection is shed with a typed REJECTED frame (`scope =
    /// connections`).  Must be at least 1 ([`NetServer::bind`] rejects 0
    /// with a typed error).  Connections are state, not threads, so this
    /// can comfortably sit far above the old per-connection worker cap.
    pub max_connections: usize,
    /// Reactor shards.  `0` (the default) resolves to the `SNN_REACTORS`
    /// environment variable if set, else one shard per available core.
    /// Shard 0 owns the listener and distributes admitted connections
    /// round-robin; a connection lives on one shard for its whole life.
    pub reactors: usize,
    /// Readiness backend.  [`ReactorBackend::Auto`] (the default) honours
    /// the `SNN_REACTOR` environment variable (`poll` / `epoll`) and
    /// otherwise picks epoll, falling back to `poll(2)` when the kernel
    /// refuses an epoll instance.
    pub backend: ReactorBackend,
    /// Most bytes one readiness round reads from one socket — the
    /// fairness bound (see [`READ_BURST`], the default).  Tests shrink it
    /// to exercise the edge-trigger hot-list with small payloads.  Must
    /// be at least 1.
    pub read_burst: usize,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            server: ServerOptions::default(),
            poll_interval: Duration::from_millis(20),
            idle_timeout: Duration::from_secs(60),
            max_connections: 256,
            reactors: 0,
            backend: ReactorBackend::Auto,
            read_burst: READ_BURST,
        }
    }
}

/// Cap on one connection's queued-but-unwritten reply bytes.  A client
/// that pipelines requests and never reads its replies grows its write
/// queue; past this bound the reactor declares the reader dead and closes
/// the connection instead of buffering without limit.  Generous: a SCORES
/// reply is ~100 bytes, so this is tens of thousands of unread replies.
pub const MAX_WRITE_BUFFER: usize = 4 << 20;

/// How long a connection's write queue may sit non-empty **without the
/// kernel accepting a single byte** before the reader is declared dead
/// and the connection closed.  The peer's receive buffer being full for
/// this long means nobody is reading; without the bound, a reader stalled
/// *below* [`MAX_WRITE_BUFFER`] would pin its connection slot forever
/// (the reactor equivalent of the old per-connection write timeout).
/// Any write progress restarts the window.
pub const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(10);

/// Default of [`NetOptions::read_burst`]: most bytes a reactor reads from
/// one socket in one readiness round — a fairness bound so a firehose
/// peer cannot starve its shard neighbours between polls.  The remainder
/// stays in the kernel buffer; the level backend simply polls readable
/// again, the edge backend re-reads via the hot list.
pub const READ_BURST: usize = 256 << 10;

/// How long a reactor-wide draining shutdown may keep waiting on
/// in-flight inferences and unflushed replies before giving up on the
/// laggards.  Also the per-connection bound of the draining phase of a
/// terminally-answered connection (terminal reply queued, in-flight
/// completions still landing).
pub const SHUTDOWN_DRAIN_GRACE: Duration = Duration::from_secs(10);

/// How long a connection that has been answered and half-closed (error
/// replies, plaintext stats, sheds) is kept around to drain the peer's
/// unread bytes — closing with data pending in the receive buffer sends
/// RST, which could destroy the reply before the peer reads it.
pub const CLOSE_LINGER: Duration = Duration::from_millis(250);

/// Per-shard cap on connections in the shed/close pipeline (REJECTED
/// queued, write flushing, linger) beyond the admitted population.  Past
/// it, surplus connections are dropped without a frame — under that much
/// flood typed rejection inevitably degrades to kernel-level drops
/// anyway, but the reactor itself never blocks and its memory stays
/// bounded.
pub const MAX_SHED_CONNECTIONS: usize = 64;

/// Floor of the retry-after hint on connection-scope rejections
/// (milliseconds).  Connection slots free when a peer disconnects or
/// idles out — nothing the queue drain rate can predict — so the hint is
/// a polite back-off floor rather than a measurement.
pub const CONNECTIONS_RETRY_AFTER_MS: u64 = 100;

/// Poller token of a shard's wake pipe (connection tokens count up from
/// zero and never reach the reserved range).
const TOKEN_WAKE: u64 = u64::MAX;
/// Poller token of the listener (shard 0 only).
const TOKEN_LISTENER: u64 = u64::MAX - 1;

/// One shard's counters — each written only by its owning reactor
/// thread, read by anyone.
struct ShardCounters {
    alive: AtomicBool,
    accepted: AtomicU64,
    turned_away: AtomicU64,
    handoffs: AtomicU64,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    stats_requests: AtomicU64,
    open_connections: AtomicUsize,
}

impl ShardCounters {
    fn new() -> Self {
        ShardCounters {
            alive: AtomicBool::new(true),
            accepted: AtomicU64::new(0),
            turned_away: AtomicU64::new(0),
            handoffs: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            stats_requests: AtomicU64::new(0),
            open_connections: AtomicUsize::new(0),
        }
    }
}

/// Per-shard slice of [`NetStats`]: which reactor did what — a hot
/// accept shard, a dead shard, or an unbalanced handoff is visible here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReactorStats {
    /// Shard index (`0` owns the listener).
    pub index: usize,
    /// `false` once this shard's thread has exited (shutdown or panic).
    pub alive: bool,
    /// The readiness backend the shard actually runs on (after the
    /// epoll→poll fallback): `"epoll"` or `"poll"`.
    pub backend: &'static str,
    /// Connections admitted to this shard (the accept share).
    pub accepted: u64,
    /// Connections this shard shed at the cap (sheds land on the accept
    /// shard, which owns the admission decision).
    pub turned_away: u64,
    /// Admitted connections that arrived via listener handoff rather
    /// than locally (always 0 for shard 0).
    pub handoffs: u64,
    /// Connections this shard currently owns.
    pub open_connections: u64,
    /// Inference requests decoded by this shard.
    pub requests: u64,
    /// Protocol violations observed by this shard.
    pub protocol_errors: u64,
    /// STATS requests served by this shard.
    pub stats_requests: u64,
}

/// Snapshot of a [`NetServer`]'s counters plus the inner serving stats.
/// The flat counters aggregate over every reactor shard;
/// [`NetStats::per_reactor`] has the breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct NetStats {
    /// TCP connections accepted (admitted or shed), summed over shards.
    pub accepted: u64,
    /// Connections shed because the front-end was at `max_connections`.
    pub turned_away: u64,
    /// Inference requests received over the wire.
    pub requests: u64,
    /// Connections terminated for violating the frame protocol.
    pub protocol_errors: u64,
    /// STATS requests served (framed or plaintext).
    pub stats_requests: u64,
    /// Connections the shards currently own.
    pub open_connections: u64,
    /// `false` once **any** reactor shard has exited — normally
    /// (shutdown) or abnormally (a shard panic).  A supervisor that sees
    /// this `false` on a server it has not shut down knows part of the
    /// front-end is dead even though the process is alive; see
    /// [`NetServer::is_healthy`] and the per-shard `alive` flags in
    /// [`NetStats::per_reactor`].
    pub reactor_alive: bool,
    /// Reactor shards the server was built with.
    pub reactors: u64,
    /// Shards whose threads are still running.
    pub reactors_alive: u64,
    /// Per-shard breakdown (accept share, handoffs, liveness, backend).
    pub per_reactor: Vec<ReactorStats>,
    /// The inner [`StreamServer`] statistics (completed, rejected, queue
    /// snapshot, per-unit utilisation, ...).
    pub server: ServerStats,
}

struct NetShared {
    server: StreamServer,
    options: NetOptions,
    /// Resolved shard count (≥ 1); `options.reactors` keeps the raw
    /// request (possibly 0 = auto).
    reactors: usize,
    /// Backend each shard's poller actually landed on, fixed at bind.
    backend_names: Vec<&'static str>,
    shutdown: AtomicBool,
    /// Global admission reservation: incremented by the accepting shard
    /// **before** a connection is admitted or handed off, decremented by
    /// the owning shard when an admitted connection stops being served
    /// (drain or close).  Only the acceptor admits, so the cap check
    /// against this counter is exact.
    open_total: AtomicUsize,
    shards: Vec<ShardCounters>,
    wakes: Vec<Arc<WakePipe>>,
}

/// Flips a shard's `alive` flag when its reactor thread exits, even by
/// unwinding: the guard lives on the reactor's stack, so a panic anywhere
/// in the event loop still reports the death.
struct ReactorAliveGuard {
    shared: Arc<NetShared>,
    shard: usize,
}

impl Drop for ReactorAliveGuard {
    fn drop(&mut self) {
        self.shared.shards[self.shard]
            .alive
            .store(false, Ordering::Release);
    }
}

/// A listening TCP serving front-end.  See the module docs.
#[derive(Debug)]
pub struct NetServer {
    shared: Arc<NetShared>,
    reactors: Vec<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl std::fmt::Debug for NetShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetShared")
            .field("options", &self.options)
            .field("reactors", &self.reactors)
            .finish_non_exhaustive()
    }
}

/// Resolves `NetOptions::reactors`: explicit > `SNN_REACTORS` env > one
/// per available core; clamped to at least 1 and at most the connection
/// cap (a shard with no possible connection is pure overhead).
fn resolve_reactors(options: &NetOptions) -> usize {
    let requested = if options.reactors > 0 {
        options.reactors
    } else {
        std::env::var("SNN_REACTORS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    };
    requested.clamp(1, options.max_connections)
}

impl NetServer {
    /// Compiles `model`, binds `addr` (use port `0` for an ephemeral port)
    /// and starts the reactor shards.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamServer::start_with`] errors (invalid options,
    /// unmappable model), rejects `max_connections == 0` and
    /// `read_burst == 0` with a typed
    /// [`snn_accel::AccelError::InvalidConfig`], and propagates socket /
    /// pipe errors.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        config: AcceleratorConfig,
        model: SnnModel,
        options: NetOptions,
    ) -> Result<Self, NetError> {
        if options.max_connections == 0 {
            return Err(NetError::Accel(AccelError::InvalidConfig {
                context: "NetOptions::max_connections is 0: every connection would be shed"
                    .to_string(),
            }));
        }
        if options.read_burst == 0 {
            return Err(NetError::Accel(AccelError::InvalidConfig {
                context: "NetOptions::read_burst is 0: no socket could ever be read".to_string(),
            }));
        }
        let reactors = resolve_reactors(&options);
        let server = StreamServer::start_with(config, model, options.server)?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let mut wakes = Vec::with_capacity(reactors);
        for _ in 0..reactors {
            wakes.push(Arc::new(WakePipe::new()?));
        }
        // Pollers are built before the threads spawn so the backend each
        // shard landed on (epoll, or the poll fallback) is known — and
        // reportable — from the moment `bind` returns.
        let mut pollers: Vec<Option<Poller>> = (0..reactors)
            .map(|_| Some(Poller::new(options.backend)))
            .collect();
        let backend_names: Vec<&'static str> = pollers
            .iter()
            .map(|p| p.as_ref().expect("just built").backend_name())
            .collect();
        let shared = Arc::new(NetShared {
            server,
            options,
            reactors,
            backend_names,
            shutdown: AtomicBool::new(false),
            open_total: AtomicUsize::new(0),
            shards: (0..reactors).map(|_| ShardCounters::new()).collect(),
            wakes,
        });

        // The round-robin handoff fabric: shard 0 sends admitted sockets
        // to any sibling's channel and wakes it.  (Shard 0's own channel
        // exists for uniformity but the acceptor admits locally instead.)
        let mut txs = Vec::with_capacity(reactors);
        let mut rxs: Vec<Option<mpsc::Receiver<TcpStream>>> = Vec::with_capacity(reactors);
        for _ in 0..reactors {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            txs.push(tx);
            rxs.push(Some(rx));
        }

        let mut handles = Vec::with_capacity(reactors);
        let mut listener_slot = Some(listener);
        for shard in 0..reactors {
            let poller = pollers[shard].take().expect("one poller per shard");
            let handoff_rx = rxs[shard].take().expect("one receiver per shard");
            let handoff_txs = if shard == 0 { txs.clone() } else { Vec::new() };
            let listener = if shard == 0 {
                listener_slot.take()
            } else {
                None
            };
            let completion_wake = Arc::clone(&shared.wakes[shard]);
            let (sink, completions) = CompletionSink::new(Arc::new(move || completion_wake.wake()));
            // Each shard blocks in its poller, not on a core, so it draws
            // an IO lease rather than compute budget (the StreamServer
            // dispatcher is accounted the same way).
            let lease = snn_parallel::budget().try_lease_io_threads(1);
            let reactor_shared = Arc::clone(&shared);
            let handle = thread::Builder::new()
                .name(format!("snn-net-reactor-{shard}"))
                .spawn(move || {
                    // The lease (when the budget had one left) lives
                    // exactly as long as the shard; the alive guard
                    // reports the thread's death on every exit path,
                    // panics included.
                    let _lease = lease;
                    let _alive = ReactorAliveGuard {
                        shared: Arc::clone(&reactor_shared),
                        shard,
                    };
                    Reactor::new(
                        &reactor_shared,
                        shard,
                        poller,
                        listener,
                        handoff_rx,
                        handoff_txs,
                        completions,
                        sink,
                    )
                    .run();
                })?;
            handles.push(handle);
        }
        Ok(NetServer {
            shared,
            reactors: handles,
            local_addr,
        })
    }

    /// The bound address — where clients connect.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the front-end counters (aggregated and per shard) and
    /// the inner serving stats.
    pub fn stats(&self) -> NetStats {
        let per_reactor = per_reactor_stats(&self.shared);
        let alive = per_reactor.iter().filter(|r| r.alive).count() as u64;
        NetStats {
            accepted: per_reactor.iter().map(|r| r.accepted).sum(),
            turned_away: per_reactor.iter().map(|r| r.turned_away).sum(),
            requests: per_reactor.iter().map(|r| r.requests).sum(),
            protocol_errors: per_reactor.iter().map(|r| r.protocol_errors).sum(),
            stats_requests: per_reactor.iter().map(|r| r.stats_requests).sum(),
            open_connections: per_reactor.iter().map(|r| r.open_connections).sum(),
            reactor_alive: alive == self.shared.reactors as u64,
            reactors: self.shared.reactors as u64,
            reactors_alive: alive,
            per_reactor,
            server: self.shared.server.stats(),
        }
    }

    /// `true` while every reactor shard is alive, at least one replica
    /// engine is healthy, and the server has not been told to shut down.
    ///
    /// A dead shard (a panic in its event loop — inference panics never
    /// reach the reactors, they are isolated inside the dispatcher) means
    /// its connections are gone and, for shard 0, that nothing accepts;
    /// the survivors keep serving *their* connections, but the front-end
    /// has silently lost capacity.  Likewise, a front-end with zero
    /// healthy replicas behind it can only reject.  A *degraded* inner
    /// server — some but not all replicas down — still reports healthy
    /// (the survivors serve); the per-replica stats expose the
    /// degradation.  This is the supervision signal: a monitor that sees
    /// `is_healthy() == false` on a server it did not shut down should
    /// rebuild the front-end.
    pub fn is_healthy(&self) -> bool {
        self.shared
            .shards
            .iter()
            .all(|s| s.alive.load(Ordering::Acquire))
            && self.shared.server.healthy_replicas() > 0
            && !self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Gracefully shuts down: stop accepting, drain in-flight requests,
    /// flush replies, join every shard, and return the final statistics.
    pub fn shutdown(mut self) -> NetStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for wake in &self.shared.wakes {
            wake.wake();
        }
        // A panicked shard must not turn shutdown into a panic of its
        // own (or a double-panic abort when this runs from Drop during
        // unwinding): join errors are swallowed and teardown continues.
        for handle in self.reactors.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn per_reactor_stats(shared: &NetShared) -> Vec<ReactorStats> {
    shared
        .shards
        .iter()
        .enumerate()
        .map(|(index, c)| ReactorStats {
            index,
            alive: c.alive.load(Ordering::Acquire),
            backend: shared.backend_names[index],
            accepted: c.accepted.load(Ordering::Relaxed),
            turned_away: c.turned_away.load(Ordering::Relaxed),
            handoffs: c.handoffs.load(Ordering::Relaxed),
            open_connections: c.open_connections.load(Ordering::Relaxed) as u64,
            requests: c.requests.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            stats_requests: c.stats_requests.load(Ordering::Relaxed),
        })
        .collect()
}

/// The backend name shared by all shards, or `"mixed"` in the
/// (theoretical) case of a per-shard fallback divergence.
fn aggregate_backend(shared: &NetShared) -> &'static str {
    let first = shared.backend_names[0];
    if shared.backend_names.iter().all(|name| *name == first) {
        first
    } else {
        "mixed"
    }
}

// ---------------------------------------------------------------------------
// The reactor
// ---------------------------------------------------------------------------

/// Lifecycle of one reactor-owned connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Serving requests.
    Open,
    /// A terminal reply (error / plaintext stats / shed) is queued: flush
    /// the write buffer, then half-close and move to [`ConnState::Linger`].
    Draining,
    /// Write side closed; discard the peer's unread bytes until EOF or the
    /// deadline so the kernel does not RST our last reply away.
    Linger,
}

/// What [`Conn::read_step`] observed about the socket.
struct ReadOutcome {
    /// The connection is dead and must be closed.
    dead: bool,
    /// The burst cap ended the read with bytes (possibly) still in the
    /// kernel buffer — on an edge-triggered backend the reactor must
    /// remember to come back (hot list), because no new edge will fire
    /// for bytes that already arrived.
    truncated: bool,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// `false` for shed connections, which never held a reservation in
    /// the global admission counter.
    admitted: bool,
    /// Bytes read but not yet decoded (at most a partial frame after each
    /// processing pass).
    rbuf: Vec<u8>,
    /// Encoded replies not yet accepted by the kernel.
    wbuf: Vec<u8>,
    /// Tagged inferences submitted for this connection and not yet
    /// completed.
    in_flight: usize,
    /// The peer half-closed its sending side; serve what is in flight,
    /// flush, then close.
    peer_eof: bool,
    /// Wall-clock of the last complete request or completion (the idle
    /// clock must not tick while work is in flight).
    last_activity: Instant,
    /// Hard deadline for [`ConnState::Draining`]/[`ConnState::Linger`].
    deadline: Option<Instant>,
    /// Since when the write queue has been non-empty with the kernel
    /// accepting nothing (see [`WRITE_STALL_TIMEOUT`]).
    stalled_since: Option<Instant>,
    /// Total bytes this connection has ever handed to the kernel — the
    /// offset coordinate of `reply_marks`.
    flushed_total: u64,
    /// Write-stall telemetry marks, one per queued SCORES reply: `(byte
    /// offset at which the reply is fully flushed, when it was queued,
    /// trace request id)`.  Appended in completion order, so offsets are
    /// monotone and `flush_step` pops from the front.
    reply_marks: VecDeque<(u64, Instant, u64)>,
    /// Write-queue residencies measured by `flush_step`, waiting for the
    /// reactor to forward them to the span recorder.
    stall_samples: Vec<(u64, f64)>,
    /// Set when the fault injector faked an `EWOULDBLOCK` on this
    /// connection: the kernel state did not change, so an edge-triggered
    /// backend will never re-report — the reactor must treat the socket
    /// as hot.  Never set outside the `fault-injection` feature.
    fault_blocked: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            state: ConnState::Open,
            admitted: true,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            in_flight: 0,
            peer_eof: false,
            last_activity: Instant::now(),
            deadline: None,
            stalled_since: None,
            flushed_total: 0,
            reply_marks: VecDeque::new(),
            stall_samples: Vec::new(),
            fault_blocked: false,
        }
    }

    /// Queues an encoded reply for the writability path.
    fn queue_frame(&mut self, frame: &Frame) {
        self.wbuf.extend_from_slice(&frame.encode());
    }

    /// Marks the connection terminally answered: finish in-flight work,
    /// flush, half-close, linger, close.  The drain phase gets the full
    /// flush grace (in-flight completions are still landing); the linger
    /// after the half-close is short.  Callers that may hold an admission
    /// reservation go through [`retire_and_drain`] instead.
    fn begin_drain(&mut self) {
        if self.state == ConnState::Open {
            self.state = ConnState::Draining;
            self.deadline = Some(Instant::now() + SHUTDOWN_DRAIN_GRACE);
        }
    }

    /// Takes (and clears) the injected-`EWOULDBLOCK` marker.
    fn take_fault_blocked(&mut self) -> bool {
        std::mem::take(&mut self.fault_blocked)
    }

    /// One socket read, routed through the fault injector when the
    /// `fault-injection` feature is armed: short reads truncate the
    /// scratch window to one byte, the error faults never touch the
    /// socket.  Release builds compile down to the plain `read`.
    fn socket_read(&mut self, scratch: &mut [u8]) -> io::Result<usize> {
        #[cfg(feature = "fault-injection")]
        {
            use crate::fault::IoFault;
            match crate::fault::read_fault() {
                IoFault::None => self.stream.read(scratch),
                IoFault::Short => self.stream.read(&mut scratch[..1]),
                IoFault::WouldBlock => {
                    // The socket was not consulted: real bytes may remain,
                    // and an edge-triggered poller will not re-report them.
                    self.fault_blocked = true;
                    Err(io::Error::from(ErrorKind::WouldBlock))
                }
                IoFault::Interrupted => Err(io::Error::from(ErrorKind::Interrupted)),
                IoFault::Reset => Err(io::Error::from(ErrorKind::ConnectionReset)),
            }
        }
        #[cfg(not(feature = "fault-injection"))]
        self.stream.read(scratch)
    }

    /// One socket write, routed through the fault injector exactly like
    /// [`Conn::socket_read`] (short writes offer the kernel one byte).
    fn socket_write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        #[cfg(feature = "fault-injection")]
        {
            use crate::fault::IoFault;
            match crate::fault::write_fault() {
                IoFault::None => self.stream.write(bytes),
                IoFault::Short => self.stream.write(&bytes[..1]),
                IoFault::WouldBlock => {
                    // As with reads: the kernel buffer may be writable, so
                    // no writable edge is coming — flag for the hot list.
                    self.fault_blocked = true;
                    Err(io::Error::from(ErrorKind::WouldBlock))
                }
                IoFault::Interrupted => Err(io::Error::from(ErrorKind::Interrupted)),
                IoFault::Reset => Err(io::Error::from(ErrorKind::ConnectionReset)),
            }
        }
        #[cfg(not(feature = "fault-injection"))]
        self.stream.write(bytes)
    }

    /// Non-blocking read burst into the read buffer (discarded on non-Open
    /// states, where only EOF matters).
    fn read_step(&mut self, burst: usize) -> ReadOutcome {
        let discard = self.state != ConnState::Open;
        let mut scratch = [0u8; 8192];
        let mut total = 0usize;
        let mut truncated = false;
        loop {
            // The burst is a byte cap, not a round count: never ask the
            // kernel for more than the remaining allowance, so small test
            // bursts behave exactly like the production one.
            let want = scratch.len().min(burst - total);
            match self.socket_read(&mut scratch[..want]) {
                Ok(0) => {
                    self.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    if !discard {
                        self.rbuf.extend_from_slice(&scratch[..n]);
                    }
                    total += n;
                    // Fairness: leave the rest in the kernel buffer.  The
                    // level backend will re-report readable; the edge
                    // backend relies on the caller honouring `truncated`.
                    if total >= burst {
                        truncated = true;
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    return ReadOutcome {
                        dead: true,
                        truncated: false,
                    }
                }
            }
        }
        ReadOutcome {
            // EOF during a linger means the peer has nothing more in
            // flight that a close could RST away.
            dead: self.peer_eof && self.state != ConnState::Open,
            truncated: truncated && !self.peer_eof,
        }
    }

    /// Writes as much queued reply data as the kernel accepts.  Returns
    /// `true` when the connection is dead and must be closed.
    fn flush_step(&mut self) -> bool {
        let mut wrote = 0usize;
        while !self.wbuf.is_empty() {
            let queued = std::mem::take(&mut self.wbuf);
            let result = self.socket_write(&queued);
            self.wbuf = queued;
            match result {
                Ok(0) => return true,
                Ok(n) => {
                    self.wbuf.drain(..n);
                    wrote += n;
                    self.flushed_total += n as u64;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
        // Write-stall telemetry: a reply whose last byte the kernel has now
        // accepted spent its whole queue residency in this buffer — sample
        // it for the recorder (the reactor forwards after each flush).
        while let Some(&(target, queued_at, request_id)) = self.reply_marks.front() {
            if target > self.flushed_total {
                break;
            }
            self.reply_marks.pop_front();
            self.stall_samples
                .push((request_id, queued_at.elapsed().as_secs_f64()));
        }
        // Write-stall clock: runs while bytes are queued and the kernel
        // accepts none of them, restarts on any progress.
        if self.wbuf.is_empty() {
            self.stalled_since = None;
        } else if wrote > 0 || self.stalled_since.is_none() {
            self.stalled_since = Some(Instant::now());
        }
        if self.wbuf.len() > MAX_WRITE_BUFFER {
            // The peer has stopped reading; buffering further replies for
            // it would trade one slow socket for unbounded memory.
            return true;
        }
        if self.wbuf.is_empty() && self.in_flight == 0 && self.state == ConnState::Draining {
            // Every reply flushed: half-close and linger briefly so the
            // FIN (not an RST) is what the peer observes after our last
            // frame.
            let _ = self.stream.shutdown(Shutdown::Write);
            self.state = ConnState::Linger;
            self.deadline = Some(Instant::now() + CLOSE_LINGER);
            if self.peer_eof {
                return true;
            }
        }
        false
    }

    /// Which poller interest this connection currently needs (the level
    /// backend's per-wait mask; the edge backend registered everything
    /// once).
    fn interest(&self) -> Interest {
        Interest {
            // Reads stay registered on non-Open states too: draining the
            // peer's backlog prevents an RST from destroying the queued
            // reply.
            readable: !self.peer_eof,
            writable: !self.wbuf.is_empty(),
        }
    }
}

/// Ends an admitted connection's claim on the global admission counter
/// and starts its terminal drain.  Every `begin_drain` on a possibly
/// admitted connection must go through here — a reservation that leaks
/// would shrink the connection cap forever.
fn retire_and_drain(shared: &NetShared, conn: &mut Conn) {
    if conn.state == ConnState::Open && conn.admitted {
        shared.open_total.fetch_sub(1, Ordering::AcqRel);
    }
    conn.begin_drain();
}

/// A submitted-but-uncompleted inference: which connection asked, under
/// which wire request id.
struct Pending {
    token: u64,
    request_id: u64,
}

struct Reactor<'a> {
    shared: &'a Arc<NetShared>,
    shard: usize,
    poller: Poller,
    /// Shard 0 owns the listener; every other shard receives its accept
    /// share over the handoff channel.
    listener: Option<TcpListener>,
    handoff_rx: mpsc::Receiver<TcpStream>,
    /// Round-robin handoff senders, one per shard (non-empty only on the
    /// accepting shard).
    handoff_txs: Vec<mpsc::Sender<TcpStream>>,
    /// Round-robin cursor over shards (accepting shard only).
    next_target: usize,
    completions: mpsc::Receiver<Completion>,
    sink: CompletionSink,
    conns: HashMap<u64, Conn>,
    /// Tag of every in-flight tagged submission → its origin.
    pending: HashMap<u64, Pending>,
    /// Connections whose last read was cut short by the burst cap (or an
    /// injected `EWOULDBLOCK`): on an edge-triggered backend no new event
    /// will fire for the bytes left behind, so the reactor re-reads these
    /// on the next iteration with a zero wait timeout.
    hot: HashSet<u64>,
    next_token: u64,
    /// Next submission tag: starts at the shard index, strides by the
    /// shard count — globally unique without cross-shard coordination
    /// (the telemetry recorder keys traces by tag).
    next_tag: u64,
    /// Set once when a shutdown is observed: already-buffered complete
    /// frames are submitted one final time, then reads stop.
    drain_started: bool,
}

impl<'a> Reactor<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        shared: &'a Arc<NetShared>,
        shard: usize,
        poller: Poller,
        listener: Option<TcpListener>,
        handoff_rx: mpsc::Receiver<TcpStream>,
        handoff_txs: Vec<mpsc::Sender<TcpStream>>,
        completions: mpsc::Receiver<Completion>,
        sink: CompletionSink,
    ) -> Self {
        Reactor {
            shared,
            shard,
            poller,
            listener,
            handoff_rx,
            handoff_txs,
            next_target: 0,
            completions,
            sink,
            conns: HashMap::new(),
            pending: HashMap::new(),
            hot: HashSet::new(),
            next_token: 0,
            next_tag: shard as u64,
            drain_started: false,
        }
    }

    fn counters(&self) -> &ShardCounters {
        &self.shared.shards[self.shard]
    }

    fn run(mut self) {
        if self
            .poller
            .register(
                self.shared.wakes[self.shard].read_fd(),
                TOKEN_WAKE,
                Interest::READ,
            )
            .is_err()
        {
            // A shard that cannot hear wakes cannot serve; die loudly
            // (the alive guard reports it).
            return;
        }
        if let Some(listener) = &self.listener {
            if self
                .poller
                .register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
                .is_err()
            {
                return;
            }
        }
        let mut drain_deadline: Option<Instant> = None;
        loop {
            let draining = self.shared.shutdown.load(Ordering::Acquire);
            if draining {
                if !self.drain_started {
                    self.drain_started = true;
                    drain_deadline = Some(Instant::now() + SHUTDOWN_DRAIN_GRACE);
                    // Serve every complete frame already read off a socket,
                    // then stop reading: accepted work drains, new work is
                    // no longer admitted.
                    let tokens: Vec<u64> = self.conns.keys().copied().collect();
                    for token in tokens {
                        self.process_rbuf(token);
                    }
                    self.hot.clear();
                }
                let flushed = self.conns.values().all(|conn| conn.wbuf.is_empty());
                if (self.pending.is_empty() && flushed)
                    || drain_deadline.is_some_and(|d| Instant::now() >= d)
                {
                    return;
                }
            }

            // The level backend rebuilds its interest set per wait (the
            // edge backend registered everything once and ignores this).
            if !self.poller.edge_triggered() {
                if self.listener.is_some() {
                    self.poller.set_interest(
                        TOKEN_LISTENER,
                        if draining {
                            Interest::NONE
                        } else {
                            Interest::READ
                        },
                    );
                }
                for (&token, conn) in &self.conns {
                    let interest = if draining {
                        // During shutdown only flushes matter.
                        Interest {
                            readable: false,
                            writable: !conn.wbuf.is_empty(),
                        }
                    } else {
                        conn.interest()
                    };
                    self.poller.set_interest(token, interest);
                }
            }

            // Hot connections have bytes we deliberately left behind: do
            // not park while any are pending.
            let prev_hot: Vec<u64> = self.hot.drain().collect();
            let timeout = if prev_hot.is_empty() {
                self.shared.options.poll_interval
            } else {
                Duration::ZERO
            };
            let events = match self.poller.wait(timeout) {
                Ok(events) => events.to_vec(),
                Err(_) => {
                    // EINVAL/ENOMEM are not per-connection conditions; back
                    // off instead of spinning and try again.
                    for token in prev_hot {
                        self.hot.insert(token);
                    }
                    thread::sleep(self.shared.options.poll_interval);
                    continue;
                }
            };

            // --- dispatch readiness ----------------------------------
            let mut accept = false;
            for event in &events {
                match event.token {
                    TOKEN_WAKE => self.shared.wakes[self.shard].drain(),
                    TOKEN_LISTENER => accept = true,
                    token => {
                        if event.error {
                            self.close(token);
                            continue;
                        }
                        if event.writable {
                            self.flush(token);
                        }
                        if event.readable && !draining {
                            self.read_ready(token);
                        }
                    }
                }
            }
            // Handoffs and completions are drained unconditionally:
            // try_recv is cheap and wake coalescing means byte counts
            // carry no information.
            self.drain_handoffs(draining);
            self.drain_completions();
            if accept && !draining {
                self.accept_ready();
            }
            // Re-serve the hot list from *before* this wait.  A token that
            // re-entered `hot` during dispatch already consumed its burst
            // this round — skip it for fairness; it keeps the next round
            // non-blocking instead.
            if !draining {
                for token in prev_hot {
                    if self.hot.contains(&token) {
                        continue;
                    }
                    self.flush(token);
                    self.read_ready(token);
                }
            }
            self.sweep();
        }
    }

    /// Accepts every connection the listener has queued and places each
    /// on a shard (round-robin over the living).
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => self.place_accepted(stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                // Transient accept errors (ECONNABORTED etc.): the next
                // readiness round retries.
                Err(_) => return,
            }
        }
    }

    /// Admission control and shard placement for one accepted socket.
    fn place_accepted(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let max = self.shared.options.max_connections;
        let open = self.shared.open_total.load(Ordering::Acquire);
        if open >= max {
            self.counters().accepted.fetch_add(1, Ordering::Relaxed);
            self.counters().turned_away.fetch_add(1, Ordering::Relaxed);
            self.shed(stream, open as u64);
            return;
        }
        // Reserve the slot before the connection is reachable by any
        // shard: only the acceptor admits, so the check above is exact
        // and the counter can only lag on the release side (closes), never
        // overshoot the cap.
        self.shared.open_total.fetch_add(1, Ordering::AcqRel);
        let shards = self.shared.reactors;
        let mut stream = Some(stream);
        for _ in 0..shards {
            let target = self.next_target % shards;
            self.next_target = (self.next_target + 1) % shards;
            if target == self.shard {
                self.shared.shards[target]
                    .accepted
                    .fetch_add(1, Ordering::Relaxed);
                self.admit(stream.take().expect("placed once"));
                return;
            }
            if !self.shared.shards[target].alive.load(Ordering::Acquire) {
                continue;
            }
            match self.handoff_txs[target].send(stream.take().expect("placed once")) {
                Ok(()) => {
                    self.shared.shards[target]
                        .accepted
                        .fetch_add(1, Ordering::Relaxed);
                    self.shared.shards[target]
                        .handoffs
                        .fetch_add(1, Ordering::Relaxed);
                    self.shared.wakes[target].wake();
                    return;
                }
                // The shard died between the liveness check and the send:
                // take the socket back and try the next target.
                Err(mpsc::SendError(returned)) => stream = Some(returned),
            }
        }
        // Unreachable in practice — the accepting shard itself is always
        // a valid target — but never leak the reservation.
        self.shared.open_total.fetch_sub(1, Ordering::AcqRel);
    }

    /// Sheds one over-cap connection with a typed REJECTED frame, owned
    /// locally by the accepting shard (bounded by
    /// [`MAX_SHED_CONNECTIONS`]).
    fn shed(&mut self, stream: TcpStream, open: u64) {
        // Sheds occupy close-pipeline slots (flush + linger), bounded
        // separately from serving slots; past that bound the stream is
        // simply dropped.
        let draining = self.conns.len() - self.open_count();
        if draining >= MAX_SHED_CONNECTIONS {
            return;
        }
        let _ = stream.set_nodelay(true);
        let mut conn = Conn::new(stream);
        conn.admitted = false;
        let snapshot = self.shared.server.queue_snapshot();
        conn.queue_frame(&Frame::Rejected(RejectReply {
            request_id: NO_REQUEST_ID,
            scope: reject_scope::CONNECTIONS,
            queued: open,
            capacity: self.shared.options.max_connections as u64,
            // Slot availability is not predicted by the queue drain
            // rate, so the hint is floored at a polite back-off rather
            // than the near-zero an empty queue would suggest.
            retry_after_ms: snapshot.retry_after_ms().max(CONNECTIONS_RETRY_AFTER_MS),
            drain_rate_mips: drain_rate_mips(&snapshot),
        }));
        conn.begin_drain();
        self.install(conn);
    }

    /// Installs an admitted (reservation-holding) connection on this
    /// shard.
    fn admit(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let conn = Conn::new(stream);
        if self.install(conn) {
            self.counters()
                .open_connections
                .store(self.open_count(), Ordering::Relaxed);
        } else {
            // The poller refused the descriptor: the connection was
            // dropped, release its reservation.
            self.shared.open_total.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Registers a connection with the poller and the table; returns
    /// `false` (dropping the connection) if the poller refuses it.
    fn install(&mut self, conn: Conn) -> bool {
        let token = self.next_token;
        self.next_token += 1;
        let fd = conn.stream.as_raw_fd();
        if self
            .poller
            .register(fd, token, Interest::READ_WRITE)
            .is_err()
        {
            return false;
        }
        self.conns.insert(token, conn);
        self.flush(token);
        true
    }

    /// Admits connections handed over by the accepting shard.  During a
    /// shutdown the handoff is refused and the acceptor-made reservation
    /// released (the acceptor itself has already stopped accepting; this
    /// only catches sockets in flight at the instant of shutdown).
    fn drain_handoffs(&mut self, draining: bool) {
        while let Ok(stream) = self.handoff_rx.try_recv() {
            if draining {
                self.shared.open_total.fetch_sub(1, Ordering::AcqRel);
                continue;
            }
            self.admit(stream);
        }
    }

    /// Admitted (non-shed) connections currently owned by this shard.
    fn open_count(&self) -> usize {
        self.conns
            .values()
            .filter(|c| c.state == ConnState::Open)
            .count()
    }

    /// Non-blocking read burst followed by frame processing.
    fn read_ready(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let was_open = conn.state == ConnState::Open;
        let outcome = conn.read_step(self.shared.options.read_burst);
        let refire = outcome.truncated || conn.take_fault_blocked();
        if outcome.dead {
            self.close(token);
            return;
        }
        if refire && self.poller.edge_triggered() {
            self.hot.insert(token);
        }
        if was_open {
            self.process_rbuf(token);
        }
    }

    /// Decodes and serves every complete request buffered for `token`.
    fn process_rbuf(&mut self, token: u64) {
        // Disjoint field borrows: the connection map and the pending map
        // are used simultaneously below.
        let Reactor {
            shared,
            shard,
            conns,
            pending,
            next_tag,
            sink,
            ..
        } = self;
        let counters = &shared.shards[*shard];
        let Some(conn) = conns.get_mut(&token) else {
            return;
        };
        while conn.state == ConnState::Open {
            match probe_plaintext(&conn.rbuf) {
                PlaintextProbe::Stats { consumed } => {
                    conn.rbuf.drain(..consumed);
                    counters.stats_requests.fetch_add(1, Ordering::Relaxed);
                    // One-shot scrape, `nc`-style: raw text (no framing),
                    // then close.
                    conn.wbuf
                        .extend_from_slice(render_stats(shared, stats_format::TEXT).as_bytes());
                    retire_and_drain(shared, conn);
                    break;
                }
                PlaintextProbe::Traces { consumed } => {
                    conn.rbuf.drain(..consumed);
                    counters.stats_requests.fetch_add(1, Ordering::Relaxed);
                    // One-shot JSONL trace dump, also `nc`-style; draining
                    // is destructive, so each scrape returns fresh traces.
                    conn.wbuf
                        .extend_from_slice(render_stats(shared, stats_format::TRACES).as_bytes());
                    retire_and_drain(shared, conn);
                    break;
                }
                PlaintextProbe::NeedMore => break,
                PlaintextProbe::NotStats => {}
            }
            match Frame::decode(&conn.rbuf) {
                Ok(Some((frame, used))) => {
                    conn.rbuf.drain(..used);
                    handle_frame(
                        shared, counters, conn, pending, next_tag, sink, token, frame,
                    );
                    conn.last_activity = Instant::now();
                }
                Ok(None) => break,
                Err(err) => {
                    counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    conn.queue_frame(&Frame::Error(ErrorReply {
                        request_id: NO_REQUEST_ID,
                        code: error_code::PROTOCOL,
                        message: err.to_string(),
                    }));
                    conn.rbuf.clear();
                    retire_and_drain(shared, conn);
                    break;
                }
            }
        }
        self.flush(token);
    }

    /// Hands every settled inference back to its connection, in completion
    /// order.
    fn drain_completions(&mut self) {
        while let Ok(completion) = self.completions.try_recv() {
            let Some(origin) = self.pending.remove(&completion.tag) else {
                continue;
            };
            let Some(conn) = self.conns.get_mut(&origin.token) else {
                // The connection died while its inference ran; the result
                // has no reader.
                continue;
            };
            conn.in_flight -= 1;
            conn.last_activity = Instant::now();
            let frame = match completion.result {
                Ok(report) => Frame::Scores(ScoreReply {
                    request_id: origin.request_id,
                    prediction: report.prediction as u32,
                    time_steps: report.time_steps as u32,
                    thread_budget: report.thread_budget as u32,
                    total_cycles: report.total_cycles(),
                    logits: report.logits,
                }),
                // A deadline shed is backpressure, not failure: the reply
                // is a REJECTED frame (scope = deadline) quoting the live
                // queue, so clients retry it exactly like a queue-full.
                Err(AccelError::DeadlineExceeded { .. }) => {
                    let snapshot = self.shared.server.queue_snapshot();
                    Frame::Rejected(RejectReply {
                        request_id: origin.request_id,
                        scope: reject_scope::DEADLINE,
                        queued: snapshot.depth as u64,
                        capacity: snapshot.capacity as u64,
                        retry_after_ms: snapshot.retry_after_ms().max(1),
                        drain_rate_mips: drain_rate_mips(&snapshot),
                    })
                }
                Err(err) => error_reply(origin.request_id, &err),
            };
            conn.queue_frame(&frame);
            // Mark where this reply's last byte sits in the write queue so
            // flush_step can measure its residency — the WriteStall span of
            // the trace keyed by the submission tag.
            if self.shared.server.recorder().enabled() {
                conn.reply_marks.push_back((
                    conn.flushed_total + conn.wbuf.len() as u64,
                    Instant::now(),
                    completion.tag,
                ));
            }
            self.flush(origin.token);
        }
    }

    /// Writes as much queued reply data as the kernel accepts, then
    /// forwards any write-stall samples the flush produced to the span
    /// recorder (amending the already-published traces).
    fn flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let dead = conn.flush_step();
        // An injected EWOULDBLOCK left flushable bytes with no writable
        // edge coming: treat the connection as hot so the next iteration
        // retries the flush.
        let refire = conn.take_fault_blocked() && !conn.wbuf.is_empty();
        let samples = std::mem::take(&mut conn.stall_samples);
        if !samples.is_empty() {
            let recorder = self.shared.server.recorder();
            for (request_id, seconds) in samples {
                recorder.record_write_stall(request_id, seconds);
            }
        }
        if dead {
            self.close(token);
            return;
        }
        if refire && self.poller.edge_triggered() {
            self.hot.insert(token);
        }
    }

    /// Deadline enforcement: idle Open connections, stalled readers,
    /// expired drains and lingers.
    fn sweep(&mut self) {
        let now = Instant::now();
        let idle = self.shared.options.idle_timeout;
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| {
                // A reader whose kernel buffer has refused every byte for
                // the whole stall window is gone, whatever the state.
                let stalled = conn
                    .stalled_since
                    .is_some_and(|since| now.duration_since(since) >= WRITE_STALL_TIMEOUT);
                stalled
                    || match conn.state {
                        ConnState::Open => {
                            let idle_out = conn.in_flight == 0
                                && conn.wbuf.is_empty()
                                && now.duration_since(conn.last_activity) >= idle;
                            // A peer that half-closed and has nothing in
                            // flight or unflushed is simply finished.
                            let finished =
                                conn.peer_eof && conn.in_flight == 0 && conn.wbuf.is_empty();
                            idle_out || finished
                        }
                        ConnState::Draining | ConnState::Linger => {
                            conn.deadline.is_some_and(|deadline| now >= deadline)
                        }
                    }
            })
            .map(|(&token, _)| token)
            .collect();
        for token in expired {
            self.close(token);
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            // A connection closed while still serving releases its
            // admission reservation here (drained ones released it in
            // `retire_and_drain`).
            if conn.state == ConnState::Open && conn.admitted {
                self.shared.open_total.fetch_sub(1, Ordering::AcqRel);
            }
            self.poller.deregister(token, conn.stream.as_raw_fd());
            self.hot.remove(&token);
            self.counters()
                .open_connections
                .store(self.open_count(), Ordering::Relaxed);
        }
        // Stale `pending` entries for this token self-clean: their
        // completions arrive, find no connection, and are dropped.
    }
}

/// Serves one decoded client frame (reads already done, writes queued).
#[allow(clippy::too_many_arguments)]
fn handle_frame(
    shared: &NetShared,
    counters: &ShardCounters,
    conn: &mut Conn,
    pending: &mut HashMap<u64, Pending>,
    next_tag: &mut u64,
    sink: &CompletionSink,
    token: u64,
    frame: Frame,
) {
    match frame {
        Frame::Infer(request) => {
            counters.requests.fetch_add(1, Ordering::Relaxed);
            let request_id = request.request_id;
            let deadline = request
                .deadline_ms
                .map(|ms| Duration::from_millis(u64::from(ms)));
            let tensor = match request.into_tensor() {
                Ok(tensor) => tensor,
                Err(err) => {
                    conn.queue_frame(&Frame::Error(ErrorReply {
                        request_id,
                        code: error_code::BAD_REQUEST,
                        message: err.to_string(),
                    }));
                    return;
                }
            };
            let tag = *next_tag;
            // Shard-strided: tags stay globally unique across shards.
            *next_tag += shared.reactors as u64;
            match shared
                .server
                .submit_tagged_within(tensor, tag, sink, deadline)
            {
                Ok(()) => {
                    pending.insert(tag, Pending { token, request_id });
                    conn.in_flight += 1;
                }
                Err(AccelError::QueueFull { queued, capacity }) => {
                    let snapshot = shared.server.queue_snapshot();
                    conn.queue_frame(&Frame::Rejected(RejectReply {
                        request_id,
                        scope: reject_scope::QUEUE,
                        queued: queued as u64,
                        capacity: capacity as u64,
                        retry_after_ms: snapshot.retry_after_ms().max(1),
                        drain_rate_mips: drain_rate_mips(&snapshot),
                    }));
                }
                Err(err) => {
                    let reply = error_reply(request_id, &err);
                    let shutting_down = matches!(
                        &reply,
                        Frame::Error(ErrorReply { code, .. }) if *code == error_code::SHUTTING_DOWN
                    );
                    conn.queue_frame(&reply);
                    if shutting_down {
                        retire_and_drain(shared, conn);
                    }
                }
            }
        }
        Frame::StatsRequest { format } => {
            counters.stats_requests.fetch_add(1, Ordering::Relaxed);
            conn.queue_frame(&Frame::StatsText(render_stats(shared, format)));
        }
        // Server-bound traffic may only be requests.
        Frame::Scores(_) | Frame::Rejected(_) | Frame::Error(_) | Frame::StatsText(_) => {
            counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
            conn.queue_frame(&Frame::Error(ErrorReply {
                request_id: NO_REQUEST_ID,
                code: error_code::PROTOCOL,
                message: "unexpected server-bound frame".to_string(),
            }));
            retire_and_drain(shared, conn);
        }
    }
}

fn drain_rate_mips(snapshot: &QueueSnapshot) -> u64 {
    (snapshot.drain_rate_ips * 1000.0).round().max(0.0) as u64
}

fn error_reply(request_id: u64, err: &AccelError) -> Frame {
    let code = match err {
        AccelError::Serving { .. } => error_code::SHUTTING_DOWN,
        // The engine panicked on this one request; the panic was isolated
        // inside the dispatcher and the server keeps serving — the code
        // tells the client the input is poison, not the server.
        AccelError::EnginePanic { .. } => error_code::ENGINE_PANIC,
        // The replica this request was placed on died before serving it;
        // siblings keep serving, so the client should resubmit and let the
        // router place the retry on a healthy replica.
        AccelError::ReplicaDown { .. } => error_code::REPLICA_DOWN,
        _ => error_code::BAD_REQUEST,
    };
    Frame::Error(ErrorReply {
        request_id,
        code,
        message: err.to_string(),
    })
}

/// Renders the serving counters in the negotiated [`stats_format`] — the
/// body of the framed STATS reply; the plaintext form also answers the
/// `nc`-style `STATS` line and the traces form the `TRACES` line.
fn render_stats(shared: &NetShared, format: u8) -> String {
    match format {
        stats_format::PROMETHEUS => render_stats_prometheus(shared),
        // Destructive drain of the completed-trace ring, one JSON object
        // per line.
        stats_format::TRACES => shared.server.recorder().render_jsonl(),
        _ => render_stats_text(shared),
    }
}

fn render_stats_text(shared: &NetShared) -> String {
    let server = shared.server.stats();
    let per_reactor = per_reactor_stats(shared);
    let reactors_alive = per_reactor.iter().filter(|r| r.alive).count();
    let mut out = String::new();
    out.push_str(&format!(
        "snn_net_protocol_version: {}\n",
        crate::protocol::VERSION
    ));
    out.push_str(&format!("completed: {}\n", server.completed));
    out.push_str(&format!("errors: {}\n", server.errors));
    out.push_str(&format!("panics: {}\n", server.panics));
    out.push_str(&format!("rejected: {}\n", server.rejected));
    out.push_str(&format!("deadline_sheds: {}\n", server.deadline_sheds));
    out.push_str(&format!(
        "reactor_alive: {}\n",
        u8::from(reactors_alive == shared.reactors)
    ));
    out.push_str(&format!("reactors: {}\n", shared.reactors));
    out.push_str(&format!("reactors_alive: {reactors_alive}\n"));
    out.push_str(&format!("reactor_backend: {}\n", aggregate_backend(shared)));
    out.push_str(&format!("replicas: {}\n", server.replicas));
    out.push_str(&format!("replicas_healthy: {}\n", server.healthy_replicas));
    out.push_str(&format!("batches: {}\n", server.batches));
    out.push_str(&format!("largest_batch: {}\n", server.largest_batch));
    out.push_str(&format!("queue_depth: {}\n", server.queue.depth));
    out.push_str(&format!("queue_capacity: {}\n", server.queue.capacity));
    out.push_str(&format!(
        "drain_rate_ips: {:.3}\n",
        server.queue.drain_rate_ips
    ));
    out.push_str(&format!("throughput_ips: {:.3}\n", server.throughput_ips()));
    out.push_str(&format!("thread_budget: {}\n", server.thread_budget));
    out.push_str(&format!(
        "connections_accepted: {}\n",
        per_reactor.iter().map(|r| r.accepted).sum::<u64>()
    ));
    out.push_str(&format!(
        "connections_turned_away: {}\n",
        per_reactor.iter().map(|r| r.turned_away).sum::<u64>()
    ));
    out.push_str(&format!(
        "connections_open: {}\n",
        per_reactor.iter().map(|r| r.open_connections).sum::<u64>()
    ));
    out.push_str(&format!(
        "connections_max: {}\n",
        shared.options.max_connections
    ));
    out.push_str(&format!(
        "requests: {}\n",
        per_reactor.iter().map(|r| r.requests).sum::<u64>()
    ));
    out.push_str(&format!(
        "protocol_errors: {}\n",
        per_reactor.iter().map(|r| r.protocol_errors).sum::<u64>()
    ));
    out.push_str(&format!(
        "stats_requests: {}\n",
        per_reactor.iter().map(|r| r.stats_requests).sum::<u64>()
    ));
    let recorder = shared.server.recorder();
    out.push_str(&format!("trace_open_spans: {}\n", recorder.open_spans()));
    for (key, histogram) in [
        (
            "request_queue_wait_seconds",
            recorder.queue_wait_histogram(),
        ),
        ("request_compute_seconds", recorder.compute_histogram()),
        ("request_duration_seconds", recorder.duration_histogram()),
        (
            "reactor_write_stall_seconds",
            recorder.write_stall_histogram(),
        ),
    ] {
        out.push_str(&format!("{key}_count: {}\n", histogram.count()));
        out.push_str(&format!("{key}_sum: {}\n", histogram.sum()));
    }
    for reactor in &per_reactor {
        out.push_str(&format!(
            "reactor[{}]: shard_alive={} backend={} connections={} accepted={} \
             turned_away={} handoffs={} requests={} protocol_errors={} stats_requests={}\n",
            reactor.index,
            u8::from(reactor.alive),
            reactor.backend,
            reactor.open_connections,
            reactor.accepted,
            reactor.turned_away,
            reactor.handoffs,
            reactor.requests,
            reactor.protocol_errors,
            reactor.stats_requests,
        ));
    }
    for replica in &server.per_replica {
        out.push_str(&format!(
            "replica[{}]: healthy={} completed={} errors={} batches={} largest_batch={} \
             panics={} deadline_sheds={} queue_depth={} drain_rate_ips={:.3}\n",
            replica.index,
            u8::from(replica.healthy),
            replica.completed,
            replica.errors,
            replica.batches,
            replica.largest_batch,
            replica.panics,
            replica.deadline_sheds,
            replica.queue.depth,
            replica.queue.drain_rate_ips
        ));
    }
    for unit in &server.utilisation {
        out.push_str(&format!(
            "unit[{:?}]: units={} busy_cycles={} total_cycles={} utilisation={:.4}\n",
            unit.kind,
            unit.units,
            unit.busy_cycles,
            unit.total_cycles,
            unit.utilisation()
        ));
    }
    out
}

/// Prometheus exposition: `# TYPE` metadata plus `snn_`-prefixed metric
/// names, one sample per line — directly scrapeable.
fn render_stats_prometheus(shared: &NetShared) -> String {
    let server = shared.server.stats();
    let per_reactor = per_reactor_stats(shared);
    let reactors_alive = per_reactor.iter().filter(|r| r.alive).count();
    let mut out = String::new();
    let mut metric = |name: &str, kind: &str, value: String| {
        out.push_str(&format!("# TYPE {name} {kind}\n{name} {value}\n"));
    };
    metric(
        "snn_net_protocol_version",
        "gauge",
        crate::protocol::VERSION.to_string(),
    );
    metric(
        "snn_completed_total",
        "counter",
        server.completed.to_string(),
    );
    metric("snn_errors_total", "counter", server.errors.to_string());
    metric("snn_panics_total", "counter", server.panics.to_string());
    metric("snn_rejected_total", "counter", server.rejected.to_string());
    metric(
        "snn_deadline_sheds_total",
        "counter",
        server.deadline_sheds.to_string(),
    );
    metric(
        "snn_reactor_alive",
        "gauge",
        u8::from(reactors_alive == shared.reactors).to_string(),
    );
    metric("snn_reactors", "gauge", shared.reactors.to_string());
    metric("snn_reactors_alive", "gauge", reactors_alive.to_string());
    metric("snn_replicas", "gauge", server.replicas.to_string());
    metric(
        "snn_replicas_healthy",
        "gauge",
        server.healthy_replicas.to_string(),
    );
    metric("snn_batches_total", "counter", server.batches.to_string());
    metric(
        "snn_largest_batch",
        "gauge",
        server.largest_batch.to_string(),
    );
    metric("snn_queue_depth", "gauge", server.queue.depth.to_string());
    metric(
        "snn_queue_capacity",
        "gauge",
        server.queue.capacity.to_string(),
    );
    metric(
        "snn_drain_rate_ips",
        "gauge",
        format!("{:.3}", server.queue.drain_rate_ips),
    );
    metric(
        "snn_throughput_ips",
        "gauge",
        format!("{:.3}", server.throughput_ips()),
    );
    metric(
        "snn_thread_budget",
        "gauge",
        server.thread_budget.to_string(),
    );
    metric(
        "snn_connections_accepted_total",
        "counter",
        per_reactor
            .iter()
            .map(|r| r.accepted)
            .sum::<u64>()
            .to_string(),
    );
    metric(
        "snn_connections_turned_away_total",
        "counter",
        per_reactor
            .iter()
            .map(|r| r.turned_away)
            .sum::<u64>()
            .to_string(),
    );
    metric(
        "snn_connections_open",
        "gauge",
        per_reactor
            .iter()
            .map(|r| r.open_connections)
            .sum::<u64>()
            .to_string(),
    );
    metric(
        "snn_connections_max",
        "gauge",
        shared.options.max_connections.to_string(),
    );
    metric(
        "snn_requests_total",
        "counter",
        per_reactor
            .iter()
            .map(|r| r.requests)
            .sum::<u64>()
            .to_string(),
    );
    metric(
        "snn_protocol_errors_total",
        "counter",
        per_reactor
            .iter()
            .map(|r| r.protocol_errors)
            .sum::<u64>()
            .to_string(),
    );
    metric(
        "snn_stats_requests_total",
        "counter",
        per_reactor
            .iter()
            .map(|r| r.stats_requests)
            .sum::<u64>()
            .to_string(),
    );
    metric(
        "snn_trace_open_spans",
        "gauge",
        shared.server.recorder().open_spans().to_string(),
    );
    // Per-reactor shard series: which shard is hot, dead, or unbalanced.
    out.push_str("# TYPE snn_reactor_backend gauge\n");
    for reactor in &per_reactor {
        out.push_str(&format!(
            "snn_reactor_backend{{reactor=\"{}\",backend=\"{}\"}} 1\n",
            reactor.index, reactor.backend
        ));
    }
    for (name, kind, pick) in [
        (
            "snn_reactor_shard_alive",
            "gauge",
            Box::new(|r: &ReactorStats| u8::from(r.alive).to_string())
                as Box<dyn Fn(&ReactorStats) -> String>,
        ),
        (
            "snn_reactor_connections",
            "gauge",
            Box::new(|r| r.open_connections.to_string()),
        ),
        (
            "snn_reactor_accepted_total",
            "counter",
            Box::new(|r| r.accepted.to_string()),
        ),
        (
            "snn_reactor_turned_away_total",
            "counter",
            Box::new(|r| r.turned_away.to_string()),
        ),
        (
            "snn_reactor_handoffs_total",
            "counter",
            Box::new(|r| r.handoffs.to_string()),
        ),
        (
            "snn_reactor_requests_total",
            "counter",
            Box::new(|r| r.requests.to_string()),
        ),
        (
            "snn_reactor_protocol_errors_total",
            "counter",
            Box::new(|r| r.protocol_errors.to_string()),
        ),
        (
            "snn_reactor_stats_requests_total",
            "counter",
            Box::new(|r| r.stats_requests.to_string()),
        ),
    ] {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        for reactor in &per_reactor {
            out.push_str(&format!(
                "{name}{{reactor=\"{}\"}} {}\n",
                reactor.index,
                pick(reactor)
            ));
        }
    }
    for (name, kind, pick) in [
        (
            "snn_replica_healthy",
            "gauge",
            Box::new(|r: &snn_accel::serve::ReplicaStats| u8::from(r.healthy).to_string())
                as Box<dyn Fn(&snn_accel::serve::ReplicaStats) -> String>,
        ),
        (
            "snn_replica_completed_total",
            "counter",
            Box::new(|r| r.completed.to_string()),
        ),
        (
            "snn_replica_errors_total",
            "counter",
            Box::new(|r| r.errors.to_string()),
        ),
        (
            "snn_replica_batches_total",
            "counter",
            Box::new(|r| r.batches.to_string()),
        ),
        (
            "snn_replica_largest_batch",
            "gauge",
            Box::new(|r| r.largest_batch.to_string()),
        ),
        (
            "snn_replica_panics_total",
            "counter",
            Box::new(|r| r.panics.to_string()),
        ),
        (
            "snn_replica_deadline_sheds_total",
            "counter",
            Box::new(|r| r.deadline_sheds.to_string()),
        ),
        (
            "snn_replica_queue_depth",
            "gauge",
            Box::new(|r| r.queue.depth.to_string()),
        ),
        (
            "snn_replica_drain_rate_ips",
            "gauge",
            Box::new(|r| format!("{:.3}", r.queue.drain_rate_ips)),
        ),
    ] {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        for replica in &server.per_replica {
            out.push_str(&format!(
                "{name}{{replica=\"{}\"}} {}\n",
                replica.index,
                pick(replica)
            ));
        }
    }
    for (name, kind, pick) in [
        (
            "snn_unit_count",
            "gauge",
            Box::new(|u: &snn_accel::report::UnitUtilisation| u.units.to_string())
                as Box<dyn Fn(&snn_accel::report::UnitUtilisation) -> String>,
        ),
        (
            "snn_unit_busy_cycles",
            "gauge",
            Box::new(|u| u.busy_cycles.to_string()),
        ),
        (
            "snn_unit_total_cycles",
            "gauge",
            Box::new(|u| u.total_cycles.to_string()),
        ),
        (
            "snn_unit_utilisation",
            "gauge",
            Box::new(|u| format!("{:.4}", u.utilisation())),
        ),
    ] {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        for unit in &server.utilisation {
            out.push_str(&format!(
                "{name}{{unit=\"{:?}\"}} {}\n",
                unit.kind,
                pick(unit)
            ));
        }
    }
    // Per-request latency histograms (queue wait, compute, end-to-end
    // duration, reactor write-stall) from the span recorder.
    shared.server.recorder().render_prometheus_into(&mut out);
    out
}
