//! The TCP front-end: a single readiness-driven **reactor** thread over
//! [`StreamServer`]'s non-blocking completion queue.
//!
//! [`NetServer::bind`] compiles the model once (via
//! [`StreamServer::start_with`]), binds a listener and spawns one reactor
//! thread that owns *every* connection.  The reactor parks in `poll(2)`
//! ([`crate::sys`]) watching the listener, a wake pipe and all connection
//! sockets; nothing in the front-end ever blocks on a peer:
//!
//! * **Reads** are non-blocking into a per-connection buffer; complete
//!   frames are decoded incrementally and INFER requests are submitted
//!   through [`StreamServer::submit_tagged`] — so one connection can have
//!   any number of requests in flight (pipelining).
//! * **Completions** come back over an mpsc channel; the dispatcher wakes
//!   the reactor through the pipe, and replies are written in **completion
//!   order**, each echoing its request id for client-side correlation.
//! * **Writes** go through a per-connection write queue flushed on
//!   writability, so a stalled reader delays only its own replies — every
//!   other connection keeps flowing.  A reader that outgrows the
//!   write-buffer cap, or whose kernel buffer accepts nothing for the
//!   whole [`WRITE_STALL_TIMEOUT`], is disconnected.
//!
//! Scores on the wire remain bit-identical to the matching in-process
//! [`StreamServer::submit`] (loopback suite), pipelined or not.
//!
//! # Backpressure, end to end
//!
//! Load shedding is typed at both layers and always carries a retry hint
//! computed from the live [`StreamServer::queue_snapshot`]:
//!
//! * **Submission queue full** — `submit_tagged` returns
//!   [`snn_accel::AccelError::QueueFull`]; the reactor answers that request
//!   with a REJECTED frame (`scope = queue`) echoing its id and quoting
//!   the observed depth, the capacity, and how long the dispatcher needs
//!   to drain the backlog at its recent rate.  Other pipelined requests on
//!   the same connection are untouched.
//! * **Connection cap reached** — the reactor owns at most
//!   [`NetOptions::max_connections`] sockets; a connection past the cap is
//!   shed with a REJECTED frame (`scope = connections`) queued on its
//!   write buffer and closed once flushed — no thread is spawned, the
//!   acceptor never blocks.
//!
//! The IO story of `snn_parallel` shrank accordingly: instead of one
//! [`snn_parallel::IoLease`] per connection, the front-end holds exactly
//! **one** lease for the reactor thread (the dispatcher inside
//! [`StreamServer`] is the other IO-adjacent thread); connection scaling
//! is bounded by `max_connections`, not by threads.
//!
//! # Shutdown
//!
//! [`NetServer::shutdown`] wakes the reactor, which stops accepting and
//! reading, submits any complete frames already buffered, waits for every
//! in-flight inference to complete, flushes all write queues (bounded by
//! [`SHUTDOWN_DRAIN_GRACE`]) and exits; only then is the inner server torn
//! down — a clean shutdown never drops a request it has already read.

use crate::error::NetError;
use crate::protocol::{
    error_code, probe_plaintext, reject_scope, stats_format, ErrorReply, Frame, PlaintextProbe,
    RejectReply, ScoreReply, NO_REQUEST_ID,
};
use crate::sys::{poll_fds, PollFd, WakePipe, POLLIN, POLLOUT};
use snn_accel::config::AcceleratorConfig;
use snn_accel::serve::{
    Completion, CompletionSink, QueueSnapshot, ServerOptions, ServerStats, StreamServer,
};
use snn_accel::AccelError;
use snn_model::snn::SnnModel;
use std::collections::{HashMap, VecDeque};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Options of a [`NetServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetOptions {
    /// Options of the inner [`StreamServer`] (micro-batching, queue
    /// capacity, execution mode) — validated by its constructor.
    pub server: ServerOptions,
    /// Upper bound of one `poll(2)` sleep: the granularity of idle-timeout
    /// sweeps and the latency ceiling of noticing a shutdown — not of
    /// requests, which wake the reactor through the pipe.
    pub poll_interval: Duration,
    /// A connection that has sent no complete request (and has none in
    /// flight) for this long is closed and its slot reclaimed.  Without
    /// the deadline, `max_connections` silent sockets would pin every slot
    /// forever and starve new connections while the server sits idle.
    pub idle_timeout: Duration,
    /// Most connections the reactor owns at once.  Past the cap a new
    /// connection is shed with a typed REJECTED frame (`scope =
    /// connections`).  Must be at least 1 ([`NetServer::bind`] rejects 0
    /// with a typed error).  Connections are state, not threads, so this
    /// can comfortably sit far above the old per-connection worker cap.
    pub max_connections: usize,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            server: ServerOptions::default(),
            poll_interval: Duration::from_millis(20),
            idle_timeout: Duration::from_secs(60),
            max_connections: 256,
        }
    }
}

/// Cap on one connection's queued-but-unwritten reply bytes.  A client
/// that pipelines requests and never reads its replies grows its write
/// queue; past this bound the reactor declares the reader dead and closes
/// the connection instead of buffering without limit.  Generous: a SCORES
/// reply is ~100 bytes, so this is tens of thousands of unread replies.
pub const MAX_WRITE_BUFFER: usize = 4 << 20;

/// How long a connection's write queue may sit non-empty **without the
/// kernel accepting a single byte** before the reader is declared dead
/// and the connection closed.  The peer's receive buffer being full for
/// this long means nobody is reading; without the bound, a reader stalled
/// *below* [`MAX_WRITE_BUFFER`] would pin its connection slot forever
/// (the reactor equivalent of the old per-connection write timeout).
/// Any write progress restarts the window.
pub const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(10);

/// Most bytes the reactor reads from one socket in one readiness round —
/// a fairness bound so a firehose peer cannot starve its neighbours
/// between polls.  The remainder stays in the kernel buffer and the
/// socket simply polls readable again.
pub const READ_BURST: usize = 256 << 10;

/// How long a reactor-wide draining shutdown may keep waiting on
/// in-flight inferences and unflushed replies before giving up on the
/// laggards.  Also the per-connection bound of the draining phase of a
/// terminally-answered connection (terminal reply queued, in-flight
/// completions still landing).
pub const SHUTDOWN_DRAIN_GRACE: Duration = Duration::from_secs(10);

/// How long a connection that has been answered and half-closed (error
/// replies, plaintext stats, sheds) is kept around to drain the peer's
/// unread bytes — closing with data pending in the receive buffer sends
/// RST, which could destroy the reply before the peer reads it.
pub const CLOSE_LINGER: Duration = Duration::from_millis(250);

/// Cap on connections in the shed/close pipeline (REJECTED queued, write
/// flushing, linger) beyond [`NetOptions::max_connections`].  Past it,
/// surplus connections are dropped without a frame — under that much flood
/// typed rejection inevitably degrades to kernel-level drops anyway, but
/// the reactor itself never blocks and its memory stays bounded.
pub const MAX_SHED_CONNECTIONS: usize = 64;

/// Floor of the retry-after hint on connection-scope rejections
/// (milliseconds).  Connection slots free when a peer disconnects or
/// idles out — nothing the queue drain rate can predict — so the hint is
/// a polite back-off floor rather than a measurement.
pub const CONNECTIONS_RETRY_AFTER_MS: u64 = 100;

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    turned_away: AtomicU64,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    stats_requests: AtomicU64,
    open_connections: AtomicUsize,
}

/// Snapshot of a [`NetServer`]'s counters plus the inner serving stats.
#[derive(Debug, Clone, PartialEq)]
pub struct NetStats {
    /// TCP connections accepted (admitted or shed).
    pub accepted: u64,
    /// Connections shed because the reactor was at `max_connections`.
    pub turned_away: u64,
    /// Inference requests received over the wire.
    pub requests: u64,
    /// Connections terminated for violating the frame protocol.
    pub protocol_errors: u64,
    /// STATS requests served (framed or plaintext).
    pub stats_requests: u64,
    /// Connections the reactor currently owns.
    pub open_connections: u64,
    /// `false` once the reactor thread has exited — normally (shutdown) or
    /// abnormally (a reactor panic).  A supervisor that sees this `false`
    /// on a server it has not shut down knows the front-end is dead even
    /// though the process is alive; see [`NetServer::is_healthy`].
    pub reactor_alive: bool,
    /// The inner [`StreamServer`] statistics (completed, rejected, queue
    /// snapshot, per-unit utilisation, ...).
    pub server: ServerStats,
}

struct NetShared {
    server: StreamServer,
    options: NetOptions,
    shutdown: AtomicBool,
    /// Cleared by the reactor thread's drop guard on *any* exit path —
    /// clean shutdown or panic — so health checks never dangle on a dead
    /// event loop.
    reactor_alive: AtomicBool,
    counters: Counters,
    wake: Arc<WakePipe>,
}

/// Flips [`NetShared::reactor_alive`] when the reactor thread exits, even
/// by unwinding: the guard lives on the reactor's stack, so a panic
/// anywhere in the event loop still reports the death.
struct ReactorAliveGuard(Arc<NetShared>);

impl Drop for ReactorAliveGuard {
    fn drop(&mut self) {
        self.0.reactor_alive.store(false, Ordering::Release);
    }
}

/// A listening TCP serving front-end.  See the module docs.
#[derive(Debug)]
pub struct NetServer {
    shared: Arc<NetShared>,
    reactor: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl std::fmt::Debug for NetShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetShared")
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Compiles `model`, binds `addr` (use port `0` for an ephemeral port)
    /// and starts the reactor.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamServer::start_with`] errors (invalid options,
    /// unmappable model), rejects `max_connections == 0` with a typed
    /// [`snn_accel::AccelError::InvalidConfig`], and propagates socket /
    /// pipe errors.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        config: AcceleratorConfig,
        model: SnnModel,
        options: NetOptions,
    ) -> Result<Self, NetError> {
        if options.max_connections == 0 {
            return Err(NetError::Accel(AccelError::InvalidConfig {
                context: "NetOptions::max_connections is 0: every connection would be shed"
                    .to_string(),
            }));
        }
        let server = StreamServer::start_with(config, model, options.server)?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let wake = Arc::new(WakePipe::new()?);
        let shared = Arc::new(NetShared {
            server,
            options,
            shutdown: AtomicBool::new(false),
            reactor_alive: AtomicBool::new(true),
            counters: Counters::default(),
            wake: Arc::clone(&wake),
        });
        let completion_wake = Arc::clone(&wake);
        let (sink, completions) = CompletionSink::new(Arc::new(move || completion_wake.wake()));
        // The reactor is the front-end's only thread; it blocks in poll(2),
        // not on a core, so it draws an IO lease rather than compute budget
        // (the StreamServer dispatcher is accounted the same way).
        let lease = snn_parallel::budget().try_lease_io_threads(1);
        let reactor_shared = Arc::clone(&shared);
        let reactor = thread::Builder::new()
            .name("snn-net-reactor".to_string())
            .spawn(move || {
                // The lease (when the budget had one left) lives exactly as
                // long as the reactor thread; the alive guard reports the
                // thread's death on every exit path, panics included.
                let _lease = lease;
                let _alive = ReactorAliveGuard(Arc::clone(&reactor_shared));
                Reactor::new(&reactor_shared, listener, completions, sink).run();
            })?;
        Ok(NetServer {
            shared,
            reactor: Some(reactor),
            local_addr,
        })
    }

    /// The bound address — where clients connect.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the front-end counters and the inner serving stats.
    pub fn stats(&self) -> NetStats {
        let c = &self.shared.counters;
        NetStats {
            accepted: c.accepted.load(Ordering::Relaxed),
            turned_away: c.turned_away.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            stats_requests: c.stats_requests.load(Ordering::Relaxed),
            open_connections: c.open_connections.load(Ordering::Relaxed) as u64,
            reactor_alive: self.shared.reactor_alive.load(Ordering::Acquire),
            server: self.shared.server.stats(),
        }
    }

    /// `true` while the reactor thread is alive, at least one replica
    /// engine is healthy, and the server has not been told to shut down.
    ///
    /// The reactor is the front-end's only thread; if it dies (a panic in
    /// the event loop — inference panics never reach it, they are isolated
    /// inside the dispatcher), no connection will ever be served again
    /// while the process looks healthy from the outside.  Likewise, a
    /// reactor with zero healthy replicas behind it can only reject.  A
    /// *degraded* server — some but not all replicas down — still reports
    /// healthy (the survivors serve); the per-replica stats expose the
    /// degradation.  This is the supervision signal: a monitor that sees
    /// `is_healthy() == false` on a server it did not shut down should
    /// rebuild the front-end.
    pub fn is_healthy(&self) -> bool {
        self.shared.reactor_alive.load(Ordering::Acquire)
            && self.shared.server.healthy_replicas() > 0
            && !self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Gracefully shuts down: stop accepting, drain in-flight requests,
    /// flush replies, join the reactor, and return the final statistics.
    pub fn shutdown(mut self) -> NetStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake.wake();
        // A panicked reactor must not turn shutdown into a panic of its
        // own (or a double-panic abort when this runs from Drop during
        // unwinding): the join error is swallowed and teardown continues.
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------------
// The reactor
// ---------------------------------------------------------------------------

/// Lifecycle of one reactor-owned connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Serving requests.
    Open,
    /// A terminal reply (error / plaintext stats / shed) is queued: flush
    /// the write buffer, then half-close and move to [`ConnState::Linger`].
    Draining,
    /// Write side closed; discard the peer's unread bytes until EOF or the
    /// deadline so the kernel does not RST our last reply away.
    Linger,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// Bytes read but not yet decoded (at most a partial frame after each
    /// processing pass).
    rbuf: Vec<u8>,
    /// Encoded replies not yet accepted by the kernel.
    wbuf: Vec<u8>,
    /// Tagged inferences submitted for this connection and not yet
    /// completed.
    in_flight: usize,
    /// The peer half-closed its sending side; serve what is in flight,
    /// flush, then close.
    peer_eof: bool,
    /// Wall-clock of the last complete request or completion (the idle
    /// clock must not tick while work is in flight).
    last_activity: Instant,
    /// Hard deadline for [`ConnState::Draining`]/[`ConnState::Linger`].
    deadline: Option<Instant>,
    /// Since when the write queue has been non-empty with the kernel
    /// accepting nothing (see [`WRITE_STALL_TIMEOUT`]).
    stalled_since: Option<Instant>,
    /// Total bytes this connection has ever handed to the kernel — the
    /// offset coordinate of `reply_marks`.
    flushed_total: u64,
    /// Write-stall telemetry marks, one per queued SCORES reply: `(byte
    /// offset at which the reply is fully flushed, when it was queued,
    /// trace request id)`.  Appended in completion order, so offsets are
    /// monotone and `flush_step` pops from the front.
    reply_marks: VecDeque<(u64, Instant, u64)>,
    /// Write-queue residencies measured by `flush_step`, waiting for the
    /// reactor to forward them to the span recorder.
    stall_samples: Vec<(u64, f64)>,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            state: ConnState::Open,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            in_flight: 0,
            peer_eof: false,
            last_activity: Instant::now(),
            deadline: None,
            stalled_since: None,
            flushed_total: 0,
            reply_marks: VecDeque::new(),
            stall_samples: Vec::new(),
        }
    }

    /// Queues an encoded reply for the writability path.
    fn queue_frame(&mut self, frame: &Frame) {
        self.wbuf.extend_from_slice(&frame.encode());
    }

    /// Marks the connection terminally answered: finish in-flight work,
    /// flush, half-close, linger, close.  The drain phase gets the full
    /// flush grace (in-flight completions are still landing); the linger
    /// after the half-close is short.
    fn begin_drain(&mut self) {
        if self.state == ConnState::Open {
            self.state = ConnState::Draining;
            self.deadline = Some(Instant::now() + SHUTDOWN_DRAIN_GRACE);
        }
    }

    /// One socket read, routed through the fault injector when the
    /// `fault-injection` feature is armed: short reads truncate the
    /// scratch window to one byte, the error faults never touch the
    /// socket.  Release builds compile down to the plain `read`.
    fn socket_read(&mut self, scratch: &mut [u8]) -> io::Result<usize> {
        #[cfg(feature = "fault-injection")]
        {
            use crate::fault::IoFault;
            match crate::fault::read_fault() {
                IoFault::None => self.stream.read(scratch),
                IoFault::Short => self.stream.read(&mut scratch[..1]),
                IoFault::WouldBlock => Err(io::Error::from(ErrorKind::WouldBlock)),
                IoFault::Interrupted => Err(io::Error::from(ErrorKind::Interrupted)),
                IoFault::Reset => Err(io::Error::from(ErrorKind::ConnectionReset)),
            }
        }
        #[cfg(not(feature = "fault-injection"))]
        self.stream.read(scratch)
    }

    /// One socket write, routed through the fault injector exactly like
    /// [`Conn::socket_read`] (short writes offer the kernel one byte).
    fn socket_write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        #[cfg(feature = "fault-injection")]
        {
            use crate::fault::IoFault;
            match crate::fault::write_fault() {
                IoFault::None => self.stream.write(bytes),
                IoFault::Short => self.stream.write(&bytes[..1]),
                IoFault::WouldBlock => Err(io::Error::from(ErrorKind::WouldBlock)),
                IoFault::Interrupted => Err(io::Error::from(ErrorKind::Interrupted)),
                IoFault::Reset => Err(io::Error::from(ErrorKind::ConnectionReset)),
            }
        }
        #[cfg(not(feature = "fault-injection"))]
        self.stream.write(bytes)
    }

    /// Non-blocking read burst into the read buffer (discarded on non-Open
    /// states, where only EOF matters).  Returns `true` when the
    /// connection is dead and must be closed.
    fn read_step(&mut self) -> bool {
        let discard = self.state != ConnState::Open;
        let mut scratch = [0u8; 8192];
        let mut total = 0usize;
        loop {
            match self.socket_read(&mut scratch) {
                Ok(0) => {
                    self.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    if !discard {
                        self.rbuf.extend_from_slice(&scratch[..n]);
                    }
                    total += n;
                    // Fairness: leave the rest in the kernel buffer and
                    // let the socket poll readable again next round.
                    if total >= READ_BURST {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
        // EOF during a linger means the peer has nothing more in flight
        // that a close could RST away.
        self.peer_eof && self.state != ConnState::Open
    }

    /// Writes as much queued reply data as the kernel accepts.  Returns
    /// `true` when the connection is dead and must be closed.
    fn flush_step(&mut self) -> bool {
        let mut wrote = 0usize;
        while !self.wbuf.is_empty() {
            let queued = std::mem::take(&mut self.wbuf);
            let result = self.socket_write(&queued);
            self.wbuf = queued;
            match result {
                Ok(0) => return true,
                Ok(n) => {
                    self.wbuf.drain(..n);
                    wrote += n;
                    self.flushed_total += n as u64;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
        // Write-stall telemetry: a reply whose last byte the kernel has now
        // accepted spent its whole queue residency in this buffer — sample
        // it for the recorder (the reactor forwards after each flush).
        while let Some(&(target, queued_at, request_id)) = self.reply_marks.front() {
            if target > self.flushed_total {
                break;
            }
            self.reply_marks.pop_front();
            self.stall_samples
                .push((request_id, queued_at.elapsed().as_secs_f64()));
        }
        // Write-stall clock: runs while bytes are queued and the kernel
        // accepts none of them, restarts on any progress.
        if self.wbuf.is_empty() {
            self.stalled_since = None;
        } else if wrote > 0 || self.stalled_since.is_none() {
            self.stalled_since = Some(Instant::now());
        }
        if self.wbuf.len() > MAX_WRITE_BUFFER {
            // The peer has stopped reading; buffering further replies for
            // it would trade one slow socket for unbounded memory.
            return true;
        }
        if self.wbuf.is_empty() && self.in_flight == 0 && self.state == ConnState::Draining {
            // Every reply flushed: half-close and linger briefly so the
            // FIN (not an RST) is what the peer observes after our last
            // frame.
            let _ = self.stream.shutdown(Shutdown::Write);
            self.state = ConnState::Linger;
            self.deadline = Some(Instant::now() + CLOSE_LINGER);
            if self.peer_eof {
                return true;
            }
        }
        false
    }

    /// Which poll events this connection currently needs.
    fn events(&self) -> i16 {
        let mut events = 0;
        // Reads stay registered on non-Open states too: draining the
        // peer's backlog prevents an RST from destroying the queued reply.
        if !self.peer_eof {
            events |= POLLIN;
        }
        if !self.wbuf.is_empty() {
            events |= POLLOUT;
        }
        events
    }
}

/// A submitted-but-uncompleted inference: which connection asked, under
/// which wire request id.
struct Pending {
    token: u64,
    request_id: u64,
}

struct Reactor<'a> {
    shared: &'a Arc<NetShared>,
    listener: TcpListener,
    completions: mpsc::Receiver<Completion>,
    sink: CompletionSink,
    conns: HashMap<u64, Conn>,
    /// Tag of every in-flight tagged submission → its origin.
    pending: HashMap<u64, Pending>,
    next_token: u64,
    next_tag: u64,
    /// Set once when a shutdown is observed: already-buffered complete
    /// frames are submitted one final time, then reads stop.
    drain_started: bool,
}

impl<'a> Reactor<'a> {
    fn new(
        shared: &'a Arc<NetShared>,
        listener: TcpListener,
        completions: mpsc::Receiver<Completion>,
        sink: CompletionSink,
    ) -> Self {
        Reactor {
            shared,
            listener,
            completions,
            sink,
            conns: HashMap::new(),
            pending: HashMap::new(),
            next_token: 0,
            next_tag: 0,
            drain_started: false,
        }
    }

    fn run(mut self) {
        let mut drain_deadline: Option<Instant> = None;
        loop {
            let draining = self.shared.shutdown.load(Ordering::Acquire);
            if draining {
                if !self.drain_started {
                    self.drain_started = true;
                    drain_deadline = Some(Instant::now() + SHUTDOWN_DRAIN_GRACE);
                    // Serve every complete frame already read off a socket,
                    // then stop reading: accepted work drains, new work is
                    // no longer admitted.
                    let tokens: Vec<u64> = self.conns.keys().copied().collect();
                    for token in tokens {
                        self.process_rbuf(token);
                    }
                }
                let flushed = self.conns.values().all(|conn| conn.wbuf.is_empty());
                if (self.pending.is_empty() && flushed)
                    || drain_deadline.is_some_and(|d| Instant::now() >= d)
                {
                    return;
                }
            }

            // --- build the poll set ----------------------------------
            let mut fds = Vec::with_capacity(2 + self.conns.len());
            fds.push(PollFd::new(self.shared.wake.read_fd(), POLLIN));
            let listener_slot = if draining {
                None
            } else {
                fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
                Some(fds.len() - 1)
            };
            let base = fds.len();
            let mut order: Vec<u64> = Vec::with_capacity(self.conns.len());
            for (&token, conn) in &self.conns {
                let events = if draining {
                    // During shutdown only flushes matter.
                    if conn.wbuf.is_empty() {
                        0
                    } else {
                        POLLOUT
                    }
                } else {
                    conn.events()
                };
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                order.push(token);
            }

            if poll_fds(&mut fds, self.shared.options.poll_interval).is_err() {
                // EINVAL/ENOMEM are not per-connection conditions; back off
                // instead of spinning and try again.
                thread::sleep(self.shared.options.poll_interval);
                continue;
            }

            // --- dispatch readiness ----------------------------------
            if fds[0].has(POLLIN) {
                self.shared.wake.drain();
            }
            // Completions are drained unconditionally: try_recv is cheap
            // and wake coalescing means byte counts carry no information.
            self.drain_completions();
            if let Some(slot) = listener_slot {
                if fds[slot].has(POLLIN) {
                    self.accept_ready();
                }
            }
            for (offset, &token) in order.iter().enumerate() {
                let slot = &fds[base + offset];
                if slot.is_error() {
                    self.close(token);
                    continue;
                }
                if slot.has(POLLOUT) || slot.has(crate::sys::POLLHUP) {
                    self.flush(token);
                }
                if slot.has(POLLIN | crate::sys::POLLHUP) && !draining {
                    self.read_ready(token);
                }
            }
            self.sweep();
        }
    }

    /// Accepts every connection the listener has queued.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.shared
                        .counters
                        .accepted
                        .fetch_add(1, Ordering::Relaxed);
                    self.admit(stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                // Transient accept errors (ECONNABORTED etc.): the next
                // readiness round retries.
                Err(_) => return,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let open = self.open_count();
        let admitted = open < self.shared.options.max_connections;
        if !admitted {
            self.shared
                .counters
                .turned_away
                .fetch_add(1, Ordering::Relaxed);
            // Sheds occupy close-pipeline slots (flush + linger), bounded
            // separately from serving slots; past that bound the stream is
            // simply dropped.
            let draining = self.conns.len() - open;
            if draining >= MAX_SHED_CONNECTIONS {
                return;
            }
        }
        let _ = stream.set_nodelay(true);
        let mut conn = Conn::new(stream);
        if !admitted {
            // Shed without a thread: queue the typed REJECTED frame on the
            // ordinary write path and close once it flushes.
            let snapshot = self.shared.server.queue_snapshot();
            conn.queue_frame(&Frame::Rejected(RejectReply {
                request_id: NO_REQUEST_ID,
                scope: reject_scope::CONNECTIONS,
                queued: open as u64,
                capacity: self.shared.options.max_connections as u64,
                // Slot availability is not predicted by the queue drain
                // rate, so the hint is floored at a polite back-off rather
                // than the near-zero an empty queue would suggest.
                retry_after_ms: snapshot.retry_after_ms().max(CONNECTIONS_RETRY_AFTER_MS),
                drain_rate_mips: drain_rate_mips(&snapshot),
            }));
            conn.begin_drain();
        }
        let token = self.next_token;
        self.next_token += 1;
        self.conns.insert(token, conn);
        if admitted {
            self.shared
                .counters
                .open_connections
                .store(self.open_count(), Ordering::Relaxed);
        }
        self.flush(token);
    }

    /// Admitted (non-shed) connections currently owned.
    fn open_count(&self) -> usize {
        self.conns
            .values()
            .filter(|c| c.state == ConnState::Open)
            .count()
    }

    /// Non-blocking read burst followed by frame processing.
    fn read_ready(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let was_open = conn.state == ConnState::Open;
        if conn.read_step() {
            self.close(token);
            return;
        }
        if was_open {
            self.process_rbuf(token);
        }
    }

    /// Decodes and serves every complete request buffered for `token`.
    fn process_rbuf(&mut self, token: u64) {
        // Disjoint field borrows: the connection map and the pending map
        // are used simultaneously below.
        let Reactor {
            shared,
            conns,
            pending,
            next_tag,
            sink,
            ..
        } = self;
        let Some(conn) = conns.get_mut(&token) else {
            return;
        };
        while conn.state == ConnState::Open {
            match probe_plaintext(&conn.rbuf) {
                PlaintextProbe::Stats { consumed } => {
                    conn.rbuf.drain(..consumed);
                    shared
                        .counters
                        .stats_requests
                        .fetch_add(1, Ordering::Relaxed);
                    // One-shot scrape, `nc`-style: raw text (no framing),
                    // then close.
                    conn.wbuf
                        .extend_from_slice(render_stats(shared, stats_format::TEXT).as_bytes());
                    conn.begin_drain();
                    break;
                }
                PlaintextProbe::Traces { consumed } => {
                    conn.rbuf.drain(..consumed);
                    shared
                        .counters
                        .stats_requests
                        .fetch_add(1, Ordering::Relaxed);
                    // One-shot JSONL trace dump, also `nc`-style; draining
                    // is destructive, so each scrape returns fresh traces.
                    conn.wbuf
                        .extend_from_slice(render_stats(shared, stats_format::TRACES).as_bytes());
                    conn.begin_drain();
                    break;
                }
                PlaintextProbe::NeedMore => break,
                PlaintextProbe::NotStats => {}
            }
            match Frame::decode(&conn.rbuf) {
                Ok(Some((frame, used))) => {
                    conn.rbuf.drain(..used);
                    handle_frame(shared, conn, pending, next_tag, sink, token, frame);
                    conn.last_activity = Instant::now();
                }
                Ok(None) => break,
                Err(err) => {
                    shared
                        .counters
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    conn.queue_frame(&Frame::Error(ErrorReply {
                        request_id: NO_REQUEST_ID,
                        code: error_code::PROTOCOL,
                        message: err.to_string(),
                    }));
                    conn.rbuf.clear();
                    conn.begin_drain();
                    break;
                }
            }
        }
        self.flush(token);
    }

    /// Hands every settled inference back to its connection, in completion
    /// order.
    fn drain_completions(&mut self) {
        while let Ok(completion) = self.completions.try_recv() {
            let Some(origin) = self.pending.remove(&completion.tag) else {
                continue;
            };
            let Some(conn) = self.conns.get_mut(&origin.token) else {
                // The connection died while its inference ran; the result
                // has no reader.
                continue;
            };
            conn.in_flight -= 1;
            conn.last_activity = Instant::now();
            let frame = match completion.result {
                Ok(report) => Frame::Scores(ScoreReply {
                    request_id: origin.request_id,
                    prediction: report.prediction as u32,
                    time_steps: report.time_steps as u32,
                    thread_budget: report.thread_budget as u32,
                    total_cycles: report.total_cycles(),
                    logits: report.logits,
                }),
                // A deadline shed is backpressure, not failure: the reply
                // is a REJECTED frame (scope = deadline) quoting the live
                // queue, so clients retry it exactly like a queue-full.
                Err(AccelError::DeadlineExceeded { .. }) => {
                    let snapshot = self.shared.server.queue_snapshot();
                    Frame::Rejected(RejectReply {
                        request_id: origin.request_id,
                        scope: reject_scope::DEADLINE,
                        queued: snapshot.depth as u64,
                        capacity: snapshot.capacity as u64,
                        retry_after_ms: snapshot.retry_after_ms().max(1),
                        drain_rate_mips: drain_rate_mips(&snapshot),
                    })
                }
                Err(err) => error_reply(origin.request_id, &err),
            };
            conn.queue_frame(&frame);
            // Mark where this reply's last byte sits in the write queue so
            // flush_step can measure its residency — the WriteStall span of
            // the trace keyed by the submission tag.
            if self.shared.server.recorder().enabled() {
                conn.reply_marks.push_back((
                    conn.flushed_total + conn.wbuf.len() as u64,
                    Instant::now(),
                    completion.tag,
                ));
            }
            self.flush(origin.token);
        }
    }

    /// Writes as much queued reply data as the kernel accepts, then
    /// forwards any write-stall samples the flush produced to the span
    /// recorder (amending the already-published traces).
    fn flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let dead = conn.flush_step();
        if !conn.stall_samples.is_empty() {
            let samples = std::mem::take(&mut conn.stall_samples);
            let recorder = self.shared.server.recorder();
            for (request_id, seconds) in samples {
                recorder.record_write_stall(request_id, seconds);
            }
        }
        if dead {
            self.close(token);
        }
    }

    /// Deadline enforcement: idle Open connections, stalled readers,
    /// expired drains and lingers.
    fn sweep(&mut self) {
        let now = Instant::now();
        let idle = self.shared.options.idle_timeout;
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| {
                // A reader whose kernel buffer has refused every byte for
                // the whole stall window is gone, whatever the state.
                let stalled = conn
                    .stalled_since
                    .is_some_and(|since| now.duration_since(since) >= WRITE_STALL_TIMEOUT);
                stalled
                    || match conn.state {
                        ConnState::Open => {
                            let idle_out = conn.in_flight == 0
                                && conn.wbuf.is_empty()
                                && now.duration_since(conn.last_activity) >= idle;
                            // A peer that half-closed and has nothing in
                            // flight or unflushed is simply finished.
                            let finished =
                                conn.peer_eof && conn.in_flight == 0 && conn.wbuf.is_empty();
                            idle_out || finished
                        }
                        ConnState::Draining | ConnState::Linger => {
                            conn.deadline.is_some_and(|deadline| now >= deadline)
                        }
                    }
            })
            .map(|(&token, _)| token)
            .collect();
        for token in expired {
            self.close(token);
        }
    }

    fn close(&mut self, token: u64) {
        if self.conns.remove(&token).is_some() {
            self.shared
                .counters
                .open_connections
                .store(self.open_count(), Ordering::Relaxed);
        }
        // Stale `pending` entries for this token self-clean: their
        // completions arrive, find no connection, and are dropped.
    }
}

/// Serves one decoded client frame (reads already done, writes queued).
fn handle_frame(
    shared: &NetShared,
    conn: &mut Conn,
    pending: &mut HashMap<u64, Pending>,
    next_tag: &mut u64,
    sink: &CompletionSink,
    token: u64,
    frame: Frame,
) {
    match frame {
        Frame::Infer(request) => {
            shared.counters.requests.fetch_add(1, Ordering::Relaxed);
            let request_id = request.request_id;
            let deadline = request
                .deadline_ms
                .map(|ms| Duration::from_millis(u64::from(ms)));
            let tensor = match request.into_tensor() {
                Ok(tensor) => tensor,
                Err(err) => {
                    conn.queue_frame(&Frame::Error(ErrorReply {
                        request_id,
                        code: error_code::BAD_REQUEST,
                        message: err.to_string(),
                    }));
                    return;
                }
            };
            let tag = *next_tag;
            *next_tag += 1;
            match shared
                .server
                .submit_tagged_within(tensor, tag, sink, deadline)
            {
                Ok(()) => {
                    pending.insert(tag, Pending { token, request_id });
                    conn.in_flight += 1;
                }
                Err(AccelError::QueueFull { queued, capacity }) => {
                    let snapshot = shared.server.queue_snapshot();
                    conn.queue_frame(&Frame::Rejected(RejectReply {
                        request_id,
                        scope: reject_scope::QUEUE,
                        queued: queued as u64,
                        capacity: capacity as u64,
                        retry_after_ms: snapshot.retry_after_ms().max(1),
                        drain_rate_mips: drain_rate_mips(&snapshot),
                    }));
                }
                Err(err) => {
                    let reply = error_reply(request_id, &err);
                    let shutting_down = matches!(
                        &reply,
                        Frame::Error(ErrorReply { code, .. }) if *code == error_code::SHUTTING_DOWN
                    );
                    conn.queue_frame(&reply);
                    if shutting_down {
                        conn.begin_drain();
                    }
                }
            }
        }
        Frame::StatsRequest { format } => {
            shared
                .counters
                .stats_requests
                .fetch_add(1, Ordering::Relaxed);
            conn.queue_frame(&Frame::StatsText(render_stats(shared, format)));
        }
        // Server-bound traffic may only be requests.
        Frame::Scores(_) | Frame::Rejected(_) | Frame::Error(_) | Frame::StatsText(_) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            conn.queue_frame(&Frame::Error(ErrorReply {
                request_id: NO_REQUEST_ID,
                code: error_code::PROTOCOL,
                message: "unexpected server-bound frame".to_string(),
            }));
            conn.begin_drain();
        }
    }
}

fn drain_rate_mips(snapshot: &QueueSnapshot) -> u64 {
    (snapshot.drain_rate_ips * 1000.0).round().max(0.0) as u64
}

fn error_reply(request_id: u64, err: &AccelError) -> Frame {
    let code = match err {
        AccelError::Serving { .. } => error_code::SHUTTING_DOWN,
        // The engine panicked on this one request; the panic was isolated
        // inside the dispatcher and the server keeps serving — the code
        // tells the client the input is poison, not the server.
        AccelError::EnginePanic { .. } => error_code::ENGINE_PANIC,
        // The replica this request was placed on died before serving it;
        // siblings keep serving, so the client should resubmit and let the
        // router place the retry on a healthy replica.
        AccelError::ReplicaDown { .. } => error_code::REPLICA_DOWN,
        _ => error_code::BAD_REQUEST,
    };
    Frame::Error(ErrorReply {
        request_id,
        code,
        message: err.to_string(),
    })
}

/// Renders the serving counters in the negotiated [`stats_format`] — the
/// body of the framed STATS reply; the plaintext form also answers the
/// `nc`-style `STATS` line and the traces form the `TRACES` line.
fn render_stats(shared: &NetShared, format: u8) -> String {
    match format {
        stats_format::PROMETHEUS => render_stats_prometheus(shared),
        // Destructive drain of the completed-trace ring, one JSON object
        // per line.
        stats_format::TRACES => shared.server.recorder().render_jsonl(),
        _ => render_stats_text(shared),
    }
}

fn render_stats_text(shared: &NetShared) -> String {
    let server = shared.server.stats();
    let c = &shared.counters;
    let mut out = String::new();
    out.push_str(&format!(
        "snn_net_protocol_version: {}\n",
        crate::protocol::VERSION
    ));
    out.push_str(&format!("completed: {}\n", server.completed));
    out.push_str(&format!("errors: {}\n", server.errors));
    out.push_str(&format!("panics: {}\n", server.panics));
    out.push_str(&format!("rejected: {}\n", server.rejected));
    out.push_str(&format!("deadline_sheds: {}\n", server.deadline_sheds));
    out.push_str(&format!(
        "reactor_alive: {}\n",
        u8::from(shared.reactor_alive.load(Ordering::Acquire))
    ));
    out.push_str(&format!("replicas: {}\n", server.replicas));
    out.push_str(&format!("replicas_healthy: {}\n", server.healthy_replicas));
    out.push_str(&format!("batches: {}\n", server.batches));
    out.push_str(&format!("largest_batch: {}\n", server.largest_batch));
    out.push_str(&format!("queue_depth: {}\n", server.queue.depth));
    out.push_str(&format!("queue_capacity: {}\n", server.queue.capacity));
    out.push_str(&format!(
        "drain_rate_ips: {:.3}\n",
        server.queue.drain_rate_ips
    ));
    out.push_str(&format!("throughput_ips: {:.3}\n", server.throughput_ips()));
    out.push_str(&format!("thread_budget: {}\n", server.thread_budget));
    out.push_str(&format!(
        "connections_accepted: {}\n",
        c.accepted.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "connections_turned_away: {}\n",
        c.turned_away.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "connections_open: {}\n",
        c.open_connections.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "connections_max: {}\n",
        shared.options.max_connections
    ));
    out.push_str(&format!(
        "requests: {}\n",
        c.requests.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "protocol_errors: {}\n",
        c.protocol_errors.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "stats_requests: {}\n",
        c.stats_requests.load(Ordering::Relaxed)
    ));
    let recorder = shared.server.recorder();
    out.push_str(&format!("trace_open_spans: {}\n", recorder.open_spans()));
    for (key, histogram) in [
        (
            "request_queue_wait_seconds",
            recorder.queue_wait_histogram(),
        ),
        ("request_compute_seconds", recorder.compute_histogram()),
        ("request_duration_seconds", recorder.duration_histogram()),
        (
            "reactor_write_stall_seconds",
            recorder.write_stall_histogram(),
        ),
    ] {
        out.push_str(&format!("{key}_count: {}\n", histogram.count()));
        out.push_str(&format!("{key}_sum: {}\n", histogram.sum()));
    }
    for replica in &server.per_replica {
        out.push_str(&format!(
            "replica[{}]: healthy={} completed={} errors={} batches={} largest_batch={} \
             panics={} deadline_sheds={} queue_depth={} drain_rate_ips={:.3}\n",
            replica.index,
            u8::from(replica.healthy),
            replica.completed,
            replica.errors,
            replica.batches,
            replica.largest_batch,
            replica.panics,
            replica.deadline_sheds,
            replica.queue.depth,
            replica.queue.drain_rate_ips
        ));
    }
    for unit in &server.utilisation {
        out.push_str(&format!(
            "unit[{:?}]: units={} busy_cycles={} total_cycles={} utilisation={:.4}\n",
            unit.kind,
            unit.units,
            unit.busy_cycles,
            unit.total_cycles,
            unit.utilisation()
        ));
    }
    out
}

/// Prometheus exposition: `# TYPE` metadata plus `snn_`-prefixed metric
/// names, one sample per line — directly scrapeable.
fn render_stats_prometheus(shared: &NetShared) -> String {
    let server = shared.server.stats();
    let c = &shared.counters;
    let mut out = String::new();
    let mut metric = |name: &str, kind: &str, value: String| {
        out.push_str(&format!("# TYPE {name} {kind}\n{name} {value}\n"));
    };
    metric(
        "snn_net_protocol_version",
        "gauge",
        crate::protocol::VERSION.to_string(),
    );
    metric(
        "snn_completed_total",
        "counter",
        server.completed.to_string(),
    );
    metric("snn_errors_total", "counter", server.errors.to_string());
    metric("snn_panics_total", "counter", server.panics.to_string());
    metric("snn_rejected_total", "counter", server.rejected.to_string());
    metric(
        "snn_deadline_sheds_total",
        "counter",
        server.deadline_sheds.to_string(),
    );
    metric(
        "snn_reactor_alive",
        "gauge",
        u8::from(shared.reactor_alive.load(Ordering::Acquire)).to_string(),
    );
    metric("snn_replicas", "gauge", server.replicas.to_string());
    metric(
        "snn_replicas_healthy",
        "gauge",
        server.healthy_replicas.to_string(),
    );
    metric("snn_batches_total", "counter", server.batches.to_string());
    metric(
        "snn_largest_batch",
        "gauge",
        server.largest_batch.to_string(),
    );
    metric("snn_queue_depth", "gauge", server.queue.depth.to_string());
    metric(
        "snn_queue_capacity",
        "gauge",
        server.queue.capacity.to_string(),
    );
    metric(
        "snn_drain_rate_ips",
        "gauge",
        format!("{:.3}", server.queue.drain_rate_ips),
    );
    metric(
        "snn_throughput_ips",
        "gauge",
        format!("{:.3}", server.throughput_ips()),
    );
    metric(
        "snn_thread_budget",
        "gauge",
        server.thread_budget.to_string(),
    );
    metric(
        "snn_connections_accepted_total",
        "counter",
        c.accepted.load(Ordering::Relaxed).to_string(),
    );
    metric(
        "snn_connections_turned_away_total",
        "counter",
        c.turned_away.load(Ordering::Relaxed).to_string(),
    );
    metric(
        "snn_connections_open",
        "gauge",
        c.open_connections.load(Ordering::Relaxed).to_string(),
    );
    metric(
        "snn_connections_max",
        "gauge",
        shared.options.max_connections.to_string(),
    );
    metric(
        "snn_requests_total",
        "counter",
        c.requests.load(Ordering::Relaxed).to_string(),
    );
    metric(
        "snn_protocol_errors_total",
        "counter",
        c.protocol_errors.load(Ordering::Relaxed).to_string(),
    );
    metric(
        "snn_stats_requests_total",
        "counter",
        c.stats_requests.load(Ordering::Relaxed).to_string(),
    );
    metric(
        "snn_trace_open_spans",
        "gauge",
        shared.server.recorder().open_spans().to_string(),
    );
    for (name, kind, pick) in [
        (
            "snn_replica_healthy",
            "gauge",
            Box::new(|r: &snn_accel::serve::ReplicaStats| u8::from(r.healthy).to_string())
                as Box<dyn Fn(&snn_accel::serve::ReplicaStats) -> String>,
        ),
        (
            "snn_replica_completed_total",
            "counter",
            Box::new(|r| r.completed.to_string()),
        ),
        (
            "snn_replica_errors_total",
            "counter",
            Box::new(|r| r.errors.to_string()),
        ),
        (
            "snn_replica_batches_total",
            "counter",
            Box::new(|r| r.batches.to_string()),
        ),
        (
            "snn_replica_largest_batch",
            "gauge",
            Box::new(|r| r.largest_batch.to_string()),
        ),
        (
            "snn_replica_panics_total",
            "counter",
            Box::new(|r| r.panics.to_string()),
        ),
        (
            "snn_replica_deadline_sheds_total",
            "counter",
            Box::new(|r| r.deadline_sheds.to_string()),
        ),
        (
            "snn_replica_queue_depth",
            "gauge",
            Box::new(|r| r.queue.depth.to_string()),
        ),
        (
            "snn_replica_drain_rate_ips",
            "gauge",
            Box::new(|r| format!("{:.3}", r.queue.drain_rate_ips)),
        ),
    ] {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        for replica in &server.per_replica {
            out.push_str(&format!(
                "{name}{{replica=\"{}\"}} {}\n",
                replica.index,
                pick(replica)
            ));
        }
    }
    for (name, kind, pick) in [
        (
            "snn_unit_count",
            "gauge",
            Box::new(|u: &snn_accel::report::UnitUtilisation| u.units.to_string())
                as Box<dyn Fn(&snn_accel::report::UnitUtilisation) -> String>,
        ),
        (
            "snn_unit_busy_cycles",
            "gauge",
            Box::new(|u| u.busy_cycles.to_string()),
        ),
        (
            "snn_unit_total_cycles",
            "gauge",
            Box::new(|u| u.total_cycles.to_string()),
        ),
        (
            "snn_unit_utilisation",
            "gauge",
            Box::new(|u| format!("{:.4}", u.utilisation())),
        ),
    ] {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        for unit in &server.utilisation {
            out.push_str(&format!(
                "{name}{{unit=\"{:?}\"}} {}\n",
                unit.kind,
                pick(unit)
            ));
        }
    }
    // Per-request latency histograms (queue wait, compute, end-to-end
    // duration, reactor write-stall) from the span recorder.
    shared.server.recorder().render_prometheus_into(&mut out);
    out
}
