//! The error type shared by the `snn-net` server and client.

use crate::protocol::{ProtocolError, RejectReply};
use snn_accel::AccelError;
use std::fmt;
use std::io;

/// Anything that can go wrong speaking the `snn-net` protocol.
#[derive(Debug)]
pub enum NetError {
    /// A socket-level failure.
    Io(io::Error),
    /// The byte stream violated the frame protocol.
    Protocol(ProtocolError),
    /// The server shed this request under load; carries the typed
    /// [`RejectReply`] with its retry-after hint.  This is backpressure,
    /// not failure — see [`NetError::is_backpressure`].
    Rejected(RejectReply),
    /// The server answered with an error reply.
    Remote {
        /// Machine-readable cause (see [`crate::protocol::error_code`]).
        code: u16,
        /// Human-readable description from the server.
        message: String,
    },
    /// A local accelerator error (server-side construction, model
    /// compilation, ...).
    Accel(AccelError),
    /// No reply arrived within the client's reply timeout.  Distinct from
    /// [`NetError::Io`] so callers can retry *deliberately*: the request
    /// may still complete server-side, so the connection is poisoned (the
    /// late reply could desynchronise the stream) and the retry must go
    /// out on a fresh connection — which
    /// [`crate::client::NetClient::infer_with_retry`] does.
    Timeout {
        /// How long the client waited before giving up.
        waited: std::time::Duration,
    },
    /// The peer closed the connection mid-exchange.
    Disconnected,
    /// A previous exchange on this connection failed mid-flight, so the
    /// stream may carry a stale reply that cannot be paired with its
    /// request any more; reconnect instead of reusing the client.
    Poisoned,
}

impl NetError {
    /// Whether this error is load shedding with a retry hint rather than a
    /// failure (mirrors [`AccelError::is_backpressure`] across the wire).
    pub fn is_backpressure(&self) -> bool {
        matches!(self, NetError::Rejected(_))
    }

    /// The server's retry-after hint in milliseconds, when this is a
    /// backpressure rejection.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            NetError::Rejected(reply) => Some(reply.retry_after_ms),
            _ => None,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Protocol(e) => write!(f, "protocol error: {e}"),
            NetError::Rejected(reply) => write!(
                f,
                "rejected under load (scope {}, {}/{} in use): retry after {} ms",
                reply.scope, reply.queued, reply.capacity, reply.retry_after_ms
            ),
            NetError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            NetError::Accel(e) => write!(f, "accelerator error: {e}"),
            NetError::Timeout { waited } => write!(
                f,
                "no reply within {} ms; the connection is poisoned — reconnect to retry",
                waited.as_millis()
            ),
            NetError::Disconnected => write!(f, "peer closed the connection mid-exchange"),
            NetError::Poisoned => write!(
                f,
                "connection poisoned by an earlier failed exchange; reconnect"
            ),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Protocol(e) => Some(e),
            NetError::Accel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<ProtocolError> for NetError {
    fn from(e: ProtocolError) -> Self {
        NetError::Protocol(e)
    }
}

impl From<AccelError> for NetError {
    fn from(e: AccelError) -> Self {
        NetError::Accel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejection_is_backpressure_with_a_hint() {
        let err = NetError::Rejected(RejectReply {
            request_id: 3,
            scope: crate::protocol::reject_scope::QUEUE,
            queued: 4,
            capacity: 4,
            retry_after_ms: 25,
            drain_rate_mips: 1000,
        });
        assert!(err.is_backpressure());
        assert_eq!(err.retry_after_ms(), Some(25));
        assert!(err.to_string().contains("retry after 25 ms"));
    }

    #[test]
    fn other_errors_are_not_backpressure() {
        let err = NetError::Remote {
            code: 1,
            message: "bad shape".into(),
        };
        assert!(!err.is_backpressure());
        assert_eq!(err.retry_after_ms(), None);
        assert!(NetError::Disconnected.to_string().contains("closed"));
    }

    #[test]
    fn timeouts_are_typed_not_backpressure_and_name_the_wait() {
        let err = NetError::Timeout {
            waited: std::time::Duration::from_millis(1500),
        };
        assert!(!err.is_backpressure(), "a timeout carries no retry hint");
        assert_eq!(err.retry_after_ms(), None);
        let text = err.to_string();
        assert!(text.contains("1500 ms"), "wait surfaced: {text}");
        assert!(text.contains("reconnect"), "recovery action named: {text}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
