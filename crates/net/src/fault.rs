//! Seeded, process-global fault injection for the serving stack — the
//! chaos half of the supervision story (compiled only with the
//! `fault-injection` feature; release builds carry none of this).
//!
//! A [`FaultPlan`] describes *rates* (per-mille probabilities) for each
//! fault class; [`install`] arms one plan process-wide and the hooks
//! threaded through [`crate::sys`] and the reactor's connection I/O paths
//! consult it on every call.  Decisions are drawn from a single seeded
//! [`StdRng`], so a given seed produces the same decision *sequence* —
//! chaos schedules are reproducible up to thread interleaving, which is
//! exactly the level a robustness invariant must hold at anyway.
//!
//! Injected faults and their recovery contracts:
//!
//! * **Short reads/writes** — one byte instead of a burst; the incremental
//!   frame decoder and the write queue must reassemble.
//! * **`EAGAIN` storms** — spurious `WouldBlock` on a ready socket; the
//!   level-triggered poll re-reports readiness next round.
//! * **`EINTR`** — spurious `Interrupted`; the I/O loops retry in place.
//! * **`ECONNRESET`** — the connection dies; *that* connection's requests
//!   fail, every other connection and the server itself keep serving.
//! * **Delayed readiness** — [`crate::sys::poll_fds`] reports a timeout
//!   without consulting the kernel (also models `EINTR` at the poll site).
//! * **Dropped wake-pipe bytes** — the dispatcher's wake never lands; the
//!   reactor's unconditional completion drain plus the bounded poll
//!   interval must still deliver every reply.
//!
//! Rates are clamped to [`MAX_PERMILLE`] at install so no fault class can
//! starve progress outright (a permanently-spinning poll or an I/O path
//! that never executes a real syscall).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Upper clamp on every [`FaultPlan`] rate: at most one fault per two
/// calls on any hook, so every injected-fault loop terminates with
/// probability one and expected constant retries.
pub const MAX_PERMILLE: u16 = 500;

/// Per-mille rates for each injectable fault class, plus the RNG seed.
///
/// All rates are clamped to [`MAX_PERMILLE`] when the plan is
/// [`install`]ed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the decision RNG.
    pub seed: u64,
    /// Rate of truncating a socket read to one byte.
    pub short_read_permille: u16,
    /// Rate of truncating a socket write to one byte.
    pub short_write_permille: u16,
    /// Rate of injecting `WouldBlock` on socket I/O (EAGAIN storm).
    pub eagain_permille: u16,
    /// Rate of injecting `Interrupted` on socket I/O (EINTR).
    pub eintr_permille: u16,
    /// Rate of injecting `ConnectionReset` on socket I/O — the one
    /// *unrecoverable* (per-connection) fault class; keep it at `0` for
    /// bit-exactness schedules.
    pub reset_permille: u16,
    /// Rate of a `poll` returning a spurious timeout without consulting
    /// the kernel (delayed readiness / poll-level EINTR).
    pub spurious_wake_permille: u16,
    /// Rate of silently dropping a wake-pipe byte.
    pub drop_wake_permille: u16,
}

impl FaultPlan {
    /// A plan that injects nothing (rates all zero) — installing it is
    /// equivalent to [`clear`] except the hooks still count calls.
    pub fn calm(seed: u64) -> Self {
        FaultPlan {
            seed,
            short_read_permille: 0,
            short_write_permille: 0,
            eagain_permille: 0,
            eintr_permille: 0,
            reset_permille: 0,
            spurious_wake_permille: 0,
            drop_wake_permille: 0,
        }
    }

    /// A plan of **recoverable** faults only (no resets): aggressive rates
    /// of short I/O, EAGAIN, EINTR, delayed readiness and dropped wakes.
    /// Under this plan every request must still resolve bit-exactly — the
    /// chaos suite's core schedule.
    pub fn recoverable(seed: u64) -> Self {
        FaultPlan {
            seed,
            short_read_permille: 250,
            short_write_permille: 250,
            eagain_permille: 150,
            eintr_permille: 100,
            reset_permille: 0,
            spurious_wake_permille: 200,
            drop_wake_permille: 300,
        }
    }

    /// Adds connection resets to this plan (destructive per-connection
    /// faults; requests on a reset connection may fail with transport
    /// errors, but the server must keep serving).
    pub fn with_resets(mut self, permille: u16) -> Self {
        self.reset_permille = permille;
        self
    }

    fn clamped(mut self) -> Self {
        self.short_read_permille = self.short_read_permille.min(MAX_PERMILLE);
        self.short_write_permille = self.short_write_permille.min(MAX_PERMILLE);
        self.eagain_permille = self.eagain_permille.min(MAX_PERMILLE);
        self.eintr_permille = self.eintr_permille.min(MAX_PERMILLE);
        self.reset_permille = self.reset_permille.min(MAX_PERMILLE);
        self.spurious_wake_permille = self.spurious_wake_permille.min(MAX_PERMILLE);
        self.drop_wake_permille = self.drop_wake_permille.min(MAX_PERMILLE);
        self
    }
}

/// What a connection I/O hook tells its call site to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IoFault {
    /// No fault: perform the real syscall.
    None,
    /// Truncate the transfer to one byte.
    Short,
    /// Return `ErrorKind::WouldBlock` without touching the socket.
    WouldBlock,
    /// Return `ErrorKind::Interrupted` without touching the socket.
    Interrupted,
    /// Return `ErrorKind::ConnectionReset`: the connection is dead.
    Reset,
}

struct Injector {
    plan: FaultPlan,
    rng: StdRng,
    injected: u64,
}

impl Injector {
    fn roll(&mut self, permille: u16) -> bool {
        if permille == 0 {
            return false;
        }
        let hit = self.rng.gen_range(0u32..1000) < u32::from(permille);
        if hit {
            self.injected += 1;
        }
        hit
    }
}

static ACTIVE: Mutex<Option<Injector>> = Mutex::new(None);

/// Arms `plan` process-wide (rates clamped to [`MAX_PERMILLE`]),
/// replacing any previous plan and resetting the injected-fault counter.
///
/// The injector is global because the reactor runs on its own thread;
/// tests that install different plans must serialise themselves (the
/// chaos suite holds a lock across each schedule).
pub fn install(plan: FaultPlan) {
    let plan = plan.clamped();
    *ACTIVE.lock().expect("fault injector lock") = Some(Injector {
        plan,
        rng: StdRng::seed_from_u64(plan.seed),
        injected: 0,
    });
}

/// Disarms fault injection; every hook becomes a no-op again.
pub fn clear() {
    *ACTIVE.lock().expect("fault injector lock") = None;
}

/// How many faults the active plan has injected since [`install`]
/// (`0` when disarmed) — lets a chaos schedule assert it actually bit.
pub fn injected_count() -> u64 {
    ACTIVE
        .lock()
        .expect("fault injector lock")
        .as_ref()
        .map_or(0, |inj| inj.injected)
}

fn with_injector<T>(default: T, f: impl FnOnce(&mut Injector) -> T) -> T {
    match ACTIVE.lock().expect("fault injector lock").as_mut() {
        Some(injector) => f(injector),
        None => default,
    }
}

fn io_fault(kind: fn(&FaultPlan) -> (u16, u16, u16, u16)) -> IoFault {
    with_injector(IoFault::None, |inj| {
        let (short, eagain, eintr, reset) = kind(&inj.plan);
        // Ordered draws keep the decision sequence a pure function of the
        // seed and the call index.
        if inj.roll(reset) {
            IoFault::Reset
        } else if inj.roll(eagain) {
            IoFault::WouldBlock
        } else if inj.roll(eintr) {
            IoFault::Interrupted
        } else if inj.roll(short) {
            IoFault::Short
        } else {
            IoFault::None
        }
    })
}

/// Consulted by the reactor before every socket read.
pub(crate) fn read_fault() -> IoFault {
    io_fault(|p| {
        (
            p.short_read_permille,
            p.eagain_permille,
            p.eintr_permille,
            p.reset_permille,
        )
    })
}

/// Consulted by the reactor before every socket write.
pub(crate) fn write_fault() -> IoFault {
    io_fault(|p| {
        (
            p.short_write_permille,
            p.eagain_permille,
            p.eintr_permille,
            p.reset_permille,
        )
    })
}

/// Consulted by [`crate::sys::poll_fds`]: `true` means report a spurious
/// timeout without entering the kernel.
pub(crate) fn poll_spurious_wake() -> bool {
    with_injector(false, |inj| {
        let permille = inj.plan.spurious_wake_permille;
        inj.roll(permille)
    })
}

/// Consulted by [`crate::sys::WakePipe::wake`]: `true` means drop the
/// wake byte.
pub(crate) fn drop_wake_byte() -> bool {
    with_injector(false, |inj| {
        let permille = inj.plan.drop_wake_permille;
        inj.roll(permille)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hooks_are_no_ops() {
        clear();
        assert_eq!(read_fault(), IoFault::None);
        assert_eq!(write_fault(), IoFault::None);
        assert!(!poll_spurious_wake());
        assert!(!drop_wake_byte());
        assert_eq!(injected_count(), 0);
    }

    #[test]
    fn rates_are_clamped_and_decisions_are_seed_deterministic() {
        let aggressive = FaultPlan {
            seed: 42,
            short_read_permille: 1000,
            short_write_permille: 1000,
            eagain_permille: 1000,
            eintr_permille: 1000,
            reset_permille: 1000,
            spurious_wake_permille: 1000,
            drop_wake_permille: 1000,
        };
        assert_eq!(aggressive.clamped().eagain_permille, MAX_PERMILLE);
        let sequence = |seed: u64| -> Vec<IoFault> {
            install(FaultPlan::recoverable(seed));
            let seq = (0..64).map(|_| read_fault()).collect();
            clear();
            seq
        };
        assert_eq!(sequence(7), sequence(7), "same seed, same schedule");
        assert_ne!(sequence(7), sequence(8), "different seeds diverge");
    }

    #[test]
    fn recoverable_plans_inject_and_count_without_resets() {
        install(FaultPlan::recoverable(3));
        let mut kinds = Vec::new();
        for _ in 0..500 {
            kinds.push(read_fault());
            kinds.push(write_fault());
        }
        assert!(injected_count() > 0, "aggressive rates must fire");
        assert!(
            !kinds.contains(&IoFault::Reset),
            "recoverable plans never reset"
        );
        assert!(kinds.contains(&IoFault::Short));
        clear();
        assert_eq!(injected_count(), 0);
    }

    #[test]
    fn calm_plans_count_nothing() {
        install(FaultPlan::calm(1));
        for _ in 0..100 {
            assert_eq!(read_fault(), IoFault::None);
            assert!(!poll_spurious_wake());
        }
        assert_eq!(injected_count(), 0);
        clear();
    }
}
