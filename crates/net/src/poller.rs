//! The backend-neutral readiness wrapper the reactor drives: one
//! [`Poller`] per reactor shard, backed by either **epoll with
//! edge-triggered delivery** (the default — O(ready) waits, descriptors
//! registered once) or the scalar **`poll(2)`** fallback (O(registered)
//! waits, interest rebuilt per call).
//!
//! Backend selection ([`ReactorBackend`]):
//!
//! * `SNN_REACTOR=poll` forces the scalar fallback; `SNN_REACTOR=epoll`
//!   requests epoll explicitly (still falling back if `epoll_create1`
//!   fails — an exotic kernel should degrade, not crash the bind).
//! * Unset, the default is epoll with the same graceful fallback.
//!
//! The two backends deliberately expose *identical* event semantics to
//! the reactor ([`Event`]: readable / writable / error, token-keyed), but
//! different **delivery** semantics, which the reactor must respect:
//! [`Poller::edge_triggered`] backends report a readiness transition
//! exactly once, so a consumer that stops reading early (the read-burst
//! fairness cap) must remember the descriptor is still hot — see the
//! reactor's hot-list.  For the level-triggered backend,
//! [`Poller::set_interest`] prunes uninteresting descriptors per wait;
//! for epoll it is a no-op because every descriptor is registered once
//! with the full mask and spurious writability edges are simply cheap.

use crate::sys::{
    poll_fds, Epoll, EpollEvent, PollFd, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT,
    EPOLLRDHUP, POLLHUP, POLLIN, POLLOUT,
};
use std::collections::HashMap;
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Which readiness backend a reactor shard runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReactorBackend {
    /// Consult `SNN_REACTOR` (`poll` / `epoll`), default to epoll, and
    /// fall back to `poll` when `epoll_create1` fails.
    #[default]
    Auto,
    /// Edge-triggered `epoll(7)` (still degrades to `poll` if the kernel
    /// refuses an instance).
    Epoll,
    /// Scalar level-triggered `poll(2)`.
    Poll,
}

impl ReactorBackend {
    /// Parses an `SNN_REACTOR` value; unknown strings mean [`Auto`].
    ///
    /// [`Auto`]: ReactorBackend::Auto
    pub fn from_env_str(value: &str) -> ReactorBackend {
        match value.trim().to_ascii_lowercase().as_str() {
            "poll" => ReactorBackend::Poll,
            "epoll" => ReactorBackend::Epoll,
            _ => ReactorBackend::Auto,
        }
    }

    fn resolve(self) -> ReactorBackend {
        match self {
            ReactorBackend::Auto => match std::env::var("SNN_REACTOR") {
                Ok(value) => match ReactorBackend::from_env_str(&value) {
                    // An unknown env value keeps the default rather than
                    // recursing.
                    ReactorBackend::Auto => ReactorBackend::Epoll,
                    chosen => chosen,
                },
                Err(_) => ReactorBackend::Epoll,
            },
            chosen => chosen,
        }
    }
}

/// What a descriptor's owner wants to hear about.  The epoll backend
/// registers the full mask once and ignores later changes; the poll
/// backend rebuilds its interest set from these per wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Report when reading would not block (or the peer hung up).
    pub readable: bool,
    /// Report when writing would not block.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest (listener, wake pipe).
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest (connections).
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// No interest: the descriptor stays registered but silent (poll
    /// backend only; epoll ignores it).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness report, token-keyed.  A peer hang-up surfaces as both
/// readable and writable (match the historical `poll` reactor dispatch:
/// HUP flushes what it can, then reads the EOF); `error` means the
/// descriptor should be torn down.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The cookie the descriptor was registered under.
    pub token: u64,
    /// Reading would not block (includes hang-ups: the EOF is readable).
    pub readable: bool,
    /// Writing would not block (includes hang-ups: the flush will fail
    /// fast and report the death).
    pub writable: bool,
    /// Error condition — tear the descriptor down.
    pub error: bool,
}

enum Inner {
    Poll {
        /// token → (fd, current interest); rebuilt into a `pollfd` array
        /// on every wait, exactly what the single-reactor loop used to do
        /// inline.
        slots: HashMap<u64, (RawFd, Interest)>,
    },
    Epoll {
        ep: Epoll,
        /// `epoll_wait` output buffer, reused across waits.  Sized well
        /// above the per-shard connection budget; a full buffer is not
        /// lossy anyway (undelivered entries re-report next wait).
        buf: Vec<EpollEvent>,
    },
}

/// A unified readiness selector: register/deregister descriptors under
/// `u64` tokens, wait, iterate [`Event`]s.  See the module docs for the
/// backend contract.
pub struct Poller {
    inner: Inner,
    events: Vec<Event>,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.backend_name())
            .finish_non_exhaustive()
    }
}

const EPOLL_WAIT_CAPACITY: usize = 1024;

impl Poller {
    /// Creates a poller on the requested backend, applying the
    /// `SNN_REACTOR` override and the epoll→poll fallback described in
    /// the module docs.  Infallible: the poll backend needs no kernel
    /// resources at construction.
    pub fn new(backend: ReactorBackend) -> Poller {
        let inner = match backend.resolve() {
            ReactorBackend::Poll => Inner::Poll {
                slots: HashMap::new(),
            },
            // Auto has been resolved away; Epoll degrades on failure.
            _ => match Epoll::new() {
                Ok(ep) => Inner::Epoll {
                    ep,
                    buf: vec![EpollEvent::zeroed(); EPOLL_WAIT_CAPACITY],
                },
                Err(_) => Inner::Poll {
                    slots: HashMap::new(),
                },
            },
        };
        Poller {
            inner,
            events: Vec::new(),
        }
    }

    /// The backend actually in use (after fallback): `"epoll"` or
    /// `"poll"` — exposed in STATS so operators can see what a shard
    /// ended up on.
    pub fn backend_name(&self) -> &'static str {
        match self.inner {
            Inner::Poll { .. } => "poll",
            Inner::Epoll { .. } => "epoll",
        }
    }

    /// Whether readiness is delivered edge-triggered (see module docs for
    /// the consumer obligations).
    pub fn edge_triggered(&self) -> bool {
        matches!(self.inner, Inner::Epoll { .. })
    }

    /// Registers `fd` under `token`.  The epoll backend registers the
    /// full edge-triggered mask regardless of `interest` growing later;
    /// the poll backend stores `interest` as the initial per-wait mask.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures (watch exhaustion, closed fd) —
    /// the caller sheds the connection instead of serving it blind.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.inner {
            Inner::Poll { slots } => {
                slots.insert(token, (fd, interest));
                Ok(())
            }
            Inner::Epoll { ep, .. } => {
                let mut mask = EPOLLET | EPOLLRDHUP;
                if interest.readable {
                    mask |= EPOLLIN;
                }
                if interest.writable {
                    mask |= EPOLLOUT;
                }
                ep.add(fd, mask, token)
            }
        }
    }

    /// Updates what the level-triggered backend asks for on the next
    /// wait.  A no-op on epoll (registered-once, edge-triggered — a
    /// spurious writable edge is cheaper than an `epoll_ctl` per state
    /// flip).
    pub fn set_interest(&mut self, token: u64, interest: Interest) {
        if let Inner::Poll { slots } = &mut self.inner {
            if let Some(slot) = slots.get_mut(&token) {
                slot.1 = interest;
            }
        }
    }

    /// Unregisters `token`/`fd`.  Errors are deliberately swallowed: the
    /// only caller is connection teardown, where the fd is about to be
    /// closed (which unregisters implicitly on epoll anyway).
    pub fn deregister(&mut self, token: u64, fd: RawFd) {
        match &mut self.inner {
            Inner::Poll { slots } => {
                slots.remove(&token);
            }
            Inner::Epoll { ep, .. } => {
                let _ = ep.delete(fd);
            }
        }
    }

    /// Blocks until readiness, timeout, or a (spurious-wake) interrupt,
    /// then returns the events.  Timeout semantics match [`poll_fds`]:
    /// sub-millisecond nonzero timeouts round up to 1 ms, `EINTR` is an
    /// empty return, and with the `fault-injection` feature armed the
    /// spurious-wake hook fires on both backends.
    ///
    /// # Errors
    ///
    /// Propagates non-`EINTR` `poll(2)` / `epoll_wait(2)` failures; the
    /// reactor backs off and retries.
    pub fn wait(&mut self, timeout: Duration) -> io::Result<&[Event]> {
        self.events.clear();
        match &mut self.inner {
            Inner::Poll { slots } => {
                let mut fds = Vec::with_capacity(slots.len());
                let mut order = Vec::with_capacity(slots.len());
                for (&token, &(fd, interest)) in slots.iter() {
                    let mut mask = 0i16;
                    if interest.readable {
                        mask |= POLLIN;
                    }
                    if interest.writable {
                        mask |= POLLOUT;
                    }
                    // Zero-interest slots poll a negative fd: the kernel
                    // ignores them but the registration survives.
                    fds.push(PollFd::new(if mask == 0 { -1 } else { fd }, mask));
                    order.push(token);
                }
                poll_fds(&mut fds, timeout)?;
                for (slot, token) in fds.iter().zip(order) {
                    let readable = slot.has(POLLIN | POLLHUP);
                    let writable = slot.has(POLLOUT | POLLHUP);
                    let error = slot.is_error();
                    if readable || writable || error {
                        self.events.push(Event {
                            token,
                            readable,
                            writable,
                            error,
                        });
                    }
                }
            }
            Inner::Epoll { ep, buf } => {
                let n = ep.wait(buf, timeout)?;
                for record in &buf[..n] {
                    // Copy out of the (packed) record before testing bits.
                    let mask = { record.events };
                    let token = { record.data };
                    let readable = mask & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0;
                    let writable = mask & (EPOLLOUT | EPOLLHUP) != 0;
                    let error = mask & EPOLLERR != 0;
                    if readable || writable || error {
                        self.events.push(Event {
                            token,
                            readable,
                            writable,
                            error,
                        });
                    }
                }
            }
        }
        Ok(&self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sys::WakePipe;

    fn backends() -> Vec<Poller> {
        vec![
            Poller::new(ReactorBackend::Poll),
            Poller::new(ReactorBackend::Epoll),
        ]
    }

    #[test]
    fn explicit_backends_resolve_as_requested() {
        assert_eq!(Poller::new(ReactorBackend::Poll).backend_name(), "poll");
        assert_eq!(Poller::new(ReactorBackend::Epoll).backend_name(), "epoll");
        assert!(Poller::new(ReactorBackend::Epoll).edge_triggered());
        assert!(!Poller::new(ReactorBackend::Poll).edge_triggered());
    }

    #[test]
    fn env_strings_parse_with_auto_fallback() {
        assert_eq!(ReactorBackend::from_env_str("poll"), ReactorBackend::Poll);
        assert_eq!(
            ReactorBackend::from_env_str(" EPOLL "),
            ReactorBackend::Epoll
        );
        assert_eq!(ReactorBackend::from_env_str("kqueue"), ReactorBackend::Auto);
        assert_eq!(ReactorBackend::from_env_str(""), ReactorBackend::Auto);
    }

    /// Both backends: wake → one readable event with the right token;
    /// drain → quiet.  The Poller twin of the sys-level wake tests.
    #[test]
    fn wake_pipe_round_trip_on_both_backends() {
        for mut poller in backends() {
            let pipe = WakePipe::new().unwrap();
            poller.register(pipe.read_fd(), 42, Interest::READ).unwrap();
            assert!(
                poller.wait(Duration::from_millis(10)).unwrap().is_empty(),
                "[{}] idle wait must time out",
                poller.backend_name()
            );
            pipe.wake();
            let events = poller.wait(Duration::from_secs(5)).unwrap();
            assert_eq!(events.len(), 1, "[{}]", poller.backend_name());
            assert_eq!(events[0].token, 42);
            assert!(events[0].readable);
            assert!(!events[0].error);
            pipe.drain();
            assert!(
                poller.wait(Duration::from_millis(10)).unwrap().is_empty(),
                "[{}] drained pipe must be quiet",
                poller.backend_name()
            );
        }
    }

    /// The delivery-semantics divergence, pinned where the reactor can
    /// see it: un-drained readiness re-reports on poll (level) and goes
    /// silent on epoll (edge).
    #[test]
    fn undrained_readiness_rereports_only_on_the_level_backend() {
        for mut poller in backends() {
            let pipe = WakePipe::new().unwrap();
            poller.register(pipe.read_fd(), 1, Interest::READ).unwrap();
            pipe.wake();
            assert_eq!(poller.wait(Duration::from_secs(5)).unwrap().len(), 1);
            let again = poller.wait(Duration::from_millis(20)).unwrap().len();
            if poller.edge_triggered() {
                assert_eq!(again, 0, "edge backend re-reported a consumed edge");
            } else {
                assert_eq!(again, 1, "level backend must re-report pending bytes");
            }
        }
    }

    /// `set_interest` mutes a level-triggered descriptor without
    /// deregistering it; restoring interest restores delivery.  (On epoll
    /// this is specified as a no-op and not exercised.)
    #[test]
    fn set_interest_mutes_and_unmutes_the_poll_backend() {
        let mut poller = Poller::new(ReactorBackend::Poll);
        let pipe = WakePipe::new().unwrap();
        poller.register(pipe.read_fd(), 5, Interest::READ).unwrap();
        pipe.wake();
        poller.set_interest(5, Interest::NONE);
        assert!(
            poller.wait(Duration::from_millis(10)).unwrap().is_empty(),
            "a muted slot must not report"
        );
        poller.set_interest(5, Interest::READ);
        assert_eq!(poller.wait(Duration::from_secs(5)).unwrap().len(), 1);
    }

    #[test]
    fn deregister_silences_both_backends() {
        for mut poller in backends() {
            let pipe = WakePipe::new().unwrap();
            poller.register(pipe.read_fd(), 3, Interest::READ).unwrap();
            pipe.wake();
            poller.deregister(3, pipe.read_fd());
            assert!(
                poller.wait(Duration::from_millis(10)).unwrap().is_empty(),
                "[{}] deregistered fd still reported",
                poller.backend_name()
            );
        }
    }

    #[test]
    fn registering_a_closed_fd_fails_only_where_the_kernel_is_consulted() {
        // epoll validates at registration (EBADF); poll only sees fds at
        // wait time, where a negative fd is a kernel-ignored masked slot —
        // mirroring how the two syscalls actually behave.
        let mut epoll = Poller::new(ReactorBackend::Epoll);
        assert!(epoll.register(-1, 0, Interest::READ).is_err());
        let mut poll = Poller::new(ReactorBackend::Poll);
        poll.register(-1, 0, Interest::READ).unwrap();
        assert!(poll.wait(Duration::from_millis(5)).unwrap().is_empty());
    }
}
