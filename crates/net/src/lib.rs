//! # snn-net
//!
//! A TCP serving front-end for the SNN accelerator: the bridge between the
//! in-process [`snn_accel::serve::StreamServer`] and the network, built on
//! `std::net` plus a handful of hand-bound syscalls (the workspace has no
//! registry access).
//!
//! Five pieces:
//!
//! * [`protocol`] — a length-prefixed, versioned binary frame codec
//!   (inference request = request id + encoded input tensor; response =
//!   class scores + a `RunReport` summary, echoing the id), pure over byte
//!   slices and property-tested: malformed, truncated or oversized input
//!   yields typed [`protocol::ProtocolError`]s, never panics or unbounded
//!   buffering.  Version 2 added per-connection request pipelining
//!   (request-id correlation, completion-order replies) and a
//!   content-negotiation byte on STATS (plaintext or Prometheus).
//! * [`sys`] — the only `unsafe` in the crate: minimal `extern "C"`
//!   bindings for `epoll(7)`, `poll(2)`, `fcntl(2)` and a self-pipe
//!   (Linux), behind safe wrappers.
//! * [`poller`] — [`poller::Poller`]: one safe readiness API over both
//!   backends — edge-triggered `epoll` (the default) and a portable
//!   level-triggered `poll(2)` fallback, selected by
//!   [`ReactorBackend`] / the `SNN_REACTOR` environment variable, or
//!   automatically when `epoll_create1` is unavailable.
//! * [`server`] — [`server::NetServer`]: a **sharded reactor** front-end
//!   — one reactor thread per core (`NetOptions::reactors` /
//!   `SNN_REACTORS`), shard 0 accepting and dealing connections
//!   round-robin to its siblings, each shard owning its connections
//!   outright on non-blocking sockets: incremental decode from
//!   per-connection read buffers (burst-bounded under edge triggering),
//!   write queues flushed on writability, inference completions
//!   delivered through
//!   [`snn_accel::serve::StreamServer::submit_tagged`]'s completion queue
//!   and a per-shard wake pipe.  No thread per connection, no blocked
//!   waits, no cross-shard locks on the data path, and **first-class
//!   backpressure**: queue-full and (globally capped) connection-table
//!   conditions answer with typed REJECTED frames carrying a retry-after
//!   hint computed from the live queue depth and drain rate.
//! * [`client`] — [`client::NetClient`] (pipelined `infer_many`, jittered
//!   [`client::BackoffPolicy`] retries), [`client::NetPool`] connection
//!   pooling, plus [`client::scrape_stats`] / [`client::scrape_traces`]
//!   for the plaintext `STATS` and `TRACES` lines.
//!
//! The front-end also exports the per-request tracing pipeline end to
//! end: STATS format byte `2` (or the plaintext `TRACES` line) drains
//! the server's completed `snn_telemetry::RequestTrace` ring as JSONL,
//! and the Prometheus exposition carries per-phase latency histograms
//! (`snn_request_queue_wait_seconds`, `snn_request_compute_seconds`,
//! `snn_request_duration_seconds`, `snn_reactor_write_stall_seconds`).
//!
//! Scores received over TCP are **bit-identical** to the matching
//! in-process `StreamServer::submit` call — the loopback test suite pins
//! this (pipelined or not), extending the repo's exactness ladder across
//! the wire.
//!
//! With the `fault-injection` feature, the `fault` module arms a seeded
//! `fault::FaultPlan` across the sys wrappers and connection I/O paths;
//! the chaos suite (`tests/chaos.rs`) drives loopback traffic under
//! generated fault schedules and pins that every request resolves to
//! bit-exact SCORES or a typed error — never a hang, never a process
//! panic.  Release builds compile none of it.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod error;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod poller;
pub mod protocol;
pub mod server;
pub mod sys;

pub use client::{scrape_stats, scrape_traces, BackoffPolicy, NetClient, NetPool};
pub use error::NetError;
pub use poller::ReactorBackend;
pub use protocol::{Frame, ProtocolError};
pub use server::{NetOptions, NetServer, NetStats};
