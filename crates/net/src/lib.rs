//! # snn-net
//!
//! A TCP serving front-end for the SNN accelerator: the bridge between the
//! in-process [`snn_accel::serve::StreamServer`] and the network, built on
//! `std::net` only (the workspace has no registry access).
//!
//! Three pieces:
//!
//! * [`protocol`] — a length-prefixed, versioned binary frame codec
//!   (inference request = encoded input tensor + options; response = class
//!   scores + a `RunReport` summary), pure over byte slices and
//!   property-tested: malformed, truncated or oversized input yields typed
//!   [`protocol::ProtocolError`]s, never panics or unbounded buffering.
//! * [`server`] — [`server::NetServer`]: an acceptor plus a
//!   thread-per-connection worker set bounded by the shared
//!   [`snn_parallel::ThreadBudget`] IO leases, graceful draining shutdown,
//!   and **first-class backpressure**: queue-full and worker-saturated
//!   conditions answer with typed REJECTED frames carrying a retry-after
//!   hint computed from the live queue depth and drain rate.
//! * [`client`] — [`client::NetClient`], the pure-Rust client used by the
//!   tests, the `serve_tcp` example and the `bench_net` load generator,
//!   plus [`client::scrape_stats`] for the plaintext `STATS` line.
//!
//! Scores received over TCP are **bit-identical** to the matching
//! in-process `StreamServer::submit` call — the loopback test suite pins
//! this, extending the repo's exactness ladder across the wire.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod error;
pub mod protocol;
pub mod server;

pub use client::{scrape_stats, NetClient};
pub use error::NetError;
pub use protocol::{Frame, ProtocolError};
pub use server::{NetOptions, NetServer, NetStats};
