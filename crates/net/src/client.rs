//! Pure-Rust client side of the `snn-net` protocol.
//!
//! Three layers, smallest first:
//!
//! * [`NetClient`] — one blocking TCP connection.  Every request carries a
//!   connection-unique request id; [`NetClient::infer`] awaits its own
//!   reply, [`NetClient::infer_many`] **pipelines** a whole batch (all
//!   requests written back-to-back, replies correlated by id in whatever
//!   completion order the server chooses).
//! * [`BackoffPolicy`] — deterministic jittered exponential backoff,
//!   seeded from the server's retry-after hints.
//!   [`NetClient::infer_with_retry`] applies it instead of sleeping the
//!   hint verbatim, so synchronized clients spread out instead of
//!   thundering back in lock-step.
//! * [`NetPool`] — a thread-safe connection pool: callers borrow a healthy
//!   connection per call (new ones are dialled on demand, poisoned ones
//!   are discarded), so many threads share warm connections without
//!   re-handshaking.
//!
//! [`scrape_stats`] performs the plaintext `STATS` one-shot that a
//! dependency-free scraper (or `nc`) would.

use crate::error::NetError;
use crate::protocol::{
    stats_format, Frame, InferRequest, ScoreReply, NO_REQUEST_ID, STATS_LINE, TRACES_LINE,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snn_tensor::Tensor;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

/// How long a client waits on a single reply before giving up — generous,
/// because a cycle-accurate inference behind a deep queue is slow, but
/// finite, so a wedged server cannot hang the client forever.
pub const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Deterministic jittered exponential backoff for retrying shed requests.
///
/// The server's retry-after hint **seeds** the schedule (it is the
/// first-attempt ceiling) instead of being slept verbatim: the ceiling
/// doubles per attempt up to [`BackoffPolicy::cap_ms`], and the actual
/// sleep is drawn uniformly from the upper half of the ceiling
/// (equal-jitter), so a crowd of clients shed together does not retry
/// together.  The jitter is a pure function of `(seed, attempt)` via the
/// vendored deterministic `rand`, so tests are reproducible and two
/// clients decorrelate by seeding differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First-attempt ceiling when the server supplied no hint
    /// (milliseconds).
    pub base_ms: u64,
    /// Upper clamp of any single sleep (milliseconds).
    pub cap_ms: u64,
    /// Jitter stream seed; give concurrent clients distinct seeds.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: 25,
            cap_ms: 10_000,
            seed: 0x5eed_b0ff,
        }
    }
}

impl BackoffPolicy {
    /// The sleep before retry number `attempt` (1-based) of a request
    /// whose latest rejection carried `hint_ms`.
    ///
    /// Deterministic in `(self, attempt, hint_ms)`; monotone bounds:
    /// always within `1..=cap_ms`, and at least half the exponential
    /// ceiling so a loaded server is never hammered early.
    pub fn delay_ms(&self, attempt: usize, hint_ms: Option<u64>) -> u64 {
        let attempt = attempt.max(1);
        let base = hint_ms.unwrap_or(self.base_ms).clamp(1, self.cap_ms.max(1));
        let doublings = (attempt - 1).min(20) as u32;
        let ceiling = base
            .saturating_mul(1u64 << doublings)
            .min(self.cap_ms.max(1));
        let floor = (ceiling / 2).max(1);
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        rng.gen_range(floor..=ceiling)
    }
}

/// A blocking client connection to a [`crate::server::NetServer`].
///
/// Any transport or protocol error **poisons** the connection: after a
/// timeout the stream may still carry the late reply to the failed
/// exchange, so silently reusing it would hand that stale frame to the
/// next request.  A poisoned client fails every further call with
/// [`NetError::Poisoned`]; reconnect instead.  Typed replies (scores,
/// rejections, server errors) leave the stream in sync and do not poison.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    /// Resolved peer address, kept so [`NetClient::infer_with_retry`] can
    /// reconnect after a connection-scope rejection (the server hangs up
    /// after shedding a connection).
    addr: SocketAddr,
    buf: Vec<u8>,
    poisoned: bool,
    next_request_id: u64,
    /// Current per-reply wait bound (see [`NetClient::set_reply_timeout`]);
    /// quoted in [`NetError::Timeout`] and preserved across the reconnects
    /// [`NetClient::infer_with_retry`] performs.
    reply_timeout: Duration,
}

impl NetClient {
    /// Connects to a serving front-end.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(REPLY_TIMEOUT))?;
        let addr = stream.peer_addr()?;
        Ok(NetClient {
            stream,
            addr,
            buf: Vec::new(),
            poisoned: false,
            next_request_id: 0,
            reply_timeout: REPLY_TIMEOUT,
        })
    }

    /// Replaces the default [`REPLY_TIMEOUT`] wait bound on every reply
    /// read.  Expiry surfaces as the typed [`NetError::Timeout`] (and
    /// poisons the connection — the late reply may still arrive), so an
    /// impatient caller distinguishes "slow server" from transport
    /// failure.
    ///
    /// # Errors
    ///
    /// Socket errors ([`Duration::ZERO`] is rejected by the OS).
    pub fn set_reply_timeout(&mut self, timeout: Duration) -> Result<(), NetError> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.reply_timeout = timeout;
        Ok(())
    }

    /// Whether an earlier failed exchange has poisoned this connection
    /// (see the type docs); a poisoned client must be replaced.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The resolved server address this client dialled.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_request_id;
        // Skip the sentinel on wrap (not reachable in practice).
        self.next_request_id = self.next_request_id.wrapping_add(1);
        if self.next_request_id == NO_REQUEST_ID {
            self.next_request_id = 0;
        }
        id
    }

    /// Submits one inference and blocks for its scores.
    ///
    /// # Errors
    ///
    /// [`NetError::Rejected`] when the server shed the request under load
    /// (check [`NetError::retry_after_ms`] and back off),
    /// [`NetError::Remote`] for request failures,
    /// [`NetError::Protocol`] locally when the tensor violates a wire
    /// limit (see [`InferRequest::validate`]), and transport errors
    /// otherwise.
    pub fn infer(&mut self, input: &Tensor<f32>) -> Result<ScoreReply, NetError> {
        let mut replies = self.infer_many(std::slice::from_ref(input))?;
        replies
            .pop()
            .expect("infer_many returns one slot per input")
    }

    /// **Pipelines** `inputs` over this connection: every INFER frame is
    /// written back-to-back before any reply is read, so the server can
    /// overlap queueing, batching and transfer across the whole batch.
    /// Replies arrive in completion order and are correlated back to their
    /// request by id; the returned vector is in `inputs` order.
    ///
    /// Rejections and request-level failures settle **their own slot**
    /// (inner `Err`) without disturbing the rest of the batch.
    ///
    /// # Errors
    ///
    /// The outer error is connection-fatal: local wire-limit violations
    /// (nothing was sent, the connection stays usable), transport
    /// failures, or protocol violations (these poison the client).
    #[allow(clippy::type_complexity)]
    pub fn infer_many(
        &mut self,
        inputs: &[Tensor<f32>],
    ) -> Result<Vec<Result<ScoreReply, NetError>>, NetError> {
        self.infer_many_within(inputs, None)
    }

    /// [`NetClient::infer_many`] with a per-request **queue-wait
    /// deadline** (milliseconds) attached to every request in the batch:
    /// a request still queued server-side past the deadline is shed
    /// *before compute* and its slot settles with [`NetError::Rejected`]
    /// (`scope = deadline`, retry hint included) — bounded staleness
    /// instead of a stale answer.
    ///
    /// # Errors
    ///
    /// See [`NetClient::infer_many`].
    #[allow(clippy::type_complexity)]
    pub fn infer_many_within(
        &mut self,
        inputs: &[Tensor<f32>],
        deadline_ms: Option<u32>,
    ) -> Result<Vec<Result<ScoreReply, NetError>>, NetError> {
        if self.poisoned {
            return Err(NetError::Poisoned);
        }
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let mut batch = Vec::new();
        let mut id_to_index: HashMap<u64, usize> = HashMap::with_capacity(inputs.len());
        for (index, input) in inputs.iter().enumerate() {
            let mut request = InferRequest::from_tensor(self.next_id(), input);
            if let Some(ms) = deadline_ms {
                request = request.with_deadline(ms);
            }
            // Fail limit violations (oversized tensors, rank) locally with
            // the same typed error the server's decoder would raise —
            // before anything is sent, so the connection stays clean.
            request.validate()?;
            id_to_index.insert(request.request_id, index);
            batch.extend_from_slice(&Frame::Infer(request).encode());
        }
        let mut slots: Vec<Option<Result<ScoreReply, NetError>>> = Vec::new();
        slots.resize_with(inputs.len(), || None);
        match self.exchange_many(&batch, &mut slots, &mut id_to_index) {
            Ok(()) => Ok(slots
                .into_iter()
                .map(|slot| slot.expect("every request settled"))
                .collect()),
            Err(err) => {
                // The stream may hold (or later receive) replies we can no
                // longer pair with their requests; never reuse it.
                self.poisoned = true;
                Err(err)
            }
        }
    }

    /// One batched write, then reply correlation until every slot settles.
    fn exchange_many(
        &mut self,
        batch: &[u8],
        slots: &mut [Option<Result<ScoreReply, NetError>>],
        id_to_index: &mut HashMap<u64, usize>,
    ) -> Result<(), NetError> {
        self.stream.write_all(batch)?;
        self.stream.flush()?;
        let mut remaining = slots.len();
        while remaining > 0 {
            let frame = self.read_frame()?;
            let (request_id, outcome): (u64, Result<ScoreReply, NetError>) = match frame {
                Frame::Scores(reply) => (reply.request_id, Ok(reply)),
                Frame::Rejected(reply) => (reply.request_id, Err(NetError::Rejected(reply))),
                Frame::Error(reply) => (
                    reply.request_id,
                    Err(NetError::Remote {
                        code: reply.code,
                        message: reply.message,
                    }),
                ),
                _ => {
                    return Err(NetError::Protocol(
                        crate::protocol::ProtocolError::Malformed(
                            "unexpected reply frame to an inference request".to_string(),
                        ),
                    ))
                }
            };
            if request_id == NO_REQUEST_ID {
                // A connection-scope reply (shed / protocol error) answers
                // everything still outstanding; the server hangs up next.
                for (_, &index) in id_to_index.iter() {
                    if slots[index].is_none() {
                        slots[index] = Some(clone_outcome(&outcome));
                    }
                }
                return Ok(());
            }
            let index = id_to_index.remove(&request_id).ok_or_else(|| {
                NetError::Protocol(crate::protocol::ProtocolError::Malformed(format!(
                    "reply for unknown request id {request_id}"
                )))
            })?;
            slots[index] = Some(outcome);
            remaining -= 1;
        }
        Ok(())
    }

    /// Submits one inference, retrying shed requests under the default
    /// [`BackoffPolicy`] (jittered exponential backoff seeded from the
    /// server's retry-after hints), up to `attempts` tries total.
    ///
    /// Connection-scope rejections (the server's connection table was
    /// full, [`crate::protocol::reject_scope::CONNECTIONS`]) close the
    /// shed connection server-side, so the helper reconnects before those
    /// retries; queue-scope rejections retry on the same connection.
    /// Reply timeouts ([`NetError::Timeout`]) also retry — they poison the
    /// connection (the late reply may still arrive on it), so those
    /// retries always reconnect first.
    ///
    /// # Errors
    ///
    /// The final rejection or timeout when every attempt failed that way,
    /// or any other error immediately.
    pub fn infer_with_retry(
        &mut self,
        input: &Tensor<f32>,
        attempts: usize,
    ) -> Result<ScoreReply, NetError> {
        self.infer_with_retry_using(input, attempts, &BackoffPolicy::default())
    }

    /// [`NetClient::infer_with_retry`] under an explicit [`BackoffPolicy`].
    ///
    /// # Errors
    ///
    /// See [`NetClient::infer_with_retry`].
    pub fn infer_with_retry_using(
        &mut self,
        input: &Tensor<f32>,
        attempts: usize,
        policy: &BackoffPolicy,
    ) -> Result<ScoreReply, NetError> {
        let attempts = attempts.max(1);
        for attempt in 1..=attempts {
            match self.infer(input) {
                Err(err) if err.is_backpressure() || matches!(err, NetError::Timeout { .. }) => {
                    if attempt == attempts {
                        // Out of attempts: return the rejection in hand
                        // instead of sleeping through a hint we will never
                        // act on.
                        return Err(err);
                    }
                    // A connection-scope shed is closed server-side, and a
                    // timeout poisons the stream client-side; both retries
                    // need a fresh connection.  Queue-scope rejections
                    // retry in place.
                    let reconnect = matches!(err, NetError::Timeout { .. })
                        || matches!(
                            &err,
                            NetError::Rejected(reply)
                                if reply.scope == crate::protocol::reject_scope::CONNECTIONS
                        );
                    let wait = policy.delay_ms(attempt, err.retry_after_ms());
                    std::thread::sleep(Duration::from_millis(wait));
                    if reconnect {
                        let timeout = self.reply_timeout;
                        *self = NetClient::connect(self.addr)?;
                        if timeout != REPLY_TIMEOUT {
                            self.set_reply_timeout(timeout)?;
                        }
                    }
                }
                other => return other,
            }
        }
        unreachable!("every attempt either returned or slept toward the next")
    }

    /// Fetches the server's plaintext counters over the framed protocol
    /// (the connection stays usable afterwards).
    ///
    /// Call with no inferences in flight: the stats reply carries no
    /// request id, so it cannot be correlated amid pipelined traffic.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn stats_text(&mut self) -> Result<String, NetError> {
        self.stats(stats_format::TEXT)
    }

    /// Fetches the server's counters in Prometheus exposition format
    /// (`# TYPE` lines, `snn_`-prefixed metric names).
    ///
    /// # Errors
    ///
    /// See [`NetClient::stats_text`].
    pub fn stats_prometheus(&mut self) -> Result<String, NetError> {
        self.stats(stats_format::PROMETHEUS)
    }

    /// Drains the server's completed per-request traces as JSONL (one
    /// trace object per line; parse with
    /// `snn_telemetry::RequestTrace::from_json_line`).  The drain is
    /// destructive: each trace is returned exactly once across all
    /// scrapers.  An empty string means no requests completed since the
    /// last drain (or tracing is disabled).
    ///
    /// # Errors
    ///
    /// See [`NetClient::stats_text`].
    pub fn stats_traces(&mut self) -> Result<String, NetError> {
        self.stats(stats_format::TRACES)
    }

    fn stats(&mut self, format: u8) -> Result<String, NetError> {
        match self.roundtrip(&Frame::StatsRequest { format })? {
            Frame::StatsText(text) => Ok(text),
            Frame::Rejected(reply) => Err(NetError::Rejected(reply)),
            Frame::Error(reply) => Err(NetError::Remote {
                code: reply.code,
                message: reply.message,
            }),
            _ => Err(NetError::Protocol(
                crate::protocol::ProtocolError::Malformed(
                    "unexpected reply frame to a stats request".to_string(),
                ),
            )),
        }
    }

    fn roundtrip(&mut self, request: &Frame) -> Result<Frame, NetError> {
        if self.poisoned {
            return Err(NetError::Poisoned);
        }
        match self.exchange(request) {
            Ok(frame) => Ok(frame),
            Err(err) => {
                // The stream may hold (or later receive) a reply we can no
                // longer pair with its request; never reuse it.
                self.poisoned = true;
                Err(err)
            }
        }
    }

    fn exchange(&mut self, request: &Frame) -> Result<Frame, NetError> {
        request.write_to(&mut self.stream)?;
        self.read_frame()
    }

    fn read_frame(&mut self) -> Result<Frame, NetError> {
        let mut scratch = [0u8; 8192];
        loop {
            if let Some((frame, used)) = Frame::decode(&self.buf)? {
                self.buf.drain(..used);
                return Ok(frame);
            }
            match self.stream.read(&mut scratch) {
                Ok(0) => return Err(NetError::Disconnected),
                Ok(n) => self.buf.extend_from_slice(&scratch[..n]),
                // The read timeout expiring is WouldBlock or TimedOut
                // depending on platform; both mean "no reply in time",
                // which gets its own type so callers can retry on a fresh
                // connection instead of treating it as transport failure.
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Err(NetError::Timeout {
                        waited: self.reply_timeout,
                    })
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// Clones a per-request outcome so a connection-scope reply can settle
/// every outstanding slot ([`NetError`] itself is not `Clone` — IO errors
/// are not — but the reply-shaped variants used here are value types).
fn clone_outcome(outcome: &Result<ScoreReply, NetError>) -> Result<ScoreReply, NetError> {
    match outcome {
        Ok(reply) => Ok(reply.clone()),
        Err(NetError::Rejected(reply)) => Err(NetError::Rejected(*reply)),
        Err(NetError::Remote { code, message }) => Err(NetError::Remote {
            code: *code,
            message: message.clone(),
        }),
        // Unreachable by construction: only reply-shaped outcomes are
        // broadcast.  Degrade to a typed protocol error rather than panic.
        Err(_) => Err(NetError::Protocol(
            crate::protocol::ProtocolError::Malformed("unclonable broadcast outcome".to_string()),
        )),
    }
}

/// Options of a [`NetPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolOptions {
    /// Most idle (checked-in) connections kept warm; extra connections are
    /// simply dropped on check-in.  Checked-*out* connections are not
    /// bounded — the pool dials on demand — so concurrency is limited by
    /// the server's connection cap, not the client.
    pub max_idle: usize,
    /// Retry attempts [`NetPool::infer`] spends on backpressure.
    pub retry_attempts: usize,
    /// Backoff schedule for those retries.
    pub backoff: BackoffPolicy,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            max_idle: 8,
            retry_attempts: 4,
            backoff: BackoffPolicy::default(),
        }
    }
}

/// A thread-safe pool of [`NetClient`] connections to one server.
///
/// Shared by reference across threads (`&NetPool` is `Sync`): each call
/// checks a connection out, runs, and checks it back in if it is still
/// healthy.  Poisoned or shed connections are dropped, not recycled, so a
/// pooled caller never inherits a desynchronized stream.
#[derive(Debug)]
pub struct NetPool {
    addr: SocketAddr,
    options: PoolOptions,
    idle: Mutex<Vec<NetClient>>,
}

impl NetPool {
    /// Resolves `addr` and dials one probe connection (kept warm), so a
    /// bad address fails here and not on first use.
    ///
    /// # Errors
    ///
    /// Socket errors (resolution, refused connection).
    pub fn connect<A: ToSocketAddrs>(addr: A, options: PoolOptions) -> Result<Self, NetError> {
        let first = NetClient::connect(addr)?;
        let pool = NetPool {
            addr: first.peer_addr(),
            options,
            idle: Mutex::new(Vec::new()),
        };
        pool.check_in(first);
        Ok(pool)
    }

    /// The resolved server address this pool dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Idle connections currently kept warm.
    pub fn idle_connections(&self) -> usize {
        self.idle.lock().expect("pool lock").len()
    }

    /// One inference on a pooled connection, with jittered-backoff retries
    /// per [`PoolOptions`].
    ///
    /// # Errors
    ///
    /// See [`NetClient::infer_with_retry`].
    pub fn infer(&self, input: &Tensor<f32>) -> Result<ScoreReply, NetError> {
        let mut client = self.check_out()?;
        let result = client.infer_with_retry_using(
            input,
            self.options.retry_attempts,
            &self.options.backoff,
        );
        self.check_in(client);
        result
    }

    /// Pipelines `inputs` over one pooled connection — see
    /// [`NetClient::infer_many`].
    ///
    /// # Errors
    ///
    /// See [`NetClient::infer_many`].
    #[allow(clippy::type_complexity)]
    pub fn infer_many(
        &self,
        inputs: &[Tensor<f32>],
    ) -> Result<Vec<Result<ScoreReply, NetError>>, NetError> {
        let mut client = self.check_out()?;
        let result = client.infer_many(inputs);
        self.check_in(client);
        result
    }

    fn check_out(&self) -> Result<NetClient, NetError> {
        if let Some(client) = self.idle.lock().expect("pool lock").pop() {
            return Ok(client);
        }
        NetClient::connect(self.addr)
    }

    fn check_in(&self, client: NetClient) {
        if client.is_poisoned() {
            return;
        }
        let mut idle = self.idle.lock().expect("pool lock");
        if idle.len() < self.options.max_idle {
            idle.push(client);
        }
    }
}

/// One-shot plaintext scrape: connects, sends the ASCII `STATS` line and
/// reads until the server closes — exactly what `echo STATS | nc` does.
///
/// # Errors
///
/// [`NetError::Rejected`] when the server shed the connection under load
/// (it answers with a framed REJECTED before the plaintext line is
/// processed), [`NetError::Protocol`] for a non-text reply, and socket
/// errors otherwise.
pub fn scrape_stats<A: ToSocketAddrs>(addr: A) -> Result<String, NetError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(REPLY_TIMEOUT))?;
    // One write: a Nagle-delayed lone terminator would stall the server,
    // which cannot answer until the full line arrives.
    let mut line = STATS_LINE.to_vec();
    line.push(b'\n');
    stream.write_all(&line)?;
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply)?;
    // A saturated server sheds the connection with a framed REJECTED
    // before ever seeing the plaintext request — surface it typed instead
    // of returning binary bytes as "stats text".
    if reply.starts_with(&crate::protocol::MAGIC) {
        return match Frame::decode(&reply)? {
            Some((Frame::Rejected(rejected), _)) => Err(NetError::Rejected(rejected)),
            _ => Err(NetError::Protocol(
                crate::protocol::ProtocolError::Malformed(
                    "framed reply to a plaintext stats request".to_string(),
                ),
            )),
        };
    }
    String::from_utf8(reply).map_err(|_| {
        NetError::Protocol(crate::protocol::ProtocolError::Malformed(
            "stats reply is not UTF-8".to_string(),
        ))
    })
}

/// One-shot plaintext trace drain: connects, sends the ASCII `TRACES`
/// line and reads the JSONL dump until the server closes — the `nc`
/// spelling of [`NetClient::stats_traces`].  Destructive like the framed
/// form: each completed trace is returned exactly once.
///
/// # Errors
///
/// See [`scrape_stats`].
pub fn scrape_traces<A: ToSocketAddrs>(addr: A) -> Result<String, NetError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(REPLY_TIMEOUT))?;
    let mut line = TRACES_LINE.to_vec();
    line.push(b'\n');
    stream.write_all(&line)?;
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply)?;
    if reply.starts_with(&crate::protocol::MAGIC) {
        return match Frame::decode(&reply)? {
            Some((Frame::Rejected(rejected), _)) => Err(NetError::Rejected(rejected)),
            _ => Err(NetError::Protocol(
                crate::protocol::ProtocolError::Malformed(
                    "framed reply to a plaintext traces request".to_string(),
                ),
            )),
        };
    }
    String::from_utf8(reply).map_err(|_| {
        NetError::Protocol(crate::protocol::ProtocolError::Malformed(
            "traces reply is not UTF-8".to_string(),
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RejectReply;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = BackoffPolicy::default();
        for attempt in 1..=10 {
            for hint in [None, Some(1), Some(40), Some(100_000)] {
                let a = policy.delay_ms(attempt, hint);
                let b = policy.delay_ms(attempt, hint);
                assert_eq!(a, b, "same inputs, same delay");
                assert!(a >= 1);
                assert!(a <= policy.cap_ms, "attempt {attempt} hint {hint:?}: {a}");
            }
        }
    }

    #[test]
    fn backoff_ceiling_grows_exponentially_from_the_hint() {
        let policy = BackoffPolicy {
            base_ms: 25,
            cap_ms: 1_000_000,
            seed: 7,
        };
        let hint = Some(40);
        for attempt in 1..=8usize {
            let delay = policy.delay_ms(attempt, hint);
            let ceiling = 40u64 << (attempt - 1);
            assert!(
                delay >= ceiling / 2 && delay <= ceiling,
                "attempt {attempt}: {delay} outside [{}, {ceiling}]",
                ceiling / 2
            );
        }
    }

    #[test]
    fn backoff_respects_the_cap_and_jitters_across_seeds() {
        let policy = BackoffPolicy {
            base_ms: 100,
            cap_ms: 500,
            seed: 1,
        };
        // Deep attempts saturate at the cap's upper half.
        let deep = policy.delay_ms(30, Some(400));
        assert!((250..=500).contains(&deep), "deep delay {deep}");
        // Different seeds decorrelate (with overwhelming probability at
        // this ceiling width; these two seeds are pinned to differ).
        let other = BackoffPolicy { seed: 2, ..policy };
        let spread: Vec<u64> = (1..=6).map(|a| policy.delay_ms(a, Some(400))).collect();
        let spread_other: Vec<u64> = (1..=6).map(|a| other.delay_ms(a, Some(400))).collect();
        assert_ne!(spread, spread_other, "seeds must decorrelate schedules");
    }

    #[test]
    fn clone_outcome_covers_the_broadcast_variants() {
        let ok = clone_outcome(&Ok(ScoreReply {
            request_id: 1,
            prediction: 2,
            time_steps: 3,
            thread_budget: 2,
            total_cycles: 9,
            logits: vec![1, 2, 3],
        }));
        assert!(ok.is_ok());
        let rejected = clone_outcome(&Err(NetError::Rejected(RejectReply {
            request_id: NO_REQUEST_ID,
            scope: crate::protocol::reject_scope::CONNECTIONS,
            queued: 1,
            capacity: 1,
            retry_after_ms: 100,
            drain_rate_mips: 0,
        })));
        assert!(matches!(rejected, Err(NetError::Rejected(_))));
        let remote = clone_outcome(&Err(NetError::Remote {
            code: 1,
            message: "nope".to_string(),
        }));
        assert!(matches!(remote, Err(NetError::Remote { .. })));
    }
}
