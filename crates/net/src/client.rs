//! Pure-Rust client for the `snn-net` protocol.
//!
//! [`NetClient`] speaks framed requests over one blocking TCP connection;
//! [`scrape_stats`] performs the plaintext `STATS` one-shot that a
//! dependency-free scraper (or `nc`) would.

use crate::error::NetError;
use crate::protocol::{Frame, InferRequest, ScoreReply, STATS_LINE};
use snn_tensor::Tensor;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How long a client waits on a single reply before giving up — generous,
/// because a cycle-accurate inference behind a deep queue is slow, but
/// finite, so a wedged server cannot hang the client forever.
pub const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// A blocking client connection to a [`crate::server::NetServer`].
///
/// Any transport or protocol error **poisons** the connection: after a
/// timeout the stream may still carry the late reply to the failed
/// exchange, so silently reusing it would hand that stale frame to the
/// next request.  A poisoned client fails every further call with
/// [`NetError::Poisoned`]; reconnect instead.  Typed replies (scores,
/// rejections, server errors) leave the stream in sync and do not poison.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    /// Resolved peer address, kept so [`NetClient::infer_with_retry`] can
    /// reconnect after a connection-scope rejection (the server hangs up
    /// after shedding a connection).
    addr: std::net::SocketAddr,
    buf: Vec<u8>,
    poisoned: bool,
}

impl NetClient {
    /// Connects to a serving front-end.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(REPLY_TIMEOUT))?;
        let addr = stream.peer_addr()?;
        Ok(NetClient {
            stream,
            addr,
            buf: Vec::new(),
            poisoned: false,
        })
    }

    /// Submits one inference and blocks for its scores.
    ///
    /// # Errors
    ///
    /// [`NetError::Rejected`] when the server shed the request under load
    /// (check [`NetError::retry_after_ms`] and back off),
    /// [`NetError::Remote`] for request failures,
    /// [`NetError::Protocol`] locally when the tensor violates a wire
    /// limit (see [`InferRequest::validate`]), and transport errors
    /// otherwise.
    pub fn infer(&mut self, input: &Tensor<f32>) -> Result<ScoreReply, NetError> {
        let request = InferRequest::from_tensor(input);
        // Fail limit violations (oversized tensors, rank) locally with the
        // same typed error the server's decoder would raise, instead of
        // having the server kill the connection over them.
        request.validate()?;
        match self.roundtrip(&Frame::Infer(request))? {
            Frame::Scores(reply) => Ok(reply),
            Frame::Rejected(reply) => Err(NetError::Rejected(reply)),
            Frame::Error(reply) => Err(NetError::Remote {
                code: reply.code,
                message: reply.message,
            }),
            _ => Err(NetError::Protocol(
                crate::protocol::ProtocolError::Malformed(
                    "unexpected reply frame to an inference request".to_string(),
                ),
            )),
        }
    }

    /// Submits one inference, retrying after the server's hint on each
    /// backpressure rejection, up to `attempts` tries total.
    ///
    /// Connection-scope rejections (the server's worker set was saturated,
    /// [`crate::protocol::reject_scope::CONNECTIONS`]) close the shed
    /// connection server-side, so the helper reconnects before those
    /// retries; queue-scope rejections retry on the same connection.
    ///
    /// # Errors
    ///
    /// The final rejection when every attempt was shed, or any
    /// non-backpressure error immediately.
    pub fn infer_with_retry(
        &mut self,
        input: &Tensor<f32>,
        attempts: usize,
    ) -> Result<ScoreReply, NetError> {
        let attempts = attempts.max(1);
        for attempt in 1..=attempts {
            match self.infer(input) {
                Err(err) if err.is_backpressure() => {
                    if attempt == attempts {
                        // Out of attempts: return the rejection in hand
                        // instead of sleeping through a hint we will never
                        // act on.
                        return Err(err);
                    }
                    let reconnect = matches!(
                        &err,
                        NetError::Rejected(reply)
                            if reply.scope == crate::protocol::reject_scope::CONNECTIONS
                    );
                    let wait = err.retry_after_ms().unwrap_or(1);
                    std::thread::sleep(Duration::from_millis(wait));
                    if reconnect {
                        *self = NetClient::connect(self.addr)?;
                    }
                }
                other => return other,
            }
        }
        unreachable!("every attempt either returned or slept toward the next")
    }

    /// Fetches the server's plaintext counters over the framed protocol
    /// (the connection stays usable afterwards).
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn stats_text(&mut self) -> Result<String, NetError> {
        match self.roundtrip(&Frame::StatsRequest)? {
            Frame::StatsText(text) => Ok(text),
            Frame::Rejected(reply) => Err(NetError::Rejected(reply)),
            Frame::Error(reply) => Err(NetError::Remote {
                code: reply.code,
                message: reply.message,
            }),
            _ => Err(NetError::Protocol(
                crate::protocol::ProtocolError::Malformed(
                    "unexpected reply frame to a stats request".to_string(),
                ),
            )),
        }
    }

    fn roundtrip(&mut self, request: &Frame) -> Result<Frame, NetError> {
        if self.poisoned {
            return Err(NetError::Poisoned);
        }
        match self.exchange(request) {
            Ok(frame) => Ok(frame),
            Err(err) => {
                // The stream may hold (or later receive) a reply we can no
                // longer pair with its request; never reuse it.
                self.poisoned = true;
                Err(err)
            }
        }
    }

    fn exchange(&mut self, request: &Frame) -> Result<Frame, NetError> {
        request.write_to(&mut self.stream)?;
        self.read_frame()
    }

    fn read_frame(&mut self) -> Result<Frame, NetError> {
        let mut scratch = [0u8; 8192];
        loop {
            if let Some((frame, used)) = Frame::decode(&self.buf)? {
                self.buf.drain(..used);
                return Ok(frame);
            }
            match self.stream.read(&mut scratch)? {
                0 => return Err(NetError::Disconnected),
                n => self.buf.extend_from_slice(&scratch[..n]),
            }
        }
    }
}

/// One-shot plaintext scrape: connects, sends the ASCII `STATS` line and
/// reads until the server closes — exactly what `echo STATS | nc` does.
///
/// # Errors
///
/// [`NetError::Rejected`] when the server shed the connection under load
/// (it answers with a framed REJECTED before the plaintext line is
/// processed), [`NetError::Protocol`] for a non-text reply, and socket
/// errors otherwise.
pub fn scrape_stats<A: ToSocketAddrs>(addr: A) -> Result<String, NetError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(REPLY_TIMEOUT))?;
    // One write: a Nagle-delayed lone terminator would stall the server,
    // which cannot answer until the full line arrives.
    let mut line = STATS_LINE.to_vec();
    line.push(b'\n');
    stream.write_all(&line)?;
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply)?;
    // A saturated server sheds the connection with a framed REJECTED
    // before ever seeing the plaintext request — surface it typed instead
    // of returning binary bytes as "stats text".
    if reply.starts_with(&crate::protocol::MAGIC) {
        return match Frame::decode(&reply)? {
            Some((Frame::Rejected(rejected), _)) => Err(NetError::Rejected(rejected)),
            _ => Err(NetError::Protocol(
                crate::protocol::ProtocolError::Malformed(
                    "framed reply to a plaintext stats request".to_string(),
                ),
            )),
        };
    }
    String::from_utf8(reply).map_err(|_| {
        NetError::Protocol(crate::protocol::ProtocolError::Malformed(
            "stats reply is not UTF-8".to_string(),
        ))
    })
}
