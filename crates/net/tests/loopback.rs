//! End-to-end loopback tests: real sockets, real threads, one process.
//!
//! The key pins: scores received over TCP are bit-identical to the
//! matching in-process `StreamServer::submit`; a full submission queue
//! answers with a typed REJECTED frame carrying a retry-after hint (and
//! `ServerStats::rejected` counts it); malformed bytes get a protocol
//! error, not a hang; shutdown is clean and drains accepted work.

use snn_accel::config::AcceleratorConfig;
use snn_accel::serve::{ServerOptions, StreamServer};
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::snn::SnnModel;
use snn_model::zoo;
use snn_net::protocol::{error_code, reject_scope, Frame};
use snn_net::{scrape_stats, NetClient, NetError, NetOptions, NetServer};
use snn_tensor::Tensor;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn converted_model(
    net: snn_model::network::NetworkSpec,
    side: usize,
    time_steps: usize,
    count: usize,
) -> (SnnModel, Vec<Tensor<f32>>) {
    let params = Parameters::he_init(&net, 11).unwrap();
    let volume = side * side;
    let inputs: Vec<Tensor<f32>> = (0..count)
        .map(|i| {
            let values: Vec<f32> = (0..volume)
                .map(|j| ((i * 17 + j * 5) % 100) as f32 / 100.0)
                .collect();
            Tensor::from_vec(vec![1, side, side], values).unwrap()
        })
        .collect();
    let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
    let model = convert(
        &net,
        &params,
        &stats,
        ConversionConfig {
            weight_bits: 3,
            time_steps,
        },
    )
    .unwrap();
    (model, inputs)
}

fn tiny_setup(count: usize) -> (SnnModel, Vec<Tensor<f32>>) {
    converted_model(zoo::tiny_cnn(), 12, 3, count)
}

fn lenet_setup(count: usize) -> (SnnModel, Vec<Tensor<f32>>) {
    converted_model(zoo::lenet5(), 32, 4, count)
}

/// The acceptance pin: a LeNet inference served over TCP returns scores
/// bit-identical to the matching in-process `StreamServer::submit`.
#[test]
fn lenet_scores_over_tcp_match_in_process_submit_bit_exactly() {
    let (model, inputs) = lenet_setup(2);
    let config = AcceleratorConfig::lenet_table3();
    let net_server =
        NetServer::bind("127.0.0.1:0", config, model.clone(), NetOptions::default()).unwrap();
    let in_process = StreamServer::start(config, model).unwrap();

    let mut client = NetClient::connect(net_server.local_addr()).unwrap();
    for input in &inputs {
        let wire = client.infer(input).unwrap();
        let solo = in_process.submit(input.clone()).unwrap().wait().unwrap();
        assert_eq!(wire.logits, solo.logits, "logits must be bit-identical");
        assert_eq!(wire.prediction as usize, solo.prediction);
        assert_eq!(wire.time_steps as usize, solo.time_steps);
        assert_eq!(wire.total_cycles, solo.total_cycles());
        assert_eq!(wire.thread_budget as usize, solo.thread_budget);
    }
    drop(client);
    let stats = net_server.shutdown();
    assert_eq!(stats.requests, inputs.len() as u64);
    assert_eq!(stats.server.completed, inputs.len() as u64);
    assert_eq!(stats.protocol_errors, 0);
    in_process.shutdown();
}

/// The pipelining acceptance pin: ten LeNet inferences **in flight at once
/// on a single connection** come back correctly correlated and with logits
/// bit-identical to the sequential in-process `StreamServer::submit`.
#[test]
fn pipelined_lenet_scores_on_one_connection_match_sequential_submit() {
    let (model, inputs) = lenet_setup(2);
    let config = AcceleratorConfig::lenet_table3();
    let net_server =
        NetServer::bind("127.0.0.1:0", config, model.clone(), NetOptions::default()).unwrap();
    let in_process = StreamServer::start(config, model).unwrap();

    // >= 8 in-flight requests on one connection (the acceptance floor).
    let batch: Vec<Tensor<f32>> = (0..10).map(|i| inputs[i % inputs.len()].clone()).collect();
    let mut client = NetClient::connect(net_server.local_addr()).unwrap();
    let replies = client.infer_many(&batch).unwrap();
    assert_eq!(replies.len(), batch.len());
    for (reply, input) in replies.iter().zip(&batch) {
        let wire = reply.as_ref().expect("pipelined inference succeeds");
        let solo = in_process.submit(input.clone()).unwrap().wait().unwrap();
        assert_eq!(wire.logits, solo.logits, "logits must be bit-identical");
        assert_eq!(wire.prediction as usize, solo.prediction);
        assert_eq!(wire.total_cycles, solo.total_cycles());
    }
    drop(client);
    let stats = net_server.shutdown();
    assert_eq!(stats.requests, batch.len() as u64);
    assert_eq!(stats.server.completed, batch.len() as u64);
    assert_eq!(stats.protocol_errors, 0);
    in_process.shutdown();
}

/// The replication pin: scores served over TCP by a replicas=2 server are
/// bit-identical to a replicas=1 server and to the in-process submit —
/// replication must be invisible in results, visible only in the stats.
#[test]
fn replicated_scores_over_tcp_match_single_replica_bit_exactly() {
    let (model, inputs) = tiny_setup(6);
    let config = AcceleratorConfig::default();
    let replicated = NetServer::bind(
        "127.0.0.1:0",
        config,
        model.clone(),
        NetOptions {
            server: ServerOptions {
                replicas: 2,
                ..ServerOptions::default()
            },
            ..NetOptions::default()
        },
    )
    .unwrap();
    let single =
        NetServer::bind("127.0.0.1:0", config, model.clone(), NetOptions::default()).unwrap();
    let in_process = StreamServer::start(config, model).unwrap();

    // Pipelined so requests genuinely interleave across both replicas.
    let mut rep_client = NetClient::connect(replicated.local_addr()).unwrap();
    let mut single_client = NetClient::connect(single.local_addr()).unwrap();
    let rep_replies = rep_client.infer_many(&inputs).unwrap();
    let single_replies = single_client.infer_many(&inputs).unwrap();
    for ((rep, solo), input) in rep_replies.iter().zip(&single_replies).zip(&inputs) {
        let rep = rep.as_ref().expect("replicated inference succeeds");
        let solo = solo.as_ref().expect("single-replica inference succeeds");
        assert_eq!(rep.logits, solo.logits, "logits must be bit-identical");
        assert_eq!(rep.prediction, solo.prediction);
        assert_eq!(rep.total_cycles, solo.total_cycles);
        assert_eq!(rep.thread_budget, solo.thread_budget);
        let local = in_process.submit(input.clone()).unwrap().wait().unwrap();
        assert_eq!(rep.logits, local.logits);
    }

    // The replica layer is visible in both stats formats.
    let text = rep_client.stats_text().unwrap();
    assert!(text.contains("replicas: 2"), "stats text: {text}");
    assert!(text.contains("replicas_healthy: 2"), "stats text: {text}");
    assert!(text.contains("replica[0]: healthy=1"), "stats text: {text}");
    assert!(text.contains("replica[1]: healthy=1"), "stats text: {text}");
    let prom = rep_client.stats_prometheus().unwrap();
    assert!(
        prom.contains("# TYPE snn_replicas gauge\nsnn_replicas 2\n"),
        "prometheus: {prom}"
    );
    assert!(
        prom.contains("# TYPE snn_replicas_healthy gauge\nsnn_replicas_healthy 2\n"),
        "prometheus: {prom}"
    );
    assert!(
        prom.contains("snn_replica_healthy{replica=\"0\"} 1"),
        "prometheus: {prom}"
    );
    assert!(
        prom.contains("snn_replica_completed_total{replica=\"1\"}"),
        "prometheus: {prom}"
    );
    for line in prom.lines() {
        assert!(
            line.starts_with("# TYPE snn_")
                || line.starts_with("# HELP snn_")
                || line.starts_with("snn_"),
            "stray exposition line: {line}"
        );
    }

    assert!(replicated.is_healthy());
    let stats = replicated.shutdown();
    assert_eq!(stats.server.completed, inputs.len() as u64);
    assert_eq!(stats.server.replicas, 2);
    assert_eq!(stats.server.healthy_replicas, 2);
    let per_replica_sum: u64 = stats.server.per_replica.iter().map(|r| r.completed).sum();
    assert_eq!(per_replica_sum, stats.server.completed);
    single.shutdown();
    in_process.shutdown();
}

#[test]
fn many_requests_per_connection_and_stats_accumulate() {
    let (model, inputs) = tiny_setup(5);
    let server = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        NetOptions::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr).unwrap();
    for input in &inputs {
        let reply = client.infer(input).unwrap();
        assert!(!reply.logits.is_empty());
    }
    // Framed stats on the same connection, which stays usable.
    let text = client.stats_text().unwrap();
    assert!(text.contains("completed: 5"), "stats text: {text}");
    assert!(text.contains("queue_capacity:"));
    assert!(text.contains("unit["));
    assert!(client.infer(&inputs[0]).is_ok());

    // Plaintext one-shot scrape on a fresh connection.
    let scraped = scrape_stats(addr).unwrap();
    assert!(scraped.contains("completed: 6"), "scraped: {scraped}");
    assert!(scraped.contains("connections_accepted:"));

    let stats = server.shutdown();
    assert_eq!(stats.requests, 6);
    assert_eq!(stats.stats_requests, 2);
    assert!(stats.accepted >= 2);
}

/// Concurrent connections against a one-slot queue force the admission
/// policy to shed load; the client sees a typed REJECTED frame with a
/// positive retry-after hint, and the server counts the rejection.
#[test]
fn full_queue_rejects_over_tcp_with_a_retry_hint() {
    let (model, inputs) = tiny_setup(2);
    let server = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        NetOptions {
            server: ServerOptions {
                max_batch: 1,
                queue_capacity: 1,
                ..ServerOptions::default()
            },
            ..NetOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let rejected = Arc::new(AtomicBool::new(false));
    let hint_ms = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let rejected = Arc::clone(&rejected);
            let hint_ms = Arc::clone(&hint_ms);
            let completed = Arc::clone(&completed);
            let input = inputs[t % inputs.len()].clone();
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                for _ in 0..50 {
                    if rejected.load(Ordering::Acquire) {
                        break;
                    }
                    match client.infer(&input) {
                        Ok(_) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(NetError::Rejected(reply)) => {
                            assert_eq!(reply.scope, reject_scope::QUEUE);
                            assert_eq!(reply.capacity, 1);
                            assert!(reply.retry_after_ms >= 1, "hint must be positive");
                            hint_ms.store(reply.retry_after_ms, Ordering::Relaxed);
                            rejected.store(true, Ordering::Release);
                            break;
                        }
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().unwrap();
    }

    assert!(
        rejected.load(Ordering::Acquire),
        "four concurrent connections against a one-slot queue must shed \
         at least once within 200 requests"
    );
    assert!(hint_ms.load(Ordering::Relaxed) >= 1);
    let stats = server.shutdown();
    assert!(stats.server.rejected >= 1, "rejection must be counted");
    assert_eq!(stats.server.completed, completed.load(Ordering::Relaxed));
}

#[test]
fn backpressure_retry_helper_eventually_succeeds() {
    let (model, inputs) = tiny_setup(1);
    let server = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        NetOptions {
            server: ServerOptions {
                max_batch: 1,
                queue_capacity: 1,
                ..ServerOptions::default()
            },
            ..NetOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    // Saturate from a background connection while the foreground client
    // retries with the server's own hints.
    let stop = Arc::new(AtomicBool::new(false));
    let pressure = {
        let stop = Arc::clone(&stop);
        let input = inputs[0].clone();
        std::thread::spawn(move || {
            let mut client = NetClient::connect(addr).unwrap();
            while !stop.load(Ordering::Acquire) {
                let _ = client.infer(&input);
            }
        })
    };
    let mut client = NetClient::connect(addr).unwrap();
    // A tight deterministic backoff keeps the test fast while still
    // exercising the jittered-retry path end to end.
    let policy = snn_net::BackoffPolicy {
        base_ms: 2,
        cap_ms: 50,
        seed: 42,
    };
    let reply = client
        .infer_with_retry_using(&inputs[0], 200, &policy)
        .unwrap();
    assert!(!reply.logits.is_empty());
    stop.store(true, Ordering::Release);
    pressure.join().unwrap();
    server.shutdown();
}

#[test]
fn bad_input_shape_gets_a_typed_error_and_the_connection_survives() {
    let (model, inputs) = tiny_setup(1);
    let server = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        NetOptions::default(),
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let wrong = Tensor::filled(vec![1, 5, 5], 0.5f32);
    match client.infer(&wrong) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, error_code::BAD_REQUEST),
        other => panic!("expected a remote error, got {other:?}"),
    }
    // The error was request-scoped, not connection-scoped.
    assert!(client.infer(&inputs[0]).is_ok());
    let stats = server.shutdown();
    assert_eq!(stats.server.errors, 1);
    assert_eq!(stats.server.completed, 1);
}

#[test]
fn malformed_bytes_get_a_protocol_error_reply_and_a_close() {
    let (model, _) = tiny_setup(1);
    let server = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        NetOptions::default(),
    )
    .unwrap();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).unwrap(); // server closes after the error
    let (frame, _) = Frame::decode(&reply).unwrap().expect("one error frame");
    match frame {
        Frame::Error(err) => assert_eq!(err.code, error_code::PROTOCOL),
        other => panic!("expected an error frame, got {other:?}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 1);
}

#[test]
fn shutdown_is_clean_and_reports_final_stats() {
    let (model, inputs) = tiny_setup(3);
    let server = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        NetOptions::default(),
    )
    .unwrap();
    let addr = server.local_addr();
    let mut client = NetClient::connect(addr).unwrap();
    for input in &inputs {
        client.infer(input).unwrap();
    }
    let stats = server.shutdown();
    assert_eq!(stats.server.completed, 3);
    assert_eq!(stats.server.errors, 0);
    assert_eq!(stats.turned_away, 0);
    // The listener is gone: new connections are refused (or reset).
    assert!(
        NetClient::connect(addr).is_err() || {
            let mut c = NetClient::connect(addr).unwrap();
            c.infer(&inputs[0]).is_err()
        }
    );
}

#[test]
fn a_failed_exchange_poisons_the_client_connection() {
    // A fake server that answers with garbage: the first call fails with a
    // protocol error, and the client must then refuse to reuse the stream
    // (a late reply could otherwise answer the wrong request).
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        let mut scratch = [0u8; 1024];
        let _ = conn.read(&mut scratch);
        conn.write_all(b"NOT A FRAME AT ALL").unwrap();
        conn.shutdown(std::net::Shutdown::Both).ok();
    });
    let mut client = NetClient::connect(addr).unwrap();
    match client.stats_text() {
        Err(NetError::Protocol(_)) => {}
        other => panic!("expected a protocol error, got {other:?}"),
    }
    match client.stats_text() {
        Err(NetError::Poisoned) => {}
        other => panic!("expected Poisoned on reuse, got {other:?}"),
    }
    fake.join().unwrap();
}

#[test]
fn idle_connections_forfeit_their_slot() {
    let (model, inputs) = tiny_setup(1);
    let server = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        NetOptions {
            idle_timeout: std::time::Duration::from_millis(100),
            poll_interval: std::time::Duration::from_millis(10),
            ..NetOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    // A silent connection is closed by the idle deadline (read sees EOF)...
    let mut silent = TcpStream::connect(addr).unwrap();
    silent
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    let mut scratch = [0u8; 16];
    assert_eq!(silent.read(&mut scratch).unwrap(), 0, "expected EOF");
    // ...and its slot is back: a real client is admitted and served.
    let mut client = NetClient::connect(addr).unwrap();
    assert!(client.infer(&inputs[0]).is_ok());
    server.shutdown();
}

/// Past `max_connections` the reactor sheds new connections with a typed
/// REJECTED frame (`scope = connections`) — written non-blockingly, no
/// thread spawned — and the slot frees once an admitted peer leaves.
#[test]
fn connection_cap_sheds_with_a_typed_rejection() {
    let (model, inputs) = tiny_setup(1);
    let server = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        NetOptions {
            max_connections: 1,
            poll_interval: std::time::Duration::from_millis(5),
            ..NetOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    // Occupy the only slot with a served connection.
    let mut first = NetClient::connect(addr).unwrap();
    first.infer(&inputs[0]).unwrap();
    // The second connection is shed: it sees one REJECTED frame, then EOF.
    let mut second = NetClient::connect(addr).unwrap();
    match second.infer(&inputs[0]) {
        Err(NetError::Rejected(reply)) => {
            assert_eq!(reply.scope, reject_scope::CONNECTIONS);
            assert_eq!(reply.capacity, 1);
            assert!(reply.retry_after_ms >= 1, "hint must be positive");
        }
        other => panic!("expected a connection-scope rejection, got {other:?}"),
    }
    // Free the slot; a new connection is admitted and served.
    drop(first);
    let mut retry = NetClient::connect(addr).unwrap();
    let mut served = false;
    for _ in 0..100 {
        match retry.infer(&inputs[0]) {
            Ok(_) => {
                served = true;
                break;
            }
            Err(err) if err.is_backpressure() => {
                std::thread::sleep(std::time::Duration::from_millis(10));
                retry = NetClient::connect(addr).unwrap();
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(served, "the freed slot must admit a new connection");
    let stats = server.shutdown();
    assert!(stats.turned_away >= 1, "the shed must be counted");
}

/// The STATS content-negotiation byte: Prometheus exposition carries
/// `# TYPE` metadata and `snn_`-prefixed samples that agree with the
/// plaintext counters.
#[test]
fn stats_negotiation_serves_prometheus_exposition() {
    let (model, inputs) = tiny_setup(2);
    let server = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        NetOptions::default(),
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    for input in &inputs {
        client.infer(input).unwrap();
    }
    let text = client.stats_text().unwrap();
    assert!(text.contains("completed: 2"), "plaintext: {text}");
    assert!(text.contains("panics: 0"), "plaintext: {text}");
    assert!(text.contains("deadline_sheds: 0"), "plaintext: {text}");
    assert!(text.contains("reactor_alive: 1"), "plaintext: {text}");
    let prom = client.stats_prometheus().unwrap();
    assert!(
        prom.contains("# TYPE snn_completed_total counter"),
        "prometheus: {prom}"
    );
    assert!(
        prom.contains("\nsnn_completed_total 2\n"),
        "prometheus: {prom}"
    );
    // The supervision counters are first-class in both formats: a scrape
    // can alert on engine panics and deadline sheds without new plumbing.
    assert!(
        prom.contains("# TYPE snn_panics_total counter\nsnn_panics_total 0\n"),
        "prometheus: {prom}"
    );
    assert!(
        prom.contains("# TYPE snn_deadline_sheds_total counter\nsnn_deadline_sheds_total 0\n"),
        "prometheus: {prom}"
    );
    assert!(
        prom.contains("# TYPE snn_reactor_alive gauge\nsnn_reactor_alive 1\n"),
        "prometheus: {prom}"
    );
    assert!(prom.contains("# TYPE snn_queue_capacity gauge"));
    assert!(
        prom.contains("snn_unit_utilisation{unit=\"Convolution\"}"),
        "per-unit samples must be labelled: {prom}"
    );
    // Every sample line belongs to a snn_-prefixed metric.
    for line in prom.lines() {
        assert!(
            line.starts_with("# TYPE snn_")
                || line.starts_with("# HELP snn_")
                || line.starts_with("snn_"),
            "stray exposition line: {line}"
        );
    }
    // The connection survives both scrapes.
    assert!(client.infer(&inputs[0]).is_ok());
    let stats = server.shutdown();
    assert_eq!(stats.stats_requests, 2);
}

#[test]
fn degenerate_server_options_fail_bind_with_a_typed_error() {
    let (model, _) = tiny_setup(1);
    let result = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        NetOptions {
            server: ServerOptions {
                queue_capacity: 0,
                ..ServerOptions::default()
            },
            ..NetOptions::default()
        },
    );
    match result {
        Err(NetError::Accel(err)) => assert!(err.to_string().contains("queue_capacity")),
        other => panic!("expected an accel error, got {:?}", other.map(|_| ())),
    }
}
