//! End-to-end tracing over real sockets: every pipelined request served
//! by a multi-replica `NetServer` yields exactly one complete
//! `RequestTrace` retrievable over the wire (framed STATS format `2` or
//! the plaintext `TRACES` line), with per-phase durations inside
//! wall-clock bounds and a `WriteStall` span amended by the reactor.
//! Tracing must not perturb results: scores stay bit-identical with the
//! recorder on and off.  The suite also pins the exposition parity
//! contract — plaintext and Prometheus STATS enumerate the same counter
//! key set.

use snn_accel::config::AcceleratorConfig;
use snn_accel::serve::ServerOptions;
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::snn::SnnModel;
use snn_model::zoo;
use snn_net::{scrape_traces, NetClient, NetOptions, NetServer};
use snn_telemetry::{Outcome, Phase, RequestTrace};
use snn_tensor::Tensor;
use std::collections::{BTreeSet, HashSet};
use std::time::Instant;

fn tiny_setup(count: usize) -> (SnnModel, Vec<Tensor<f32>>) {
    let net = zoo::tiny_cnn();
    let params = Parameters::he_init(&net, 13).unwrap();
    let inputs: Vec<Tensor<f32>> = (0..count)
        .map(|i| {
            let values: Vec<f32> = (0..144)
                .map(|j| ((i * 31 + j * 7) % 100) as f32 / 100.0)
                .collect();
            Tensor::from_vec(vec![1, 12, 12], values).unwrap()
        })
        .collect();
    let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
    let model = convert(
        &net,
        &params,
        &stats,
        ConversionConfig {
            weight_bits: 3,
            time_steps: 3,
        },
    )
    .unwrap();
    (model, inputs)
}

fn traced_net_options(replicas: usize, trace: bool) -> NetOptions {
    NetOptions {
        server: ServerOptions {
            replicas,
            trace,
            ..ServerOptions::default()
        },
        ..NetOptions::default()
    }
}

fn parse_jsonl(dump: &str) -> Vec<RequestTrace> {
    dump.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            RequestTrace::from_json_line(l).unwrap_or_else(|| panic!("unparseable trace: {l}"))
        })
        .collect()
}

/// The acceptance pin: pipelined requests over a replicated loopback
/// server each produce one complete trace, correlated by request id,
/// with phase sums inside the observed wall clock.
#[test]
fn every_pipelined_request_yields_one_complete_trace_over_the_wire() {
    let (model, inputs) = tiny_setup(2);
    let server = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        traced_net_options(2, true),
    )
    .unwrap();
    let batch: Vec<Tensor<f32>> = (0..8).map(|i| inputs[i % inputs.len()].clone()).collect();

    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let wall_start = Instant::now();
    let replies = client.infer_many(&batch).unwrap();
    let wall = wall_start.elapsed().as_secs_f64();
    for reply in &replies {
        assert!(reply.is_ok(), "pipelined inference failed: {reply:?}");
    }

    let traces = parse_jsonl(&client.stats_traces().unwrap());
    assert_eq!(traces.len(), batch.len(), "one trace per request");
    let ids: HashSet<u64> = traces.iter().map(|t| t.request_id).collect();
    assert_eq!(ids.len(), traces.len(), "request ids are unique");

    for trace in &traces {
        match &trace.outcome {
            Outcome::Scores { total_cycles } => assert!(*total_cycles > 0),
            other => panic!("served request traced as {other:?}"),
        }
        assert!(trace.replica.expect("routed") < 2);
        for phase in [
            Phase::Admission,
            Phase::Route,
            Phase::QueueWait,
            Phase::BatchAssembly,
            Phase::Compute,
        ] {
            assert!(
                trace.phase_seconds(phase).is_some(),
                "missing {phase:?} in {trace:?}"
            );
        }
        // The reactor amends each served trace with its reply's
        // write-queue residency once the kernel accepts the bytes — and
        // the client has the reply in hand, so the bytes were accepted.
        assert!(
            trace.phase_seconds(Phase::WriteStall).is_some(),
            "missing WriteStall in {trace:?}"
        );
        // WriteStall happens after settle, so it is excluded from the
        // in-pipeline total; the in-pipeline phases must fit inside it.
        let in_pipeline: f64 = trace
            .phases
            .iter()
            .filter(|s| s.phase != Phase::WriteStall)
            .map(|s| s.seconds)
            .sum();
        assert!(
            in_pipeline <= trace.total_seconds + 1e-6,
            "phases ({in_pipeline}s) exceed trace total ({}s)",
            trace.total_seconds
        );
        assert!(trace.total_seconds <= wall + 0.5);
    }

    // The drain was destructive: a second scrape starts empty.
    assert!(client.stats_traces().unwrap().is_empty());

    // The Prometheus exposition carries the histogram families fed by
    // the same requests.
    let prom = client.stats_prometheus().unwrap();
    for family in [
        "snn_request_queue_wait_seconds",
        "snn_request_compute_seconds",
        "snn_request_duration_seconds",
        "snn_reactor_write_stall_seconds",
    ] {
        assert!(
            prom.contains(&format!("# TYPE {family} histogram")),
            "missing {family} in: {prom}"
        );
    }
    let count_line = "snn_request_duration_seconds_count{replica=\"0\"}";
    assert!(prom.contains(count_line), "missing {count_line}");
    server.shutdown();
}

#[test]
fn scores_over_tcp_are_bit_identical_with_tracing_on_and_off() {
    let (model, inputs) = tiny_setup(3);
    let config = AcceleratorConfig::default();
    let traced = NetServer::bind(
        "127.0.0.1:0",
        config,
        model.clone(),
        traced_net_options(2, true),
    )
    .unwrap();
    let untraced =
        NetServer::bind("127.0.0.1:0", config, model, traced_net_options(2, false)).unwrap();

    let mut on_client = NetClient::connect(traced.local_addr()).unwrap();
    let mut off_client = NetClient::connect(untraced.local_addr()).unwrap();
    for input in &inputs {
        let on = on_client.infer(input).unwrap();
        let off = off_client.infer(input).unwrap();
        assert_eq!(on.logits, off.logits, "tracing must not perturb scores");
        assert_eq!(on.prediction, off.prediction);
        assert_eq!(on.total_cycles, off.total_cycles);
    }

    // A disabled recorder serves empty trace dumps and empty histograms,
    // but the exposition still enumerates the families (count 0).
    assert!(off_client.stats_traces().unwrap().is_empty());
    let prom = off_client.stats_prometheus().unwrap();
    assert!(prom.contains("snn_request_duration_seconds_count{replica=\"0\"} 0"));
    assert!(!on_client.stats_traces().unwrap().is_empty());
    traced.shutdown();
    untraced.shutdown();
}

/// The `nc`-style plaintext `TRACES` line drains the same JSONL dump as
/// the framed format-2 request, destructively.
#[test]
fn plaintext_traces_line_drains_the_ring_as_jsonl() {
    let (model, inputs) = tiny_setup(3);
    let server = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        traced_net_options(1, true),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr).unwrap();
    for input in &inputs {
        client.infer(input).unwrap();
    }
    drop(client);

    let traces = parse_jsonl(&scrape_traces(addr).unwrap());
    assert_eq!(traces.len(), inputs.len());
    for trace in &traces {
        assert!(matches!(trace.outcome, Outcome::Scores { .. }));
        assert_eq!(trace.replica, Some(0));
    }
    assert!(
        scrape_traces(addr).unwrap().is_empty(),
        "the plaintext drain is destructive too"
    );
    server.shutdown();
}

/// Normalises one exposition key for the parity diff: strips the `snn_`
/// prefix and `_total` suffix, drops histogram bucket series (plaintext
/// carries only the `_count`/`_sum` summaries).
fn normalize(name: &str) -> Option<String> {
    let name = name.strip_prefix("snn_").unwrap_or(name);
    if name.ends_with("_bucket") {
        return None;
    }
    Some(name.strip_suffix("_total").unwrap_or(name).to_string())
}

fn text_key_set(text: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("reactor[") {
            let fields = rest.split_once("]: ").expect("reactor line").1;
            for field in fields.split_whitespace() {
                let key = field.split_once('=').expect("field=value").0;
                keys.insert(format!("reactor_{key}"));
            }
        } else if let Some(rest) = line.strip_prefix("replica[") {
            let fields = rest.split_once("]: ").expect("replica line").1;
            for field in fields.split_whitespace() {
                let key = field.split_once('=').expect("field=value").0;
                keys.insert(format!("replica_{key}"));
            }
        } else if let Some(rest) = line.strip_prefix("unit[") {
            let fields = rest.split_once("]: ").expect("unit line").1;
            for field in fields.split_whitespace() {
                let key = field.split_once('=').expect("field=value").0;
                // Plaintext says `units=`, Prometheus `snn_unit_count`.
                let key = if key == "units" {
                    "unit_count".to_string()
                } else {
                    format!("unit_{key}")
                };
                keys.insert(key);
            }
        } else {
            let key = line.split_once(':').expect("key: value").0;
            keys.extend(normalize(key));
        }
    }
    keys
}

fn prometheus_key_set(prom: &str) -> BTreeSet<String> {
    prom.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.split(['{', ' ']).next().expect("metric name"))
        .filter_map(normalize)
        .collect()
}

/// The parity pin: every counter one STATS format exposes, the other
/// exposes too (modulo the mechanical `snn_`/`_total` naming and the
/// histogram bucket series).  A key added to one renderer but not the
/// other fails this diff with the exact missing names.
#[test]
fn stats_text_and_prometheus_enumerate_the_same_key_set() {
    let (model, inputs) = tiny_setup(2);
    // Two reactor shards so the per-shard `reactor[i]` lines and their
    // Prometheus label series are both multi-entry.
    let server = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        NetOptions {
            reactors: 2,
            ..traced_net_options(2, true)
        },
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    for input in &inputs {
        client.infer(input).unwrap();
    }

    let text_keys = text_key_set(&client.stats_text().unwrap());
    let prom_keys = prometheus_key_set(&client.stats_prometheus().unwrap());
    let only_text: Vec<&String> = text_keys.difference(&prom_keys).collect();
    let only_prom: Vec<&String> = prom_keys.difference(&text_keys).collect();
    assert!(
        only_text.is_empty() && only_prom.is_empty(),
        "exposition formats diverge — text-only: {only_text:?}, prometheus-only: {only_prom:?}"
    );
    server.shutdown();
}
