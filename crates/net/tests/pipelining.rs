//! Pipelined-connection tests for the reactor front-end.
//!
//! The pins: N interleaved INFER frames on **one** connection come back as
//! N SCORES frames whose request ids correlate each reply to its request
//! and whose logits are bit-identical to sequential in-process
//! `StreamServer::submit` calls (property-tested over N and input
//! mixtures); a connection that never reads its replies stalls only
//! itself — the reactor keeps serving every other connection; and the
//! connection pool recycles healthy connections.

use proptest::prelude::*;
use snn_accel::config::AcceleratorConfig;
use snn_accel::serve::StreamServer;
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::zoo;
use snn_net::protocol::Frame;
use snn_net::{NetClient, NetOptions, NetPool, NetServer};
use snn_tensor::Tensor;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;

/// One shared server + oracle for every test in this file: the model
/// compiles once, and the expected logits per input come from sequential
/// in-process submissions (the reference the wire must match bit-for-bit).
struct Setup {
    /// Kept alive for the whole test binary; the reactor serves every
    /// case.
    _server: NetServer,
    addr: SocketAddr,
    inputs: Vec<Tensor<f32>>,
    expected: Vec<Vec<i64>>,
}

fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 11).unwrap();
        let inputs: Vec<Tensor<f32>> = (0..4)
            .map(|i| {
                let values: Vec<f32> = (0..144)
                    .map(|j| ((i * 31 + j * 7) % 100) as f32 / 100.0)
                    .collect();
                Tensor::from_vec(vec![1, 12, 12], values).unwrap()
            })
            .collect();
        let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
        let model = convert(
            &net,
            &params,
            &stats,
            ConversionConfig {
                weight_bits: 3,
                time_steps: 3,
            },
        )
        .unwrap();
        let config = AcceleratorConfig::default();
        let in_process = StreamServer::start(config, model.clone()).unwrap();
        let expected: Vec<Vec<i64>> = inputs
            .iter()
            .map(|input| {
                in_process
                    .submit(input.clone())
                    .unwrap()
                    .wait()
                    .unwrap()
                    .logits
            })
            .collect();
        in_process.shutdown();
        let server = NetServer::bind("127.0.0.1:0", config, model, NetOptions::default()).unwrap();
        let addr = server.local_addr();
        Setup {
            _server: server,
            addr,
            inputs,
            expected,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// N interleaved in-flight requests on one connection (N spans the
    /// acceptance floor of 8) return N correctly-correlated SCORES with
    /// logits bit-identical to the sequential oracle.
    #[test]
    fn n_pipelined_requests_correlate_and_match_the_oracle(
        n in 1usize..=12,
        mix_seed in 0u64..10_000,
    ) {
        let setup = setup();
        // A seed-chosen mixture of distinct inputs: correlation bugs
        // cannot hide behind identical logits.
        let picks: Vec<usize> = (0..n)
            .map(|i| ((mix_seed as usize).wrapping_mul(31).wrapping_add(i * 7)) % setup.inputs.len())
            .collect();
        let batch: Vec<Tensor<f32>> =
            picks.iter().map(|&p| setup.inputs[p].clone()).collect();
        let mut client = NetClient::connect(setup.addr).unwrap();
        let replies = client.infer_many(&batch).unwrap();
        prop_assert_eq!(replies.len(), n);
        for (reply, &pick) in replies.iter().zip(&picks) {
            let scores = reply.as_ref().expect("pipelined inference succeeds");
            prop_assert_eq!(
                &scores.logits,
                &setup.expected[pick],
                "reply correlated to the wrong request or wrong logits"
            );
        }
    }
}

/// A peer that pipelines a backlog and then never reads must not stall
/// anyone else: while its replies sit unread, a second connection is
/// served start-to-finish, and the stalled peer's replies are all intact
/// once it finally reads.
#[test]
fn a_stalled_reader_never_blocks_other_connections() {
    let setup = setup();
    const BACKLOG: usize = 24;
    // The slow reader: hand-rolled framing, writes its whole backlog,
    // reads nothing yet.
    let mut slow = TcpStream::connect(setup.addr).unwrap();
    slow.set_nodelay(true).unwrap();
    let mut burst = Vec::new();
    for id in 0..BACKLOG as u64 {
        let request = snn_net::protocol::InferRequest::from_tensor(
            id,
            &setup.inputs[(id as usize) % setup.inputs.len()],
        );
        burst.extend_from_slice(&Frame::Infer(request).encode());
    }
    slow.write_all(&burst).unwrap();
    slow.flush().unwrap();

    // Meanwhile a healthy connection is served promptly, repeatedly.
    let mut healthy = NetClient::connect(setup.addr).unwrap();
    for round in 0..4 {
        let pick = round % setup.inputs.len();
        let reply = healthy
            .infer(&setup.inputs[pick])
            .expect("the healthy connection must be served while the slow reader stalls");
        assert_eq!(reply.logits, setup.expected[pick]);
    }

    // The slow reader finally reads: every reply arrived, correlated and
    // bit-identical, despite the stall.
    slow.set_read_timeout(Some(std::time::Duration::from_secs(60)))
        .unwrap();
    let mut seen = [false; BACKLOG];
    let mut buf: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 8192];
    while seen.iter().any(|&s| !s) {
        if let Some((frame, used)) = Frame::decode(&buf).unwrap() {
            buf.drain(..used);
            match frame {
                Frame::Scores(reply) => {
                    let id = reply.request_id as usize;
                    assert!(id < BACKLOG, "unknown request id {id}");
                    assert!(!seen[id], "request id {id} answered twice");
                    seen[id] = true;
                    assert_eq!(
                        reply.logits,
                        setup.expected[id % setup.inputs.len()],
                        "request {id}: logits must be bit-identical"
                    );
                }
                other => panic!("unexpected frame for the slow reader: {other:?}"),
            }
            continue;
        }
        let n = std::io::Read::read(&mut slow, &mut scratch).unwrap();
        assert!(n > 0, "server closed before all replies were read");
        buf.extend_from_slice(&scratch[..n]);
    }
}

/// The connection pool hands out warm connections, recycles healthy ones
/// and serves concurrent borrowers.
#[test]
fn pool_recycles_connections_and_serves_concurrent_borrowers() {
    let setup = setup();
    let pool = NetPool::connect(setup.addr, snn_net::client::PoolOptions::default()).unwrap();
    assert_eq!(pool.idle_connections(), 1, "the probe connection is warm");
    // Sequential use recycles the single warm connection.
    for round in 0..3 {
        let pick = round % setup.inputs.len();
        let reply = pool.infer(&setup.inputs[pick]).unwrap();
        assert_eq!(reply.logits, setup.expected[pick]);
        assert_eq!(pool.idle_connections(), 1, "healthy connection recycled");
    }
    // Concurrent borrowers: the pool dials extra connections on demand.
    std::thread::scope(|scope| {
        for worker in 0..3usize {
            let pool = &pool;
            scope.spawn(move || {
                let pick = worker % setup.inputs.len();
                let replies = pool
                    .infer_many(&[setup.inputs[pick].clone(), setup.inputs[pick].clone()])
                    .unwrap();
                for reply in replies {
                    assert_eq!(reply.unwrap().logits, setup.expected[pick]);
                }
            });
        }
    });
    assert!(
        pool.idle_connections() >= 1 && pool.idle_connections() <= 3,
        "concurrent borrowers return their connections"
    );
}
