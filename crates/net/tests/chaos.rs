//! Chaos suite: loopback serving under seeded fault schedules (compiled
//! only with the `fault-injection` feature).
//!
//! The supervision invariant every schedule pins: **every request ends in
//! bit-exact SCORES or a typed error frame — never a hang, never a
//! process panic — and the server keeps serving afterwards.**  Four
//! escalating schedules:
//!
//! * recoverable transport faults (short I/O, EAGAIN, EINTR, delayed
//!   readiness, dropped wake bytes) — replies must stay bit-exact;
//! * an engine panic mid-batch (a poison-pill input) — the panic is
//!   isolated to its own request, siblings and later requests are exact;
//! * expired request deadlines — shed *before compute* with a typed
//!   DEADLINE rejection and a `deadline_sheds` counter to show for it;
//! * connection resets — the reset connection's requests may fail with
//!   transport errors, but a fresh connection is served exactly.
//!
//! The schedule seed is proptest-generated and can be pinned with the
//! `SNN_CHAOS_SEED` environment variable (CI sweeps several fixed seeds).
//! The fault injector is process-global, so every test takes [`chaos_lock`]
//! around its schedule.

#![cfg(feature = "fault-injection")]

use proptest::prelude::*;
use snn_accel::config::AcceleratorConfig;
use snn_accel::serve::{poison, StreamServer};
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::zoo;
use snn_net::protocol::{error_code, reject_scope};
use snn_net::{fault, NetClient, NetError, NetOptions, NetServer};
use snn_tensor::Tensor;
use std::net::SocketAddr;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// One shared server + oracle for the whole binary, like the pipelining
/// suite: the model compiles once and the expected logits come from
/// sequential in-process submissions.
struct Setup {
    server: NetServer,
    addr: SocketAddr,
    inputs: Vec<Tensor<f32>>,
    expected: Vec<Vec<i64>>,
}

fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 11).unwrap();
        let inputs: Vec<Tensor<f32>> = (0..4)
            .map(|i| {
                let values: Vec<f32> = (0..144)
                    .map(|j| ((i * 31 + j * 7) % 100) as f32 / 100.0)
                    .collect();
                Tensor::from_vec(vec![1, 12, 12], values).unwrap()
            })
            .collect();
        let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
        let model = convert(
            &net,
            &params,
            &stats,
            ConversionConfig {
                weight_bits: 3,
                time_steps: 3,
            },
        )
        .unwrap();
        let config = AcceleratorConfig::default();
        let in_process = StreamServer::start(config, model.clone()).unwrap();
        let expected: Vec<Vec<i64>> = inputs
            .iter()
            .map(|input| {
                in_process
                    .submit(input.clone())
                    .unwrap()
                    .wait()
                    .unwrap()
                    .logits
            })
            .collect();
        in_process.shutdown();
        let server = NetServer::bind("127.0.0.1:0", config, model, NetOptions::default()).unwrap();
        let addr = server.local_addr();
        Setup {
            server,
            addr,
            inputs,
            expected,
        }
    })
}

/// The injector is process-global; every schedule holds this lock from
/// install to clear so concurrent tests cannot cross-arm each other.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    // A previous test panicking mid-schedule must not wedge the rest.
    match LOCK.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Disarms the plan on every exit path (panic included), so one failing
/// schedule cannot leave the shared server faulted for its successors.
struct ArmedPlan;

impl ArmedPlan {
    fn install(plan: fault::FaultPlan) -> Self {
        fault::install(plan);
        ArmedPlan
    }
}

impl Drop for ArmedPlan {
    fn drop(&mut self) {
        fault::clear();
    }
}

/// The schedule seed: `SNN_CHAOS_SEED` when set (CI sweeps fixed seeds),
/// otherwise the proptest-generated default.
fn chaos_seed(default: u64) -> u64 {
    std::env::var("SNN_CHAOS_SEED")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(default)
}

/// Reads a `key: value` counter out of the plaintext stats body.
fn counter(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|line| line.strip_prefix(&format!("{key}: ")))
        .unwrap_or_else(|| panic!("stats body missing {key:?}:\n{stats}"))
        .trim()
        .parse()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Under a schedule of recoverable transport faults, a pipelined batch
    /// resolves completely and **bit-exactly** — short reads reassemble,
    /// EAGAIN/EINTR retry, dropped wakes are covered by the poll-interval
    /// drain — and the schedule demonstrably fired.
    #[test]
    fn recoverable_fault_schedules_preserve_bit_exactness(
        seed in 0u64..10_000,
        n in 4usize..=10,
    ) {
        let setup = setup();
        let _serial = chaos_lock();
        let _plan = ArmedPlan::install(fault::FaultPlan::recoverable(chaos_seed(seed)));
        let picks: Vec<usize> = (0..n).map(|i| (seed as usize + i * 13) % setup.inputs.len()).collect();
        let batch: Vec<Tensor<f32>> = picks.iter().map(|&p| setup.inputs[p].clone()).collect();
        let mut client = NetClient::connect(setup.addr).unwrap();
        let replies = client.infer_many(&batch).unwrap();
        prop_assert_eq!(replies.len(), n);
        for (reply, &pick) in replies.iter().zip(&picks) {
            let scores = reply.as_ref().expect("recoverable faults must not fail a request");
            prop_assert_eq!(&scores.logits, &setup.expected[pick]);
        }
        prop_assert!(
            fault::injected_count() > 0,
            "an aggressive schedule that injected nothing proves nothing"
        );
        prop_assert!(setup.server.is_healthy());
    }
}

/// An input that panics the execution engine mid-batch fails **only its
/// own request** with a typed ENGINE_PANIC error frame: pipelined siblings
/// come back bit-exact, the server's panic counter ticks, and the very
/// next inference on a fresh connection is served exactly — the reactor
/// never saw the panic.
#[test]
fn an_engine_panic_fails_one_request_and_the_server_keeps_serving() {
    let setup = setup();
    let _serial = chaos_lock();
    let mut poisoned = setup.inputs[0].clone();
    poisoned.as_mut_slice()[0] = poison::pill();
    let batch = vec![setup.inputs[1].clone(), poisoned, setup.inputs[2].clone()];
    let mut client = NetClient::connect(setup.addr).unwrap();
    let replies = client.infer_many(&batch).unwrap();
    assert_eq!(replies.len(), 3);
    assert_eq!(
        replies[0].as_ref().unwrap().logits,
        setup.expected[1],
        "sibling before the poison pill must be exact"
    );
    match &replies[1] {
        Err(NetError::Remote { code, message }) => {
            assert_eq!(*code, error_code::ENGINE_PANIC, "typed panic code");
            assert!(
                message.contains("panic"),
                "the frame names the panic: {message}"
            );
        }
        other => panic!("poisoned request must fail with ENGINE_PANIC, got {other:?}"),
    }
    assert_eq!(
        replies[2].as_ref().unwrap().logits,
        setup.expected[2],
        "sibling after the poison pill must be exact"
    );
    // The connection survived (typed error frames do not poison it), the
    // panic counter ticked, and fresh traffic is served exactly.
    let stats = client.stats_text().unwrap();
    assert!(counter(&stats, "panics") >= 1, "panics counter must tick");
    let mut fresh = NetClient::connect(setup.addr).unwrap();
    let reply = fresh.infer(&setup.inputs[3]).unwrap();
    assert_eq!(reply.logits, setup.expected[3]);
    assert!(setup.server.is_healthy(), "the reactor never saw the panic");
}

/// A request whose queue-wait deadline has already expired is shed
/// **before compute**: the reply is a typed REJECTED frame with scope
/// `deadline` plus a retry hint, the `deadline_sheds` counter ticks, and
/// deadline-free traffic on the same server is untouched.
#[test]
fn expired_deadlines_shed_before_compute_with_a_typed_rejection() {
    let setup = setup();
    let _serial = chaos_lock();
    let mut client = NetClient::connect(setup.addr).unwrap();
    // Deadline zero: expired the moment the dispatcher looks at it.
    let replies = client
        .infer_many_within(&[setup.inputs[0].clone()], Some(0))
        .unwrap();
    match &replies[0] {
        Err(NetError::Rejected(reply)) => {
            assert_eq!(reply.scope, reject_scope::DEADLINE, "typed deadline scope");
            assert!(reply.retry_after_ms >= 1, "a shed always hints a retry");
        }
        other => panic!("expired deadline must be shed with REJECTED, got {other:?}"),
    }
    let stats = client.stats_text().unwrap();
    assert!(
        counter(&stats, "deadline_sheds") >= 1,
        "deadline_sheds must tick"
    );
    // Generous deadlines and deadline-free requests still complete
    // exactly on the same connection.
    let replies = client
        .infer_many_within(&[setup.inputs[1].clone()], Some(60_000))
        .unwrap();
    assert_eq!(replies[0].as_ref().unwrap().logits, setup.expected[1]);
    let reply = client.infer(&setup.inputs[2]).unwrap();
    assert_eq!(reply.logits, setup.expected[2]);
}

/// The replica-death schedule: a kill-pill input unwinds one replica's
/// whole dispatcher mid-storm.  The pins: the storm never hangs — every
/// request ends in bit-exact SCORES or a typed REPLICA_DOWN error frame;
/// at least the pill's own request is stranded; afterwards the server is
/// *healthy but degraded* (`replicas_healthy: 1`, `is_healthy()` true),
/// fresh traffic is rerouted to the surviving replica and served exactly,
/// and the final stats show exactly one dead replica with an empty queue.
#[test]
fn a_replica_kill_mid_storm_strands_only_its_requests_and_degrades_the_server() {
    let setup = setup();
    let _serial = chaos_lock();
    // A dedicated two-replica server: killing a replica is permanent, so
    // the shared singleton cannot be used.
    let net = zoo::tiny_cnn();
    let params = Parameters::he_init(&net, 11).unwrap();
    let stats = CalibrationStats::collect(&net, &params, setup.inputs.iter()).unwrap();
    let model = convert(
        &net,
        &params,
        &stats,
        ConversionConfig {
            weight_bits: 3,
            time_steps: 3,
        },
    )
    .unwrap();
    let server = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        NetOptions {
            server: snn_accel::serve::ServerOptions {
                replicas: 2,
                ..snn_accel::serve::ServerOptions::default()
            },
            ..NetOptions::default()
        },
    )
    .unwrap();
    let oracle: Vec<Vec<i64>> = setup.expected.clone();

    // The storm: a pipelined burst with the kill pill in the middle, so
    // requests are in flight on both replicas when one dies.
    let mut killer = setup.inputs[0].clone();
    killer.as_mut_slice()[0] = poison::kill_pill();
    let picks: Vec<usize> = (0..10).map(|i| i % setup.inputs.len()).collect();
    let mut batch: Vec<Tensor<f32>> = picks.iter().map(|&p| setup.inputs[p].clone()).collect();
    batch.insert(5, killer);

    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let replies = client.infer_many(&batch).unwrap();
    assert_eq!(replies.len(), batch.len(), "every request must settle");
    let mut stranded = 0usize;
    for (slot, reply) in replies.iter().enumerate() {
        match reply {
            Ok(scores) => {
                let pick = if slot < 5 {
                    picks[slot]
                } else {
                    picks[slot - 1]
                };
                assert_eq!(
                    scores.logits, oracle[pick],
                    "request {slot}: a served reply must stay bit-exact through the kill"
                );
                assert!(slot != 5, "the kill pill itself can never be served");
            }
            Err(NetError::Remote { code, message }) => {
                assert_eq!(
                    *code,
                    error_code::REPLICA_DOWN,
                    "request {slot}: the only admissible failure is a typed \
                     REPLICA_DOWN, got {message:?}"
                );
                assert!(
                    message.contains("replica") && message.contains("down"),
                    "the frame names the dead replica: {message}"
                );
                stranded += 1;
            }
            Err(other) => panic!("request {slot}: unexpected error class: {other}"),
        }
    }
    assert!(
        stranded >= 1,
        "at least the kill pill's own request is stranded"
    );

    // Healthy but degraded: the survivor serves, the scrape says so.
    assert!(
        server.is_healthy(),
        "one dead replica must not fail the whole server"
    );
    let text = client.stats_text().unwrap();
    assert_eq!(counter(&text, "replicas"), 2);
    assert_eq!(counter(&text, "replicas_healthy"), 1);

    // Rerouting: fresh traffic lands on the survivor and stays bit-exact.
    let mut fresh = NetClient::connect(server.local_addr()).unwrap();
    for (pick, expected) in oracle.iter().enumerate() {
        let reply = fresh.infer(&setup.inputs[pick]).unwrap();
        assert_eq!(reply.logits, *expected);
    }

    // The final snapshot: exactly one dead replica, drained to empty.
    let final_stats = server.shutdown();
    assert_eq!(final_stats.server.replicas, 2);
    assert_eq!(final_stats.server.healthy_replicas, 1);
    let dead: Vec<_> = final_stats
        .server
        .per_replica
        .iter()
        .filter(|r| !r.healthy)
        .collect();
    assert_eq!(dead.len(), 1, "exactly one replica died");
    assert_eq!(
        dead[0].queue.depth, 0,
        "the dead replica's queue was drained, not leaked"
    );
}

/// Connection resets are the destructive schedule: requests riding a reset
/// connection may fail with transport errors (typed, never hangs), but the
/// server itself must shrug them off — once the plan is disarmed, a fresh
/// connection is served bit-exactly.
#[test]
fn connection_resets_kill_connections_not_the_server() {
    let setup = setup();
    let _serial = chaos_lock();
    {
        let _plan =
            ArmedPlan::install(fault::FaultPlan::recoverable(chaos_seed(77)).with_resets(120));
        for round in 0..6usize {
            let pick = round % setup.inputs.len();
            let mut client = match NetClient::connect(setup.addr) {
                Ok(client) => client,
                // The accept path itself may be reset; that is the fault
                // biting, not a failure of the invariant.
                Err(_) => continue,
            };
            // Keep a wedged exchange bounded: a reset mid-reply surfaces
            // as a typed timeout at worst.
            client
                .set_reply_timeout(std::time::Duration::from_secs(5))
                .unwrap();
            match client.infer(&setup.inputs[pick]) {
                Ok(reply) => assert_eq!(
                    reply.logits, setup.expected[pick],
                    "a reply that does arrive is still exact"
                ),
                Err(
                    NetError::Io(_)
                    | NetError::Disconnected
                    | NetError::Timeout { .. }
                    | NetError::Protocol(_),
                ) => {}
                Err(other) => panic!("unexpected error class under resets: {other}"),
            }
        }
    }
    // Plan disarmed: the server must still be fully alive and exact.
    let mut fresh = NetClient::connect(setup.addr).unwrap();
    let reply = fresh.infer(&setup.inputs[0]).unwrap();
    assert_eq!(reply.logits, setup.expected[0]);
    assert!(
        setup.server.is_healthy(),
        "resets must never kill the reactor"
    );
}
