//! Property tests for [`BackoffPolicy`]: every delay the policy can emit
//! stays inside its declared bounds, schedules are a pure function of the
//! seed, and a server's retry-after hint is honoured as a floor — the
//! client never comes back earlier than half the hinted ceiling.

use proptest::prelude::*;
use snn_net::BackoffPolicy;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the inputs, a delay is within `1..=cap_ms` — the policy
    /// can neither busy-retry (zero sleep) nor exceed its cap.
    #[test]
    fn delays_stay_within_one_and_the_cap(
        base_ms in 1u64..10_000,
        cap_ms in 1u64..120_000,
        seed in 0u64..u64::MAX,
        attempt in 1usize..64,
        hint_draw in 0u64..400_000,
    ) {
        let policy = BackoffPolicy { base_ms, cap_ms, seed };
        // Upper half of the draw means "no hint from the server".
        let hint = (hint_draw < 200_000).then_some(hint_draw);
        let delay = policy.delay_ms(attempt, hint);
        prop_assert!(delay >= 1, "zero sleep would hammer the server");
        prop_assert!(
            delay <= cap_ms,
            "delay {delay} above cap {cap_ms} (attempt {attempt}, hint {hint:?})"
        );
    }

    /// The schedule is deterministic per `(policy, attempt, hint)` and
    /// distinct seeds decorrelate: two clients shed together do not sleep
    /// in lock-step.
    #[test]
    fn schedules_are_deterministic_per_seed(
        seed in 0u64..u64::MAX,
        hint in 10u64..10_000,
    ) {
        let policy = BackoffPolicy { base_ms: 25, cap_ms: 60_000, seed };
        let schedule: Vec<u64> = (1..=8).map(|a| policy.delay_ms(a, Some(hint))).collect();
        let replay: Vec<u64> = (1..=8).map(|a| policy.delay_ms(a, Some(hint))).collect();
        // Same seed must replay exactly; adjacent seeds must decorrelate.
        prop_assert_eq!(&schedule, &replay);
        let other = BackoffPolicy { seed: seed.wrapping_add(1), ..policy };
        let shifted: Vec<u64> = (1..=8).map(|a| other.delay_ms(a, Some(hint))).collect();
        prop_assert_ne!(&schedule, &shifted);
    }

    /// A server hint is a **floor**, not a suggestion: the first retry
    /// sleeps at least half the hinted ceiling (equal-jitter) and never
    /// more than the hint itself, and later attempts only back off
    /// further (their ceilings double from the hint).
    #[test]
    fn server_hints_floor_the_schedule(
        hint in 2u64..50_000,
        seed in 0u64..u64::MAX,
        attempt in 1usize..16,
    ) {
        let policy = BackoffPolicy { base_ms: 1, cap_ms: 1 << 40, seed };
        let first = policy.delay_ms(1, Some(hint));
        prop_assert!(
            (hint / 2..=hint).contains(&first),
            "first retry {first} outside [{}, {hint}]",
            hint / 2
        );
        let later = policy.delay_ms(attempt, Some(hint));
        prop_assert!(
            later >= hint / 2,
            "attempt {attempt} slept {later}, below the hinted floor {}",
            hint / 2
        );
    }
}
