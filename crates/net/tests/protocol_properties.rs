//! Property tests for the frame codec: encoding and decoding are inverse,
//! and arbitrary malformed, truncated or corrupted byte streams yield typed
//! protocol errors (or a request for more bytes) — never panics, hangs or
//! unbounded buffering.

use proptest::prelude::*;
use snn_net::protocol::{
    error_code, infer_flags, reject_scope, ErrorReply, Frame, InferRequest, ProtocolError,
    RejectReply, ScoreReply, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION,
};

/// Deterministic pseudo-random f32 in [0, 1) from an index and seed.
fn value(i: usize, seed: u64) -> f32 {
    (((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 997) as f32) / 997.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn infer_frames_round_trip(
        rank in 1usize..5,
        dim in 1usize..6,
        flags in 0u32..8,
        deadline_draw in 0u32..240_000,
        request_id in 0u64..u64::MAX,
        seed in 0u64..10_000,
    ) {
        // Upper half of the draw means "no deadline" — half the cases
        // exercise the version-3 trailing word, half the bare payload.
        let deadline_ms = (deadline_draw < 120_000).then_some(deadline_draw);
        let shape: Vec<u32> = (0..rank).map(|r| ((dim + r) % 5 + 1) as u32).collect();
        let volume: usize = shape.iter().map(|&d| d as usize).product();
        // HAS_DEADLINE is derived from `deadline_ms` at encode time and
        // stripped back out at decode, so the caller-visible flags never
        // carry it.
        let frame = Frame::Infer(InferRequest {
            request_id,
            flags: flags & !infer_flags::HAS_DEADLINE,
            deadline_ms,
            shape,
            values: (0..volume).map(|i| value(i, seed)).collect(),
        });
        let bytes = frame.encode();
        let (decoded, used) = Frame::decode(&bytes).unwrap().expect("complete frame");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn reply_frames_round_trip(
        prediction in 0u32..100,
        time_steps in 1u32..9,
        cycles in 0u64..1_000_000_000,
        logit_count in 0usize..16,
        seed in 0u64..10_000,
        retry in 0u64..100_000,
        request_id in 0u64..u64::MAX,
        format in 0u8..=1u8,
    ) {
        let frames = [
            Frame::Scores(ScoreReply {
                request_id,
                prediction,
                time_steps,
                thread_budget: 2,
                total_cycles: cycles,
                logits: (0..logit_count)
                    .map(|i| (value(i, seed) * 2_000_000.0) as i64 - 1_000_000)
                    .collect(),
            }),
            Frame::Rejected(RejectReply {
                request_id,
                scope: reject_scope::QUEUE,
                queued: cycles % 1024,
                capacity: 1024,
                retry_after_ms: retry,
                drain_rate_mips: cycles % 9_999_999,
            }),
            Frame::Error(ErrorReply {
                request_id,
                code: error_code::BAD_REQUEST,
                message: format!("seed {seed} says no"),
            }),
            Frame::StatsRequest { format },
            Frame::StatsText(format!("completed: {cycles}\nrejected: {retry}\n")),
        ];
        for frame in frames {
            let bytes = frame.encode();
            let (decoded, used) = Frame::decode(&bytes).unwrap().expect("complete frame");
            prop_assert_eq!(used, bytes.len());
            prop_assert_eq!(decoded, frame);
        }
    }

    /// Any strict prefix of a valid frame asks for more bytes — it never
    /// parses to a frame and never errors, so a slow sender cannot confuse
    /// the connection loop.
    #[test]
    fn truncated_frames_ask_for_more_bytes(
        logit_count in 0usize..8,
        cut_seed in 0u64..10_000,
    ) {
        let bytes = Frame::Scores(ScoreReply {
            request_id: 77,
            prediction: 1,
            time_steps: 4,
            thread_budget: 2,
            total_cycles: 99,
            logits: (0..logit_count).map(|i| i as i64 * 3 - 7).collect(),
        })
        .encode();
        let cut = (cut_seed as usize) % bytes.len();
        prop_assert_eq!(Frame::decode(&bytes[..cut]).unwrap(), None);
    }

    /// Arbitrary bytes never panic the decoder, and whatever it consumes
    /// stays within the buffer.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255u8, 0..64)) {
        match Frame::decode(&bytes) {
            Ok(Some((_frame, used))) => prop_assert!(used <= bytes.len()),
            Ok(None) => {}
            Err(_) => {}
        }
    }

    /// Flipping any single byte of a valid frame either still decodes (the
    /// flip hit a don't-care bit of a value field) or yields a typed error
    /// or a request for more bytes — never a panic.
    #[test]
    fn single_byte_corruption_never_panics(
        pos_seed in 0u64..10_000,
        flip in 1u8..=255u8,
    ) {
        let mut bytes = Frame::Infer(InferRequest {
            request_id: 5,
            flags: 0,
            deadline_ms: Some(40),
            shape: vec![2, 3],
            values: (0..6).map(|i| value(i, 42)).collect(),
        })
        .encode();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= flip;
        match Frame::decode(&bytes) {
            Ok(Some((_frame, used))) => prop_assert!(used <= bytes.len()),
            Ok(None) => {}
            Err(_) => {}
        }
    }

    /// A header that declares an oversized payload is rejected from the
    /// header alone — no amount of trailing data is ever awaited.
    #[test]
    fn oversized_headers_error_before_any_payload(extra in 0u64..u32::MAX as u64 - MAX_PAYLOAD as u64) {
        let declared = (MAX_PAYLOAD as u64 + 1 + extra) as u32;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&1u16.to_le_bytes());
        header.extend_from_slice(&declared.to_le_bytes());
        let oversized = matches!(
            Frame::decode(&header),
            Err(ProtocolError::Oversized { .. })
        );
        prop_assert!(oversized);
    }
}
