//! Sharded-reactor loopback suite: with the front-end split into N
//! reactor shards, results must be indistinguishable from the
//! single-reactor server — scores stay bit-identical to the in-process
//! `StreamServer::submit` on **both** readiness backends — while the
//! sharding itself is visible in the per-reactor stats (round-robin
//! accept distribution, handoff counts) and the global connection cap
//! holds exactly across shards.  Also pins the edge-trigger starvation
//! regression: a socket whose readable bytes outlast one fairness burst
//! must be re-served from the reactor's hot list, because epoll will
//! never re-report the edge.

use snn_accel::config::AcceleratorConfig;
use snn_accel::serve::StreamServer;
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::snn::SnnModel;
use snn_model::zoo;
use snn_net::protocol::reject_scope;
use snn_net::{NetClient, NetError, NetOptions, NetServer, ReactorBackend};
use snn_tensor::Tensor;
use std::time::Duration;

fn tiny_setup(count: usize) -> (SnnModel, Vec<Tensor<f32>>) {
    let net = zoo::tiny_cnn();
    let params = Parameters::he_init(&net, 19).unwrap();
    let inputs: Vec<Tensor<f32>> = (0..count)
        .map(|i| {
            let values: Vec<f32> = (0..144)
                .map(|j| ((i * 23 + j * 3) % 100) as f32 / 100.0)
                .collect();
            Tensor::from_vec(vec![1, 12, 12], values).unwrap()
        })
        .collect();
    let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
    let model = convert(
        &net,
        &params,
        &stats,
        ConversionConfig {
            weight_bits: 3,
            time_steps: 3,
        },
    )
    .unwrap();
    (model, inputs)
}

fn sharded_options(reactors: usize, backend: ReactorBackend) -> NetOptions {
    NetOptions {
        reactors,
        backend,
        poll_interval: Duration::from_millis(5),
        ..NetOptions::default()
    }
}

/// The sharding exactness pin: three reactor shards serving three
/// concurrent connections (so every shard owns one) return logits
/// bit-identical to the in-process submit — on the edge-triggered epoll
/// backend *and* the level-triggered poll fallback.
#[test]
fn sharded_scores_match_in_process_submit_on_both_backends() {
    let (model, inputs) = tiny_setup(4);
    let config = AcceleratorConfig::default();
    let in_process = StreamServer::start(config, model.clone()).unwrap();
    for backend in [ReactorBackend::Epoll, ReactorBackend::Poll] {
        let server = NetServer::bind(
            "127.0.0.1:0",
            config,
            model.clone(),
            sharded_options(3, backend),
        )
        .unwrap();
        // Three live connections: round-robin places one on each shard.
        let mut clients: Vec<NetClient> = (0..3)
            .map(|_| NetClient::connect(server.local_addr()).unwrap())
            .collect();
        for (i, input) in inputs.iter().enumerate() {
            let client = &mut clients[i % 3];
            let wire = client.infer(input).unwrap();
            let solo = in_process.submit(input.clone()).unwrap().wait().unwrap();
            assert_eq!(
                wire.logits, solo.logits,
                "logits must be bit-identical under sharding ({backend:?})"
            );
            assert_eq!(wire.prediction as usize, solo.prediction);
            assert_eq!(wire.total_cycles, solo.total_cycles());
        }
        let stats = server.stats();
        assert_eq!(stats.reactors, 3);
        assert_eq!(stats.reactors_alive, 3);
        assert_eq!(stats.per_reactor.len(), 3);
        // Round-robin: every shard got exactly one of the three
        // connections, and the non-accepting shards got theirs by handoff.
        for reactor in &stats.per_reactor {
            assert_eq!(
                reactor.accepted, 1,
                "round-robin must spread 3 connections over 3 shards"
            );
            let expected_handoffs = u64::from(reactor.index != 0);
            assert_eq!(reactor.handoffs, expected_handoffs);
        }
        assert_eq!(stats.requests, inputs.len() as u64);
        drop(clients);
        server.shutdown();
    }
    in_process.shutdown();
}

/// Every shard reports the backend it actually runs on, and an explicit
/// `ReactorBackend::Poll` request is honoured per shard.
#[test]
fn per_reactor_stats_report_the_resolved_backend() {
    let (model, _) = tiny_setup(1);
    for (backend, expected) in [
        (ReactorBackend::Epoll, "epoll"),
        (ReactorBackend::Poll, "poll"),
    ] {
        let server = NetServer::bind(
            "127.0.0.1:0",
            AcceleratorConfig::default(),
            model.clone(),
            sharded_options(2, backend),
        )
        .unwrap();
        let stats = server.stats();
        assert_eq!(stats.per_reactor.len(), 2);
        for reactor in &stats.per_reactor {
            assert_eq!(reactor.backend, expected);
            assert!(reactor.alive);
        }
        server.shutdown();
    }
}

/// The connection cap is **global**: two shards collectively own at most
/// `max_connections` sockets, and the shed carries the global capacity —
/// sharding must not multiply the admission budget.
#[test]
fn connection_cap_is_shared_across_shards() {
    let (model, inputs) = tiny_setup(1);
    let server = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        NetOptions {
            max_connections: 2,
            ..sharded_options(2, ReactorBackend::Auto)
        },
    )
    .unwrap();
    let addr = server.local_addr();
    // Fill both slots; round-robin places one connection per shard.
    let mut first = NetClient::connect(addr).unwrap();
    first.infer(&inputs[0]).unwrap();
    let mut second = NetClient::connect(addr).unwrap();
    second.infer(&inputs[0]).unwrap();
    // The third connection must be shed with the *global* capacity, no
    // matter which shard would have received it.
    let mut third = NetClient::connect(addr).unwrap();
    match third.infer(&inputs[0]) {
        Err(NetError::Rejected(reply)) => {
            assert_eq!(reply.scope, reject_scope::CONNECTIONS);
            assert_eq!(reply.capacity, 2, "the cap is global, not per shard");
        }
        other => panic!("expected a connection-scope rejection, got {other:?}"),
    }
    // Freeing one slot readmits — the released reservation is visible to
    // the accepting shard regardless of which shard owned the connection.
    drop(first);
    let mut retry = NetClient::connect(addr).unwrap();
    let mut served = false;
    for _ in 0..100 {
        match retry.infer(&inputs[0]) {
            Ok(_) => {
                served = true;
                break;
            }
            Err(err) if err.is_backpressure() => {
                std::thread::sleep(Duration::from_millis(10));
                retry = NetClient::connect(addr).unwrap();
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(served, "a freed slot must readmit across shards");
    let stats = server.shutdown();
    assert!(stats.turned_away >= 1);
    assert_eq!(stats.server.errors, 0);
}

/// The edge-trigger starvation regression.  With a fairness burst far
/// smaller than the buffered request backlog, a pipelined burst arrives
/// as ONE readable edge whose bytes take many read rounds to drain —
/// epoll will never re-report the edge for the remainder, so every
/// request only completes if the reactor's hot list re-serves the
/// socket.  Before the hot list, this test hangs (the client times out
/// with most replies missing).
#[test]
fn tiny_read_burst_does_not_strand_pipelined_requests_under_edge_triggering() {
    let (model, inputs) = tiny_setup(2);
    let server = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        NetOptions {
            // One tiny_cnn INFER frame is ~600 bytes; 20 pipelined
            // requests are ~12 KiB buffered behind a single edge, drained
            // 64 bytes per round — hundreds of hot-list re-reads.
            read_burst: 64,
            ..sharded_options(1, ReactorBackend::Epoll)
        },
    )
    .unwrap();
    let batch: Vec<Tensor<f32>> = (0..20).map(|i| inputs[i % inputs.len()].clone()).collect();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let replies = client.infer_many(&batch).unwrap();
    assert_eq!(replies.len(), batch.len());
    for reply in &replies {
        reply
            .as_ref()
            .expect("no pipelined request may be stranded");
    }
    // A second burst on the same connection is a *new* edge on a socket
    // that was previously drained through the hot list — it must also be
    // served in full (the hot list must not have eaten the registration).
    let replies = client.infer_many(&batch).unwrap();
    for reply in &replies {
        reply.as_ref().expect("the second burst must be served too");
    }
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.requests, 2 * batch.len() as u64);
    assert_eq!(stats.server.completed, 2 * batch.len() as u64);
    assert_eq!(stats.protocol_errors, 0);
}

/// `read_burst == 0` can never make progress; bind must refuse it with a
/// typed config error rather than ship a server that spins.
#[test]
fn zero_read_burst_fails_bind_with_a_typed_error() {
    let (model, _) = tiny_setup(1);
    let err = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        NetOptions {
            read_burst: 0,
            ..NetOptions::default()
        },
    )
    .unwrap_err();
    assert!(
        matches!(
            &err,
            NetError::Accel(snn_accel::AccelError::InvalidConfig { context })
                if context.contains("read_burst")
        ),
        "expected a typed InvalidConfig, got {err:?}"
    );
}

/// A shard count above the connection cap is wasted threads; the resolver
/// clamps it so every shard can own at least one connection.
#[test]
fn reactor_count_is_clamped_to_the_connection_cap() {
    let (model, _) = tiny_setup(1);
    let server = NetServer::bind(
        "127.0.0.1:0",
        AcceleratorConfig::default(),
        model,
        NetOptions {
            reactors: 8,
            max_connections: 3,
            ..NetOptions::default()
        },
    )
    .unwrap();
    let stats = server.stats();
    assert_eq!(stats.reactors, 3);
    assert_eq!(stats.per_reactor.len(), 3);
    server.shutdown();
}
