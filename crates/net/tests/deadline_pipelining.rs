//! Protocol v3 deadline × request-id interplay under pipelining.
//!
//! One connection interleaves INFER frames that carry a
//! [`infer_flags::HAS_DEADLINE`] word with plain ones, all in flight at
//! once.  The pins, per request id: a zero queue-wait deadline is **always
//! shed before compute** with a REJECTED frame of scope
//! [`reject_scope::DEADLINE`] echoing that id; a generous deadline and no
//! deadline are always served with SCORES bit-identical to the sequential
//! in-process oracle; and no id is ever answered twice or answered with a
//! sibling's outcome, no matter how the replies interleave in completion
//! order.  The server runs two replica engines, so the deadlines also
//! prove out across the routing layer, not just a single queue.

use proptest::prelude::*;
use snn_accel::config::AcceleratorConfig;
use snn_accel::serve::{ServerOptions, StreamServer};
use snn_model::convert::{convert, CalibrationStats, ConversionConfig};
use snn_model::params::Parameters;
use snn_model::zoo;
use snn_net::protocol::{infer_flags, reject_scope, Frame, InferRequest};
use snn_net::{NetOptions, NetServer};
use snn_tensor::Tensor;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;

struct Setup {
    _server: NetServer,
    addr: SocketAddr,
    inputs: Vec<Tensor<f32>>,
    expected: Vec<Vec<i64>>,
}

fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let net = zoo::tiny_cnn();
        let params = Parameters::he_init(&net, 23).unwrap();
        let inputs: Vec<Tensor<f32>> = (0..4)
            .map(|i| {
                let values: Vec<f32> = (0..144)
                    .map(|j| ((i * 13 + j * 11) % 100) as f32 / 100.0)
                    .collect();
                Tensor::from_vec(vec![1, 12, 12], values).unwrap()
            })
            .collect();
        let stats = CalibrationStats::collect(&net, &params, inputs.iter()).unwrap();
        let model = convert(
            &net,
            &params,
            &stats,
            ConversionConfig {
                weight_bits: 3,
                time_steps: 3,
            },
        )
        .unwrap();
        let config = AcceleratorConfig::default();
        let in_process = StreamServer::start(config, model.clone()).unwrap();
        let expected: Vec<Vec<i64>> = inputs
            .iter()
            .map(|input| {
                in_process
                    .submit(input.clone())
                    .unwrap()
                    .wait()
                    .unwrap()
                    .logits
            })
            .collect();
        in_process.shutdown();
        let server = NetServer::bind(
            "127.0.0.1:0",
            config,
            model,
            NetOptions {
                server: ServerOptions {
                    replicas: 2,
                    ..ServerOptions::default()
                },
                ..NetOptions::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        Setup {
            _server: server,
            addr,
            inputs,
            expected,
        }
    })
}

/// The deadline shape of one pipelined request.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Plan {
    /// No HAS_DEADLINE flag: served under the server-wide policy.
    Plain,
    /// `deadline_ms = 0`: any queue wait exceeds it, so it is always shed
    /// before compute.
    Doomed,
    /// A one-minute deadline no test queue ever approaches: always served.
    Generous,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Interleaved HAS_DEADLINE and plain INFER frames on one connection:
    /// every request id gets exactly the outcome its own deadline dictates.
    #[test]
    fn per_request_deadlines_shed_and_serve_by_id_under_pipelining(
        kinds in proptest::collection::vec(0u8..3, 2..14),
        mix_seed in 0u64..10_000,
    ) {
        let setup = setup();
        let plans: Vec<Plan> = kinds.iter().map(|k| match k {
            0 => Plan::Plain,
            1 => Plan::Doomed,
            _ => Plan::Generous,
        }).collect();
        let picks: Vec<usize> = (0..plans.len())
            .map(|i| ((mix_seed as usize).wrapping_mul(37).wrapping_add(i * 5)) % setup.inputs.len())
            .collect();

        // One burst, all ids in flight at once.
        let mut conn = TcpStream::connect(setup.addr).unwrap();
        conn.set_nodelay(true).unwrap();
        let mut burst = Vec::new();
        for (id, plan) in plans.iter().enumerate() {
            let request = InferRequest::from_tensor(id as u64, &setup.inputs[picks[id]]);
            let request = match plan {
                Plan::Plain => request,
                Plan::Doomed => request.with_deadline(0),
                Plan::Generous => request.with_deadline(60_000),
            };
            // The wire carries the deadline as a flag bit + trailing word.
            let encoded = Frame::Infer(request).encode();
            if *plan == Plan::Plain {
                prop_assert_eq!(encoded[20] & infer_flags::HAS_DEADLINE as u8, 0);
            } else {
                prop_assert_ne!(encoded[20] & infer_flags::HAS_DEADLINE as u8, 0);
            }
            burst.extend_from_slice(&encoded);
        }
        conn.write_all(&burst).unwrap();
        conn.flush().unwrap();

        // Replies arrive in completion order; collect them all by id.
        conn.set_read_timeout(Some(std::time::Duration::from_secs(60))).unwrap();
        let mut outcomes: Vec<Option<Frame>> = vec![None; plans.len()];
        let mut pending = plans.len();
        let mut buf: Vec<u8> = Vec::new();
        let mut scratch = [0u8; 8192];
        while pending > 0 {
            if let Some((frame, used)) = Frame::decode(&buf).unwrap() {
                buf.drain(..used);
                let id = match &frame {
                    Frame::Scores(reply) => reply.request_id,
                    Frame::Rejected(reply) => reply.request_id,
                    other => {
                        return Err(TestCaseError::fail(format!("unexpected frame: {other:?}")))
                    }
                } as usize;
                prop_assert!(id < plans.len(), "unknown request id {}", id);
                prop_assert!(outcomes[id].is_none(), "request id {} answered twice", id);
                outcomes[id] = Some(frame);
                pending -= 1;
                continue;
            }
            let n = conn.read(&mut scratch).unwrap();
            prop_assert!(n > 0, "server closed before all replies arrived");
            buf.extend_from_slice(&scratch[..n]);
        }

        for (id, (plan, outcome)) in plans.iter().zip(&outcomes).enumerate() {
            match (plan, outcome.as_ref().unwrap()) {
                (Plan::Doomed, Frame::Rejected(reply)) => {
                    prop_assert_eq!(reply.scope, reject_scope::DEADLINE,
                        "request {}: a zero deadline sheds with DEADLINE scope", id);
                    prop_assert_eq!(reply.request_id, id as u64);
                }
                (Plan::Plain | Plan::Generous, Frame::Scores(reply)) => {
                    prop_assert_eq!(&reply.logits, &setup.expected[picks[id]],
                        "request {}: logits must match the sequential oracle", id);
                }
                (plan, other) => {
                    return Err(TestCaseError::fail(format!(
                        "request {id} ({plan:?}): unexpected outcome {other:?}"
                    )))
                }
            }
        }
    }
}
