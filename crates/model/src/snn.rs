//! The *functional* radix-encoded SNN.
//!
//! After ANN-to-SNN conversion ([`crate::convert`]), inference runs entirely
//! in the integer domain:
//!
//! * activations are stored as integer *levels* in `0..2^T - 1`, which is
//!   exactly the information carried by a radix-encoded spike train of
//!   length `T` (the level's binary expansion, most significant bit first);
//! * convolution / linear layers accumulate `weight_code × input_level`,
//!   which equals the sum over time steps of `weight_code × spike × 2^(T-1-t)`
//!   computed by the hardware's shift-and-accumulate output logic;
//! * after ReLU, the accumulator is *requantized* back to a `T`-bit level
//!   with a per-layer scale derived from activation calibration.
//!
//! The cycle-level accelerator simulator in `snn-accel` reproduces these
//! integer computations **bit-exactly**; the shared [`requantize`] function
//! guarantees both sides round identically.

use crate::layer::PoolKind;
use crate::{LayerSpec, ModelError, NetworkSpec, Result};
use serde::{Deserialize, Serialize};
use snn_encoding::radix::RadixEncoder;
use snn_tensor::{ops, Tensor};

/// One layer of a converted SNN model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SnnLayer {
    /// Radix-domain convolution.
    Conv {
        /// Quantized kernel codes `[O, C, K, K]`.
        weight_codes: Tensor<i64>,
        /// Bias pre-scaled into accumulator units `[O]`.
        bias_acc: Tensor<i64>,
        /// Convolution stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
        /// Requantization scale applied to the post-ReLU accumulator, or
        /// `None` for a classifier output layer.
        requant: Option<f32>,
    },
    /// Pooling on integer levels.
    Pool {
        /// Pooling flavour.
        kind: PoolKind,
        /// Window (and stride) size.
        window: usize,
    },
    /// Feature-map flattening (2-D → 1-D buffer transfer in hardware).
    Flatten,
    /// Radix-domain fully-connected layer.
    Linear {
        /// Quantized weight codes `[O, N]`.
        weight_codes: Tensor<i64>,
        /// Bias pre-scaled into accumulator units `[O]`.
        bias_acc: Tensor<i64>,
        /// Requantization scale, or `None` for the classifier output layer.
        requant: Option<f32>,
    },
}

/// A converted, quantized, radix-encoded SNN ready for the accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnnModel {
    spec: NetworkSpec,
    layers: Vec<SnnLayer>,
    time_steps: usize,
    weight_bits: u8,
}

/// Integer activations recorded while running the functional SNN.
#[derive(Debug, Clone, PartialEq)]
pub struct SnnTrace {
    /// The radix levels of the encoded input.
    pub input_levels: Tensor<i64>,
    /// Output levels (or raw logits for the final layer) of every layer.
    pub activations: Vec<Tensor<i64>>,
}

impl SnnTrace {
    /// The raw integer logits of the classifier layer.
    pub fn logits(&self) -> &Tensor<i64> {
        self.activations.last().expect("trace is never empty")
    }

    /// Index of the largest logit.
    pub fn predicted_class(&self) -> usize {
        self.logits()
            .iter()
            .enumerate()
            .fold(
                (0usize, i64::MIN),
                |(bi, bv), (i, &v)| {
                    if v > bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                },
            )
            .0
    }
}

/// Requantizes a post-ReLU accumulator value back into a `T`-bit activation
/// level.
///
/// This function is the single source of truth for the rounding behaviour;
/// the accelerator simulator calls it too, which is what makes the
/// cycle-level model bit-exact against the functional model.
pub fn requantize(acc: i64, requant: f32, max_level: i64) -> i64 {
    if acc <= 0 {
        return 0;
    }
    let scaled = (acc as f64 * requant as f64).round() as i64;
    scaled.clamp(0, max_level)
}

impl SnnModel {
    /// Assembles a converted model.  Normally called by
    /// [`crate::convert::convert`] rather than directly.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ParameterMismatch`] when the number of SNN
    /// layers does not match the network spec.
    pub fn new(
        spec: NetworkSpec,
        layers: Vec<SnnLayer>,
        time_steps: usize,
        weight_bits: u8,
    ) -> Result<Self> {
        if layers.len() != spec.layers().len() {
            return Err(ModelError::ParameterMismatch {
                context: format!(
                    "expected {} SNN layers, got {}",
                    spec.layers().len(),
                    layers.len()
                ),
            });
        }
        Ok(SnnModel {
            spec,
            layers,
            time_steps,
            weight_bits,
        })
    }

    /// The underlying network topology.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// The converted layers.
    pub fn layers(&self) -> &[SnnLayer] {
        &self.layers
    }

    /// Spike-train length `T`.
    pub fn time_steps(&self) -> usize {
        self.time_steps
    }

    /// Weight precision in bits (3 in the paper).
    pub fn weight_bits(&self) -> u8 {
        self.weight_bits
    }

    /// The largest activation level, `2^T - 1`.
    pub fn max_level(&self) -> i64 {
        (1i64 << self.time_steps) - 1
    }

    /// Encodes a `[0, 1]`-valued input feature map into radix levels.
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape does not match the network.
    pub fn encode_input(&self, input: &Tensor<f32>) -> Result<Tensor<i64>> {
        if input.shape().dims() != self.spec.input_shape() {
            return Err(ModelError::ShapeMismatch {
                layer: 0,
                context: format!(
                    "input shape {:?} does not match network input {:?}",
                    input.shape().dims(),
                    self.spec.input_shape()
                ),
            });
        }
        let encoder = RadixEncoder::new(self.time_steps)?;
        Ok(input.map(|&v| i64::from(encoder.level_of(v))))
    }

    /// Runs functional (integer-domain) SNN inference on a single input.
    ///
    /// # Errors
    ///
    /// Returns an error for mismatched input shapes or internal
    /// inconsistencies in the converted model.
    pub fn forward(&self, input: &Tensor<f32>) -> Result<SnnTrace> {
        let input_levels = self.encode_input(input)?;
        let activations = self.forward_levels(&input_levels)?;
        Ok(SnnTrace {
            input_levels,
            activations,
        })
    }

    /// Runs the integer-domain forward pass on pre-encoded input levels.
    ///
    /// # Errors
    ///
    /// Returns an error for internal inconsistencies in the converted model.
    pub fn forward_levels(&self, input_levels: &Tensor<i64>) -> Result<Vec<Tensor<i64>>> {
        let max_level = self.max_level();
        let mut current = input_levels.clone();
        let mut activations = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            current = match layer {
                SnnLayer::Conv {
                    weight_codes,
                    bias_acc,
                    stride,
                    padding,
                    requant,
                } => {
                    let acc =
                        ops::conv2d(&current, weight_codes, Some(bias_acc), *stride, *padding)?;
                    apply_requant(&acc, *requant, max_level)
                }
                SnnLayer::Pool { kind, window } => match kind {
                    PoolKind::Average => ops::avg_pool2d(&current, *window)?,
                    PoolKind::Max => ops::max_pool2d(&current, *window)?,
                },
                SnnLayer::Flatten => {
                    let volume = current.len();
                    current.reshape(vec![volume])?
                }
                SnnLayer::Linear {
                    weight_codes,
                    bias_acc,
                    requant,
                } => {
                    let acc = ops::linear(&current, weight_codes, Some(bias_acc))?;
                    apply_requant(&acc, *requant, max_level)
                }
            };
            activations.push(current.clone());
        }
        Ok(activations)
    }

    /// Predicts the class of a single input.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SnnModel::forward`].
    pub fn predict(&self, input: &Tensor<f32>) -> Result<usize> {
        Ok(self.forward(input)?.predicted_class())
    }

    /// Classification accuracy over an iterator of labelled samples.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SnnModel::forward`].
    pub fn evaluate<'a, I>(&self, samples: I) -> Result<f32>
    where
        I: IntoIterator<Item = (&'a Tensor<f32>, usize)>,
    {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (input, label) in samples {
            if self.predict(input)? == label {
                correct += 1;
            }
            total += 1;
        }
        Ok(if total == 0 {
            0.0
        } else {
            correct as f32 / total as f32
        })
    }

    /// Total number of synaptic operations (multiply-free accumulations)
    /// per inference and per time step, used by the energy model.
    pub fn synaptic_ops_per_step(&self) -> u64 {
        let mut ops_count = 0u64;
        for (i, layer) in self.spec.layers().iter().enumerate() {
            let out_shape = self.spec.layer_output_shape(i);
            match layer {
                LayerSpec::Conv2d {
                    in_channels,
                    kernel,
                    ..
                } => {
                    let outputs: usize = out_shape.iter().product();
                    ops_count += (outputs * in_channels * kernel * kernel) as u64;
                }
                LayerSpec::Linear { in_features, .. } => {
                    let outputs: usize = out_shape.iter().product();
                    ops_count += (outputs * in_features) as u64;
                }
                _ => {}
            }
        }
        ops_count
    }
}

fn apply_requant(acc: &Tensor<i64>, requant: Option<f32>, max_level: i64) -> Tensor<i64> {
    match requant {
        Some(r) => acc.map(|&v| requantize(v, r, max_level)),
        None => acc.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn identity_linear_model(time_steps: usize) -> SnnModel {
        // One linear layer with an identity weight matrix of codes.
        let spec = NetworkSpec::new("identity", vec![3], vec![LayerSpec::linear(3, 3)]).unwrap();
        let weight_codes =
            Tensor::from_vec(vec![3, 3], vec![1i64, 0, 0, 0, 1, 0, 0, 0, 1]).unwrap();
        let bias_acc = Tensor::filled(vec![3], 0i64);
        SnnModel::new(
            spec,
            vec![SnnLayer::Linear {
                weight_codes,
                bias_acc,
                requant: None,
            }],
            time_steps,
            3,
        )
        .unwrap()
    }

    #[test]
    fn requantize_clamps_and_rounds() {
        assert_eq!(requantize(-5, 1.0, 7), 0);
        assert_eq!(requantize(0, 1.0, 7), 0);
        assert_eq!(requantize(3, 1.0, 7), 3);
        assert_eq!(requantize(100, 1.0, 7), 7);
        assert_eq!(requantize(10, 0.25, 7), 3); // 2.5 rounds to 3 (round half up)
        assert_eq!(requantize(9, 0.25, 7), 2);
    }

    #[test]
    fn encode_input_uses_radix_levels() {
        let model = identity_linear_model(3);
        let input = Tensor::from_vec(vec![3], vec![0.0f32, 0.5, 1.0]).unwrap();
        let levels = model.encode_input(&input).unwrap();
        // max level for T=3 is 7; 0.5 * 7 = 3.5 rounds to 4.
        assert_eq!(levels.as_slice(), &[0, 4, 7]);
    }

    #[test]
    fn identity_model_passes_levels_through() {
        let model = identity_linear_model(4);
        let input = Tensor::from_vec(vec![3], vec![0.2f32, 0.6, 1.0]).unwrap();
        let trace = model.forward(&input).unwrap();
        assert_eq!(trace.logits().as_slice(), trace.input_levels.as_slice());
        assert_eq!(trace.predicted_class(), 2);
    }

    #[test]
    fn layer_count_mismatch_rejected() {
        let spec = zoo::tiny_cnn();
        assert!(matches!(
            SnnModel::new(spec, vec![], 3, 3),
            Err(ModelError::ParameterMismatch { .. })
        ));
    }

    #[test]
    fn wrong_input_shape_rejected() {
        let model = identity_linear_model(3);
        let input = Tensor::filled(vec![4], 0.5f32);
        assert!(model.forward(&input).is_err());
    }

    #[test]
    fn max_level_matches_time_steps() {
        assert_eq!(identity_linear_model(3).max_level(), 7);
        assert_eq!(identity_linear_model(6).max_level(), 63);
    }

    #[test]
    fn synaptic_ops_counts_conv_and_linear() {
        let spec = NetworkSpec::new(
            "ops",
            vec![1, 6, 6],
            vec![
                LayerSpec::conv(1, 2, 3),
                LayerSpec::Flatten,
                LayerSpec::linear(2 * 4 * 4, 5),
            ],
        )
        .unwrap();
        let conv_codes = Tensor::filled(vec![2, 1, 3, 3], 1i64);
        let lin_codes = Tensor::filled(vec![5, 32], 1i64);
        let model = SnnModel::new(
            spec,
            vec![
                SnnLayer::Conv {
                    weight_codes: conv_codes,
                    bias_acc: Tensor::filled(vec![2], 0i64),
                    stride: 1,
                    padding: 0,
                    requant: Some(1.0),
                },
                SnnLayer::Flatten,
                SnnLayer::Linear {
                    weight_codes: lin_codes,
                    bias_acc: Tensor::filled(vec![5], 0i64),
                    requant: None,
                },
            ],
            3,
            3,
        )
        .unwrap();
        // Conv: 2*4*4 outputs × 1 in-channel × 9 kernel values = 288.
        // Linear: 5 outputs × 32 inputs = 160.
        assert_eq!(model.synaptic_ops_per_step(), 288 + 160);
    }

    #[test]
    fn evaluate_counts_correct_predictions() {
        let model = identity_linear_model(3);
        let a = Tensor::from_vec(vec![3], vec![1.0f32, 0.0, 0.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![0.0f32, 1.0, 0.0]).unwrap();
        let acc = model
            .evaluate(vec![(&a, 0usize), (&b, 1usize), (&b, 2usize)])
            .unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }
}
