//! Whole-network specifications.

use crate::{LayerSpec, ModelError, Result};
use serde::{Deserialize, Serialize};

/// A validated feed-forward network description.
///
/// A `NetworkSpec` is a named sequence of [`LayerSpec`]s together with the
/// input shape.  Construction via [`NetworkSpec::new`] checks that every
/// layer's input matches the previous layer's output, that convolutions do
/// not appear after flattening, and caches the intermediate shapes.
///
/// # Example
///
/// ```
/// use snn_model::{LayerSpec, NetworkSpec};
///
/// let net = NetworkSpec::new(
///     "tiny",
///     vec![1, 8, 8],
///     vec![
///         LayerSpec::conv(1, 4, 3),
///         LayerSpec::avg_pool2(),
///         LayerSpec::Flatten,
///         LayerSpec::linear(4 * 3 * 3, 10),
///     ],
/// )?;
/// assert_eq!(net.output_shape(), &[10]);
/// # Ok::<(), snn_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    name: String,
    input_shape: Vec<usize>,
    layers: Vec<LayerSpec>,
    /// `shapes[i]` is the *input* shape of layer `i`; the last entry is the
    /// network output shape.
    shapes: Vec<Vec<usize>>,
}

impl NetworkSpec {
    /// Creates and validates a network.
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidNetwork`] when the layer list is empty or a
    ///   convolution/pooling layer appears after [`LayerSpec::Flatten`].
    /// * [`ModelError::ShapeMismatch`] when consecutive layers are
    ///   dimensionally incompatible.
    pub fn new(
        name: impl Into<String>,
        input_shape: Vec<usize>,
        layers: Vec<LayerSpec>,
    ) -> Result<Self> {
        if layers.is_empty() {
            return Err(ModelError::InvalidNetwork {
                context: "network has no layers".to_string(),
            });
        }
        let mut shapes = Vec::with_capacity(layers.len() + 1);
        let mut current = input_shape.clone();
        let mut flattened = input_shape.len() == 1;
        for (i, layer) in layers.iter().enumerate() {
            if flattened && matches!(layer, LayerSpec::Conv2d { .. } | LayerSpec::Pool { .. }) {
                return Err(ModelError::InvalidNetwork {
                    context: format!(
                        "layer {i} ({}) appears after the feature maps were flattened",
                        layer.notation()
                    ),
                });
            }
            shapes.push(current.clone());
            current = layer.output_shape(&current).map_err(|e| match e {
                ModelError::ShapeMismatch { context, .. } => {
                    ModelError::ShapeMismatch { layer: i, context }
                }
                other => other,
            })?;
            if matches!(layer, LayerSpec::Flatten) {
                flattened = true;
            }
        }
        shapes.push(current);
        Ok(NetworkSpec {
            name: name.into(),
            input_shape,
            layers,
            shapes,
        })
    }

    /// The network name (e.g. `"LeNet-5"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The input feature-map shape.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// The layer sequence.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// The input shape of layer `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn layer_input_shape(&self, index: usize) -> &[usize] {
        &self.shapes[index]
    }

    /// The output shape of layer `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn layer_output_shape(&self, index: usize) -> &[usize] {
        &self.shapes[index + 1]
    }

    /// The network output shape.
    pub fn output_shape(&self) -> &[usize] {
        self.shapes.last().expect("validated network has shapes")
    }

    /// Number of classes produced by the final layer.
    pub fn num_classes(&self) -> usize {
        self.output_shape().iter().product()
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.parameter_count()).sum()
    }

    /// Indices of layers that carry weights (convolution and linear).
    pub fn weighted_layers(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.has_weights())
            .map(|(i, _)| i)
            .collect()
    }

    /// Architecture string in the paper's notation, e.g.
    /// `32x32x1 - 6C5 - P2 - 16C5 - P2 - 120C5 - 120 - 84 - 10`.
    pub fn notation(&self) -> String {
        let input = self
            .input_shape
            .iter()
            .rev()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("x");
        let mut parts = vec![input];
        for layer in &self.layers {
            if matches!(layer, LayerSpec::Flatten) {
                continue;
            }
            parts.push(layer.notation());
        }
        parts.join(" - ")
    }

    /// Number of distinct convolution kernel sizes used by the network —
    /// the accelerator instantiates one convolution-unit *type* per kernel
    /// size (Section III-A).
    pub fn kernel_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self
            .layers
            .iter()
            .filter_map(|l| match l {
                LayerSpec::Conv2d { kernel, .. } => Some(*kernel),
                _ => None,
            })
            .collect();
        sizes.sort_unstable();
        sizes.dedup();
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> NetworkSpec {
        NetworkSpec::new(
            "tiny",
            vec![1, 8, 8],
            vec![
                LayerSpec::conv(1, 4, 3),
                LayerSpec::avg_pool2(),
                LayerSpec::Flatten,
                LayerSpec::linear(4 * 3 * 3, 10),
            ],
        )
        .unwrap()
    }

    #[test]
    fn shapes_propagate_through_layers() {
        let net = tiny();
        assert_eq!(net.layer_input_shape(0), &[1, 8, 8]);
        assert_eq!(net.layer_output_shape(0), &[4, 6, 6]);
        assert_eq!(net.layer_output_shape(1), &[4, 3, 3]);
        assert_eq!(net.layer_output_shape(2), &[36]);
        assert_eq!(net.output_shape(), &[10]);
        assert_eq!(net.num_classes(), 10);
    }

    #[test]
    fn empty_network_rejected() {
        assert!(matches!(
            NetworkSpec::new("empty", vec![1, 8, 8], vec![]),
            Err(ModelError::InvalidNetwork { .. })
        ));
    }

    #[test]
    fn conv_after_flatten_rejected() {
        let err = NetworkSpec::new(
            "bad",
            vec![1, 8, 8],
            vec![LayerSpec::Flatten, LayerSpec::conv(1, 4, 3)],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::InvalidNetwork { .. }));
    }

    #[test]
    fn mismatched_linear_rejected_with_layer_index() {
        let err = NetworkSpec::new(
            "bad",
            vec![1, 8, 8],
            vec![LayerSpec::Flatten, LayerSpec::linear(10, 10)],
        )
        .unwrap_err();
        match err {
            ModelError::ShapeMismatch { layer, .. } => assert_eq!(layer, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parameter_count_sums_layers() {
        let net = tiny();
        assert_eq!(net.parameter_count(), (4 * 9 + 4) + (36 * 10 + 10));
    }

    #[test]
    fn notation_skips_flatten() {
        let net = tiny();
        assert_eq!(net.notation(), "8x8x1 - 4C3 - P2 - 10");
    }

    #[test]
    fn kernel_sizes_deduplicated() {
        let net = NetworkSpec::new(
            "two-kernels",
            vec![1, 16, 16],
            vec![
                LayerSpec::conv(1, 4, 3),
                LayerSpec::conv(4, 4, 3),
                LayerSpec::conv(4, 2, 5),
                LayerSpec::Flatten,
                LayerSpec::linear(2 * 8 * 8, 10),
            ],
        )
        .unwrap();
        assert_eq!(net.kernel_sizes(), vec![3, 5]);
    }

    #[test]
    fn weighted_layers_lists_conv_and_linear() {
        let net = tiny();
        assert_eq!(net.weighted_layers(), vec![0, 3]);
    }
}
