//! Layer specifications for the feed-forward CNN topologies supported by
//! the accelerator.

use crate::{ModelError, Result};
use serde::{Deserialize, Serialize};
use snn_tensor::ops;

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Average pooling (adder-based in hardware, division folded into the
    /// requantization step).
    Average,
    /// Max pooling (comparator-based).
    Max,
}

/// A single layer of a network.
///
/// The accelerator supports exactly the layer types that appear in the
/// paper's workloads: 2-D convolution, non-overlapping pooling, flattening
/// of the feature maps before the classifier, and fully-connected layers.
/// ReLU is implicit after every convolution and fully-connected layer
/// except the last one, matching "apply ReLU and requantize" in Alg. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerSpec {
    /// 2-D convolution over `[C, H, W]` feature maps.
    Conv2d {
        /// Number of input channels.
        in_channels: usize,
        /// Number of output channels.
        out_channels: usize,
        /// Square kernel side length.
        kernel: usize,
        /// Stride in both dimensions.
        stride: usize,
        /// Zero padding in both dimensions.
        padding: usize,
    },
    /// Non-overlapping pooling with a square window.
    Pool {
        /// Pooling flavour.
        kind: PoolKind,
        /// Window (and stride) size.
        window: usize,
    },
    /// Flattens a `[C, H, W]` feature map into a `[C*H*W]` vector.  This is
    /// the point where the accelerator moves activations from the 2-D to
    /// the 1-D ping-pong buffers.
    Flatten,
    /// Fully-connected layer.
    Linear {
        /// Number of input features.
        in_features: usize,
        /// Number of output features.
        out_features: usize,
    },
}

impl LayerSpec {
    /// Convenience constructor for a convolution with stride 1 and no
    /// padding (the form used by LeNet-5 and the MNIST CNNs).
    pub fn conv(in_channels: usize, out_channels: usize, kernel: usize) -> Self {
        LayerSpec::Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride: 1,
            padding: 0,
        }
    }

    /// Convenience constructor for a padded stride-1 convolution (VGG
    /// style: 3×3 kernels with padding 1).
    pub fn conv_padded(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: usize,
    ) -> Self {
        LayerSpec::Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride: 1,
            padding,
        }
    }

    /// Convenience constructor for 2×2 average pooling.
    pub fn avg_pool2() -> Self {
        LayerSpec::Pool {
            kind: PoolKind::Average,
            window: 2,
        }
    }

    /// Convenience constructor for 2×2 max pooling.
    pub fn max_pool2() -> Self {
        LayerSpec::Pool {
            kind: PoolKind::Max,
            window: 2,
        }
    }

    /// Convenience constructor for a fully-connected layer.
    pub fn linear(in_features: usize, out_features: usize) -> Self {
        LayerSpec::Linear {
            in_features,
            out_features,
        }
    }

    /// Returns `true` for layers that carry trainable weights.
    pub fn has_weights(&self) -> bool {
        matches!(self, LayerSpec::Conv2d { .. } | LayerSpec::Linear { .. })
    }

    /// Number of trainable parameters (weights + biases) in this layer.
    pub fn parameter_count(&self) -> usize {
        match *self {
            LayerSpec::Conv2d {
                in_channels,
                out_channels,
                kernel,
                ..
            } => out_channels * in_channels * kernel * kernel + out_channels,
            LayerSpec::Linear {
                in_features,
                out_features,
            } => out_features * in_features + out_features,
            _ => 0,
        }
    }

    /// Computes the output shape of this layer for the given input shape.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] (with `layer` set to 0; callers
    /// patch in the real index) when the input shape is incompatible.
    pub fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        let mismatch = |context: String| ModelError::ShapeMismatch { layer: 0, context };
        match *self {
            LayerSpec::Conv2d {
                in_channels,
                out_channels,
                kernel,
                stride,
                padding,
            } => {
                if input.len() != 3 {
                    return Err(mismatch(format!(
                        "convolution expects a [C, H, W] input, got {input:?}"
                    )));
                }
                if input[0] != in_channels {
                    return Err(mismatch(format!(
                        "convolution expects {in_channels} input channels, got {}",
                        input[0]
                    )));
                }
                let (h, w) = ops::conv2d_output_dims(
                    (input[1], input[2]),
                    (kernel, kernel),
                    stride,
                    padding,
                )
                .map_err(|e| mismatch(e.to_string()))?;
                Ok(vec![out_channels, h, w])
            }
            LayerSpec::Pool { window, .. } => {
                if input.len() != 3 {
                    return Err(mismatch(format!(
                        "pooling expects a [C, H, W] input, got {input:?}"
                    )));
                }
                let (h, w) = ops::pool_output_dims((input[1], input[2]), window)
                    .map_err(|e| mismatch(e.to_string()))?;
                Ok(vec![input[0], h, w])
            }
            LayerSpec::Flatten => {
                if input.is_empty() {
                    return Err(mismatch("flatten expects a non-empty shape".to_string()));
                }
                Ok(vec![input.iter().product()])
            }
            LayerSpec::Linear {
                in_features,
                out_features,
            } => {
                if input != [in_features] {
                    return Err(mismatch(format!(
                        "linear layer expects [{in_features}] input, got {input:?}"
                    )));
                }
                Ok(vec![out_features])
            }
        }
    }

    /// Short human-readable description, e.g. `6C5` or `P2` in the notation
    /// the paper uses for network architectures.
    pub fn notation(&self) -> String {
        match *self {
            LayerSpec::Conv2d {
                out_channels,
                kernel,
                ..
            } => format!("{out_channels}C{kernel}"),
            LayerSpec::Pool { window, kind } => match kind {
                PoolKind::Average => format!("P{window}"),
                PoolKind::Max => format!("MP{window}"),
            },
            LayerSpec::Flatten => "flatten".to_string(),
            LayerSpec::Linear { out_features, .. } => format!("{out_features}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_shape() {
        let layer = LayerSpec::conv(1, 6, 5);
        assert_eq!(layer.output_shape(&[1, 32, 32]).unwrap(), vec![6, 28, 28]);
    }

    #[test]
    fn conv_rejects_wrong_channels() {
        let layer = LayerSpec::conv(3, 6, 5);
        assert!(layer.output_shape(&[1, 32, 32]).is_err());
    }

    #[test]
    fn padded_conv_preserves_spatial_size() {
        let layer = LayerSpec::conv_padded(3, 64, 3, 1);
        assert_eq!(layer.output_shape(&[3, 32, 32]).unwrap(), vec![64, 32, 32]);
    }

    #[test]
    fn pool_halves_spatial_size() {
        let layer = LayerSpec::avg_pool2();
        assert_eq!(layer.output_shape(&[6, 28, 28]).unwrap(), vec![6, 14, 14]);
    }

    #[test]
    fn flatten_collapses_dims() {
        let layer = LayerSpec::Flatten;
        assert_eq!(layer.output_shape(&[120, 1, 1]).unwrap(), vec![120]);
    }

    #[test]
    fn linear_checks_features() {
        let layer = LayerSpec::linear(120, 84);
        assert_eq!(layer.output_shape(&[120]).unwrap(), vec![84]);
        assert!(layer.output_shape(&[100]).is_err());
    }

    #[test]
    fn parameter_counts() {
        assert_eq!(LayerSpec::conv(1, 6, 5).parameter_count(), 6 * 25 + 6);
        assert_eq!(LayerSpec::linear(120, 84).parameter_count(), 120 * 84 + 84);
        assert_eq!(LayerSpec::avg_pool2().parameter_count(), 0);
        assert_eq!(LayerSpec::Flatten.parameter_count(), 0);
    }

    #[test]
    fn notation_matches_paper_style() {
        assert_eq!(LayerSpec::conv(1, 6, 5).notation(), "6C5");
        assert_eq!(LayerSpec::avg_pool2().notation(), "P2");
        assert_eq!(LayerSpec::max_pool2().notation(), "MP2");
        assert_eq!(LayerSpec::linear(120, 84).notation(), "84");
    }

    #[test]
    fn has_weights_only_for_conv_and_linear() {
        assert!(LayerSpec::conv(1, 6, 5).has_weights());
        assert!(LayerSpec::linear(10, 10).has_weights());
        assert!(!LayerSpec::avg_pool2().has_weights());
        assert!(!LayerSpec::Flatten.has_weights());
    }
}
